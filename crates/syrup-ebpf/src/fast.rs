//! The fast execution engine: direct dispatch over pre-decoded programs.
//!
//! Executes [`DecodedProg`] streams produced by [`crate::decode`]. The
//! engine preserves the interpreter's full observable contract — verdicts,
//! map state, helper effects, tail-call semantics and the depth cap, trap
//! kinds and their precedence, modelled cycle totals, and the
//! telemetry/profiler instrumentation points — while stripping the
//! per-instruction work the interpreter repeats on every step:
//!
//! * no `Operand` match or cycle-model lookup (both resolved at decode);
//! * branch targets are absolute, so taken branches are a single store;
//! * scalar-scalar ALU and compare take an inlined path, falling back to
//!   the interpreter's shared `alu`/`compare` only for pointer operands
//!   (which also keeps the trap semantics literally the same code);
//! * helper key/value marshalling reuses two per-run buffers instead of
//!   allocating per call, and map handles come from the decode-time cache
//!   instead of the registry lock;
//! * the whole loop is monomorphized over "profiler attached?", so the
//!   disabled-profiler build has no per-instruction instrumentation branch
//!   (the ≤5ns disabled-cost contract).
//!
//! Equivalence with the interpreter is enforced three ways: shared
//! helpers/ALU code here, the `syrup-fuzz --backend-diff` differential
//! oracle, and the both-backend proptests in `tests/`.

use crate::decode::{DecodedProg, FastInsn, BAD_TARGET};
use crate::helpers::HelperId;
use crate::insn::{MemSize, Reg, Width};
use crate::maps::{MapError, MapId, MapKind, MapRef, ProgSlot, UpdateFlag};
use crate::vm::{
    alu, alu32, alu64, cmp_u64, compare, ctx_off, map_from_token, read_le, scalar, slice_region,
    slice_region_ref, HelperOutcome, PacketCtx, Region, RunEnv, Val, Vm, VmError, VmOutcome,
    MAX_TAIL_CALLS, RUNTIME_INSN_LIMIT, STACK_SIZE,
};

/// The fast engine's register file: scalars live in a flat `u64` array
/// (the `mask` bit says which), so the dominant scalar-scalar instruction
/// mix never moves [`Val`] enums through memory. Pointer registers fall
/// back to the `vals` slot (valid only when the `init` bit is set), and
/// every access point reconstructs the exact [`Val`] the interpreter
/// would hold — same values, same `UninitRegister` traps, same read
/// order. Tracking initialization as a mask makes the helper ABI's
/// caller-clobber of r1–r5 two bit-ops instead of five enum stores.
struct RegFile {
    scalars: [u64; 11],
    vals: [Val; 11],
    /// Bit i set: register i is a scalar held in `scalars[i]`.
    mask: u16,
    /// Bit i set: register i is initialized (scalar or `vals[i]`).
    init: u16,
}

/// r1–r5, the registers a helper call clobbers.
const CALLER_SAVED: u16 = 0b11_1110;

impl RegFile {
    fn new() -> Self {
        RegFile {
            scalars: [0; 11],
            vals: [Val::Uninit; 11],
            mask: 0,
            init: 0,
        }
    }

    #[inline(always)]
    fn is_scalar(&self, i: usize) -> bool {
        self.mask & (1 << i) != 0
    }

    /// The register's [`Val`], trapping on uninit like the interpreter's
    /// `read_reg`.
    #[inline(always)]
    fn read(&self, r: Reg) -> Result<Val, VmError> {
        let i = r.index();
        if self.is_scalar(i) {
            Ok(Val::Scalar(self.scalars[i]))
        } else if self.init & (1 << i) != 0 {
            Ok(self.vals[i])
        } else {
            Err(VmError::UninitRegister(r))
        }
    }

    #[inline(always)]
    fn set_scalar(&mut self, r: Reg, v: u64) {
        let i = r.index();
        self.scalars[i] = v;
        self.mask |= 1 << i;
        self.init |= 1 << i;
    }

    #[inline(always)]
    fn set(&mut self, r: Reg, v: Val) {
        match v {
            Val::Scalar(s) => self.set_scalar(r, s),
            Val::Uninit => {
                let i = r.index();
                self.mask &= !(1 << i);
                self.init &= !(1 << i);
            }
            other => {
                let i = r.index();
                self.mask &= !(1 << i);
                self.init |= 1 << i;
                self.vals[i] = other;
            }
        }
    }

    /// Marks the caller-clobbered registers r1–r5 uninitialized (helper
    /// ABI) — mask updates only, no enum traffic.
    #[inline(always)]
    fn clobber_caller_saved(&mut self) {
        self.mask &= !CALLER_SAVED;
        self.init &= !CALLER_SAVED;
    }

    /// Marks r2–r5 uninitialized (tail-call entry; r1 is the fresh ctx).
    #[inline(always)]
    fn clobber_tail_args(&mut self) {
        self.mask &= !(CALLER_SAVED & !0b10);
        self.init &= !(CALLER_SAVED & !0b10);
    }
}

/// A map handle resolved for one access: borrowed from the decode-time
/// cache on the hot path (no refcount traffic), owned only for maps
/// created after decoding.
enum MapHandle<'a> {
    Cached(&'a MapRef),
    Owned(MapRef),
}

impl std::ops::Deref for MapHandle<'_> {
    type Target = MapRef;

    #[inline(always)]
    fn deref(&self) -> &MapRef {
        match self {
            MapHandle::Cached(m) => m,
            MapHandle::Owned(m) => m,
        }
    }
}

/// Runs the decoded program in `slot`, dispatching on whether a profiler
/// is attached so the common (disabled) case pays no per-insn branch.
pub(crate) fn run(
    vm: &Vm,
    slot: ProgSlot,
    ctx: &mut PacketCtx<'_>,
    env: &mut RunEnv,
) -> Result<VmOutcome, VmError> {
    if vm.profiler.is_enabled() {
        exec::<true>(vm, slot, ctx, env)
    } else {
        exec::<false>(vm, slot, ctx, env)
    }
}

fn exec<const PROF: bool>(
    vm: &Vm,
    slot: ProgSlot,
    ctx: &mut PacketCtx<'_>,
    env: &mut RunEnv,
) -> Result<VmOutcome, VmError> {
    let mut prog = vm
        .decoded
        .get(slot.0 as usize)
        .ok_or(VmError::NoSuchProgram)?;
    if prog.code.is_empty() {
        return Err(VmError::NoSuchProgram);
    }

    let mut regs = RegFile::new();
    regs.set(
        Reg::R1,
        Val::Ptr {
            region: Region::Ctx,
            off: 0,
        },
    );
    regs.set(
        Reg::R10,
        Val::Ptr {
            region: Region::Stack,
            off: STACK_SIZE,
        },
    );
    let mut stack = [0u8; STACK_SIZE as usize];

    let mut pc: usize = 0;
    let mut insns: u64 = 0;
    let mut cycles: u64 = prog.invoke;
    let mut redirect: Option<(MapId, u32)> = None;
    let mut tail_calls: u32 = 0;
    // Reused across helper calls: key/value marshalling scratch.
    let mut key_buf: Vec<u8> = Vec::new();
    let mut val_buf: Vec<u8> = Vec::new();
    // Same attribution scope as the interpreter: the invoke cost lands on
    // the entry (prog, pc 0) bucket; flushes on drop (any exit path).
    let mut prof = vm.profiler.vm_enter(&prog.name, prog.invoke);

    loop {
        let step = *prog.code.get(pc).ok_or(VmError::NoExit)?;
        let insn = step.insn;
        insns += 1;
        let cost = step.cost;
        cycles += cost;
        if PROF {
            prof.insn(pc, cost);
        }
        if insns > RUNTIME_INSN_LIMIT {
            return Err(VmError::Runaway);
        }
        pc += 1;

        match insn {
            FastInsn::MovImm { w, dst, imm } => {
                let v = imm as i64 as u64;
                regs.set_scalar(
                    dst,
                    match w {
                        Width::W64 => v,
                        Width::W32 => v & 0xFFFF_FFFF,
                    },
                );
            }
            FastInsn::MovReg { w, dst, src } => {
                if regs.is_scalar(src.index()) {
                    let s = regs.scalars[src.index()];
                    regs.set_scalar(
                        dst,
                        match w {
                            Width::W64 => s,
                            Width::W32 => s & 0xFFFF_FFFF,
                        },
                    );
                } else {
                    let rhs = regs.read(src)?;
                    match w {
                        Width::W64 => regs.set(dst, rhs),
                        // Non-scalar 32-bit mov: same trap as the
                        // interpreter's `alu` on pointers.
                        Width::W32 => return Err(VmError::BadPointerArith),
                    }
                }
            }
            FastInsn::AluImm { w, op, dst, imm } => {
                let b = imm as i64 as u64;
                let i = dst.index();
                if regs.is_scalar(i) {
                    let a = regs.scalars[i];
                    regs.scalars[i] = match w {
                        Width::W64 => alu64(op, a, b),
                        Width::W32 => u64::from(alu32(op, a as u32, b as u32)),
                    };
                } else {
                    let lhs = regs.read(dst)?;
                    let r = alu(w, op, lhs, Val::Scalar(b))?;
                    regs.set(dst, r);
                }
            }
            FastInsn::AluReg { w, op, dst, src } => {
                if regs.is_scalar(src.index()) && regs.is_scalar(dst.index()) {
                    let b = regs.scalars[src.index()];
                    let a = regs.scalars[dst.index()];
                    regs.scalars[dst.index()] = match w {
                        Width::W64 => alu64(op, a, b),
                        Width::W32 => u64::from(alu32(op, a as u32, b as u32)),
                    };
                } else {
                    // Operand order matches the interpreter: the source
                    // (rhs) is read first, so its uninit trap wins.
                    let rhs = regs.read(src)?;
                    let lhs = regs.read(dst)?;
                    let r = alu(w, op, lhs, rhs)?;
                    regs.set(dst, r);
                }
            }
            FastInsn::Neg { w, dst } => {
                let v = scalar(regs.read(dst)?)?;
                let r = match w {
                    Width::W64 => (v as i64).wrapping_neg() as u64,
                    Width::W32 => ((v as i32).wrapping_neg() as u32) as u64,
                };
                regs.set_scalar(dst, r);
            }
            FastInsn::Endian { dst, bits, .. } => {
                let v = scalar(regs.read(dst)?)?;
                let r = match bits {
                    16 => u64::from((v as u16).swap_bytes()),
                    32 => u64::from((v as u32).swap_bytes()),
                    64 => v.swap_bytes(),
                    _ => return Err(VmError::BadEndianWidth),
                };
                regs.set_scalar(dst, r);
            }
            FastInsn::LoadImm64 { dst, imm } => {
                regs.set_scalar(dst, imm as u64);
            }
            FastInsn::LoadMapFd { dst, token } => {
                regs.set_scalar(dst, token);
            }
            FastInsn::LoadMem {
                size,
                dst,
                base,
                off,
            } => {
                let ptr = regs.read(base)?;
                let v = mem_load(vm, prog, ptr, off as i64, size, ctx, &mut stack)?;
                regs.set(dst, v);
            }
            FastInsn::StoreMem {
                size,
                base,
                off,
                src,
            } => {
                let ptr = regs.read(base)?;
                let v = scalar(regs.read(src)?)?;
                mem_store(vm, prog, ptr, off as i64, size, v, ctx, &mut stack)?;
            }
            FastInsn::StoreImm {
                size,
                base,
                off,
                imm,
            } => {
                let ptr = regs.read(base)?;
                mem_store(
                    vm,
                    prog,
                    ptr,
                    off as i64,
                    size,
                    imm as i64 as u64,
                    ctx,
                    &mut stack,
                )?;
            }
            FastInsn::AtomicAdd {
                size,
                base,
                off,
                src,
                fetch,
            } => {
                if size != MemSize::W && size != MemSize::DW {
                    return Err(VmError::OutOfBounds {
                        region: "atomic",
                        off: off as i64,
                        size: size.bytes(),
                    });
                }
                let ptr = regs.read(base)?;
                let addend = scalar(regs.read(src)?)?;
                let old = fetch_add(vm, prog, ptr, off as i64, size, addend, ctx, &mut stack)?;
                if fetch {
                    regs.set_scalar(src, old);
                }
            }
            FastInsn::Jump { target, .. } => {
                if target == BAD_TARGET {
                    return Err(VmError::PcOutOfRange);
                }
                pc = target as usize;
            }
            FastInsn::BranchImm {
                op,
                w,
                lhs,
                imm,
                target,
                ..
            } => {
                let taken = if regs.is_scalar(lhs.index()) {
                    cmp_u64(op, w, regs.scalars[lhs.index()], imm as i64 as u64)
                } else {
                    let l = regs.read(lhs)?;
                    compare(op, w, l, Val::Scalar(imm as i64 as u64))?
                };
                if taken {
                    if target == BAD_TARGET {
                        return Err(VmError::PcOutOfRange);
                    }
                    pc = target as usize;
                }
            }
            FastInsn::BranchReg {
                op,
                w,
                lhs,
                rhs,
                target,
                ..
            } => {
                let taken = if regs.is_scalar(lhs.index()) && regs.is_scalar(rhs.index()) {
                    cmp_u64(op, w, regs.scalars[lhs.index()], regs.scalars[rhs.index()])
                } else {
                    let l = regs.read(lhs)?;
                    let r = regs.read(rhs)?;
                    compare(op, w, l, r)?
                };
                if taken {
                    if target == BAD_TARGET {
                        return Err(VmError::PcOutOfRange);
                    }
                    pc = target as usize;
                }
            }
            FastInsn::Call { helper } => {
                if PROF {
                    prof.helper(helper.name());
                }
                match call_helper(
                    vm,
                    prog,
                    helper,
                    &mut regs,
                    ctx,
                    env,
                    &mut stack,
                    &mut key_buf,
                    &mut val_buf,
                )? {
                    HelperOutcome::Ret(v) => {
                        regs.set(Reg::R0, v);
                        regs.clobber_caller_saved();
                    }
                    HelperOutcome::Redirect(map, idx, ret) => {
                        redirect = Some((map, idx));
                        regs.set_scalar(Reg::R0, ret);
                        regs.clobber_caller_saved();
                    }
                    HelperOutcome::TailCall(next) => {
                        tail_calls += 1;
                        if tail_calls > MAX_TAIL_CALLS {
                            // The kernel fails the call and continues;
                            // r1–r5 are left alone on this path.
                            regs.set_scalar(Reg::R0, (-1i64) as u64);
                            tail_calls -= 1;
                            continue;
                        }
                        prog = vm
                            .decoded
                            .get(next.0 as usize)
                            .ok_or(VmError::NoSuchProgram)?;
                        pc = 0;
                        if PROF {
                            prof.tail_call(&prog.name);
                        }
                        regs.set(
                            Reg::R1,
                            Val::Ptr {
                                region: Region::Ctx,
                                off: 0,
                            },
                        );
                        regs.clobber_tail_args();
                    }
                }
            }
            FastInsn::Exit => {
                let ret = scalar(regs.read(Reg::R0)?)?;
                return Ok(VmOutcome {
                    ret,
                    insns,
                    cycles,
                    redirect,
                    tail_calls,
                });
            }
        }
    }
}

/// Resolves a map id via the decode-time cache (a borrow — no refcount
/// traffic on the hot path), falling back to the registry for maps
/// created after decoding (or referenced cross-program through
/// callee-saved registers).
#[inline(always)]
fn resolve_map<'a>(vm: &Vm, prog: &'a DecodedProg, id: MapId) -> Option<MapHandle<'a>> {
    match prog.map_cache.get(id.0 as usize) {
        Some(Some(map)) => Some(MapHandle::Cached(map)),
        _ => vm.maps.get(id).map(MapHandle::Owned),
    }
}

fn map_arg<'a>(
    vm: &Vm,
    prog: &'a DecodedProg,
    v: Val,
    helper: HelperId,
) -> Result<MapHandle<'a>, VmError> {
    let id = match v {
        Val::Scalar(tok) => map_from_token(tok).ok_or(VmError::BadHelperArg(helper))?,
        _ => return Err(VmError::BadHelperArg(helper)),
    };
    resolve_map(vm, prog, id).ok_or(VmError::BadHelperArg(helper))
}

fn mem_load(
    vm: &Vm,
    prog: &DecodedProg,
    ptr: Val,
    insn_off: i64,
    size: MemSize,
    ctx: &PacketCtx<'_>,
    stack: &mut [u8; STACK_SIZE as usize],
) -> Result<Val, VmError> {
    let (region, base_off) = match ptr {
        Val::Ptr { region, off } => (region, off),
        Val::Scalar(_) => return Err(VmError::NotAPointer),
        Val::Uninit => return Err(VmError::UninitRegister(Reg::R0)),
    };
    let off = base_off + insn_off;
    let nbytes = size.bytes();
    match region {
        Region::Stack => {
            let bytes = slice_region(stack, off, nbytes, "stack")?;
            Ok(Val::Scalar(read_le(bytes)))
        }
        Region::Packet => {
            let bytes = slice_region_ref(ctx.data, off, nbytes, "packet")?;
            Ok(Val::Scalar(read_le(bytes)))
        }
        Region::Ctx => {
            if size != MemSize::DW {
                return Err(VmError::OutOfBounds {
                    region: "ctx",
                    off,
                    size: nbytes,
                });
            }
            match off {
                ctx_off::DATA => Ok(Val::Ptr {
                    region: Region::Packet,
                    off: 0,
                }),
                ctx_off::DATA_END => Ok(Val::Ptr {
                    region: Region::Packet,
                    off: ctx.data.len() as i64,
                }),
                ctx_off::META0 => Ok(Val::Scalar(ctx.meta[0])),
                ctx_off::META1 => Ok(Val::Scalar(ctx.meta[1])),
                ctx_off::META2 => Ok(Val::Scalar(ctx.meta[2])),
                ctx_off::META3 => Ok(Val::Scalar(ctx.meta[3])),
                _ => Err(VmError::OutOfBounds {
                    region: "ctx",
                    off,
                    size: nbytes,
                }),
            }
        }
        Region::MapValue { map, slot } => {
            let map_ref = resolve_map(vm, prog, map).ok_or(MapError::NotFound)?;
            if off < 0 {
                return Err(VmError::OutOfBounds {
                    region: "map value",
                    off,
                    size: nbytes,
                });
            }
            let v = map_ref.read_value(slot, off as u32, nbytes as u32)?;
            Ok(Val::Scalar(v))
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn mem_store(
    vm: &Vm,
    prog: &DecodedProg,
    ptr: Val,
    insn_off: i64,
    size: MemSize,
    value: u64,
    ctx: &mut PacketCtx<'_>,
    stack: &mut [u8; STACK_SIZE as usize],
) -> Result<(), VmError> {
    let (region, base_off) = match ptr {
        Val::Ptr { region, off } => (region, off),
        Val::Scalar(_) => return Err(VmError::NotAPointer),
        Val::Uninit => return Err(VmError::UninitRegister(Reg::R0)),
    };
    let off = base_off + insn_off;
    let nbytes = size.bytes();
    match region {
        Region::Stack => {
            let bytes = slice_region(stack, off, nbytes, "stack")?;
            bytes.copy_from_slice(&value.to_le_bytes()[..nbytes as usize]);
            Ok(())
        }
        Region::Packet => {
            let bytes = slice_region(ctx.data, off, nbytes, "packet")?;
            bytes.copy_from_slice(&value.to_le_bytes()[..nbytes as usize]);
            Ok(())
        }
        Region::Ctx => Err(VmError::ReadOnly),
        Region::MapValue { map, slot } => {
            let map_ref = resolve_map(vm, prog, map).ok_or(MapError::NotFound)?;
            if off < 0 {
                return Err(VmError::OutOfBounds {
                    region: "map value",
                    off,
                    size: nbytes,
                });
            }
            map_ref.write_value(slot, off as u32, nbytes as u32, value)?;
            Ok(())
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn fetch_add(
    vm: &Vm,
    prog: &DecodedProg,
    ptr: Val,
    insn_off: i64,
    size: MemSize,
    addend: u64,
    ctx: &mut PacketCtx<'_>,
    stack: &mut [u8; STACK_SIZE as usize],
) -> Result<u64, VmError> {
    // Map values get true (locked) atomicity; stack and packet RMW is
    // local to the invocation so plain read-modify-write suffices.
    if let Val::Ptr {
        region: Region::MapValue { map, slot },
        off,
    } = ptr
    {
        let map_ref = resolve_map(vm, prog, map).ok_or(MapError::NotFound)?;
        let off = off + insn_off;
        if off < 0 {
            return Err(VmError::OutOfBounds {
                region: "map value",
                off,
                size: size.bytes(),
            });
        }
        return Ok(map_ref.fetch_add_value(slot, off as u32, size.bytes() as u32, addend)?);
    }
    let old = scalar(mem_load(vm, prog, ptr, insn_off, size, ctx, stack)?)?;
    let new = match size {
        MemSize::W => ((old as u32).wrapping_add(addend as u32)) as u64,
        _ => old.wrapping_add(addend),
    };
    mem_store(vm, prog, ptr, insn_off, size, new, ctx, stack)?;
    Ok(old)
}

/// Marshals a helper key/value argument. Stack- and packet-resident args
/// (the overwhelmingly common case) are returned as borrows straight
/// out of guest memory — no copy; map-value-resident args are staged
/// through `buf` (reused across calls, so steady-state helper
/// invocations allocate nothing). Trap conditions and precedence are
/// byte-for-byte identical to the interpreter's `read_key`.
#[allow(clippy::too_many_arguments)]
fn marshal_arg<'a>(
    vm: &Vm,
    prog: &DecodedProg,
    ptr: Val,
    len: u32,
    data: &'a [u8],
    stack: &'a [u8],
    helper: HelperId,
    buf: &'a mut Vec<u8>,
) -> Result<&'a [u8], VmError> {
    let (region, base) = match ptr {
        Val::Ptr { region, off } => (region, off),
        _ => return Err(VmError::BadHelperArg(helper)),
    };
    match region {
        Region::Stack => slice_region_ref(stack, base, u64::from(len), "stack"),
        Region::Packet => {
            let len64 = u64::from(len);
            if base < 0 || (base as u64) + len64 > data.len() as u64 {
                return Err(VmError::OutOfBounds {
                    region: "packet",
                    off: base,
                    size: len64,
                });
            }
            Ok(&data[base as usize..base as usize + len as usize])
        }
        Region::MapValue { map, slot } => {
            buf.clear();
            let map_ref = resolve_map(vm, prog, map).ok_or(MapError::NotFound)?;
            // Per-byte like the interpreter, so the base<0 / out-of-value
            // trap precedence is byte-for-byte identical (len == 0 with a
            // negative base does not trap, matching it exactly).
            for i in 0..len {
                if base < 0 {
                    return Err(VmError::OutOfBounds {
                        region: "map value",
                        off: base,
                        size: u64::from(len),
                    });
                }
                buf.push(map_ref.read_value(slot, base as u32 + i, 1)? as u8);
            }
            Ok(&buf[..])
        }
        Region::Ctx => Err(VmError::BadHelperArg(helper)),
    }
}

#[allow(clippy::too_many_arguments)]
fn call_helper(
    vm: &Vm,
    prog: &DecodedProg,
    helper: HelperId,
    regs: &mut RegFile,
    ctx: &mut PacketCtx<'_>,
    env: &mut RunEnv,
    stack: &mut [u8; STACK_SIZE as usize],
    key_buf: &mut Vec<u8>,
    val_buf: &mut Vec<u8>,
) -> Result<HelperOutcome, VmError> {
    match helper {
        HelperId::GetPrandomU32 => Ok(HelperOutcome::Ret(Val::Scalar(u64::from(
            env.next_prandom(),
        )))),
        HelperId::KtimeGetNs => Ok(HelperOutcome::Ret(Val::Scalar(env.now_ns))),
        HelperId::GetSmpProcessorId => Ok(HelperOutcome::Ret(Val::Scalar(u64::from(env.cpu_id)))),
        HelperId::MapLookupElem => {
            let map = map_arg(vm, prog, regs.read(Reg::R1)?, helper)?;
            let key_len = map.def().key_size;
            let key = marshal_arg(
                vm,
                prog,
                regs.read(Reg::R2)?,
                key_len,
                ctx.data,
                &stack[..],
                helper,
                key_buf,
            )?;
            match map.slot_for_key(key)? {
                Some(slot) => Ok(HelperOutcome::Ret(Val::Ptr {
                    region: Region::MapValue {
                        map: map.id(),
                        slot,
                    },
                    off: 0,
                })),
                None => Ok(HelperOutcome::Ret(Val::Scalar(0))),
            }
        }
        HelperId::MapUpdateElem => {
            let map = map_arg(vm, prog, regs.read(Reg::R1)?, helper)?;
            let def = map.def();
            let key = marshal_arg(
                vm,
                prog,
                regs.read(Reg::R2)?,
                def.key_size,
                ctx.data,
                &stack[..],
                helper,
                key_buf,
            )?;
            let value = marshal_arg(
                vm,
                prog,
                regs.read(Reg::R3)?,
                def.value_size,
                ctx.data,
                &stack[..],
                helper,
                val_buf,
            )?;
            let flags = scalar(regs.read(Reg::R4)?)?;
            let flag = match flags {
                0 => UpdateFlag::Any,
                1 => UpdateFlag::NoExist,
                2 => UpdateFlag::Exist,
                _ => return Err(VmError::BadHelperArg(helper)),
            };
            let ret = match map.update(key, value, flag) {
                Ok(()) => 0i64,
                Err(_) => -1,
            };
            Ok(HelperOutcome::Ret(Val::Scalar(ret as u64)))
        }
        HelperId::MapDeleteElem => {
            let map = map_arg(vm, prog, regs.read(Reg::R1)?, helper)?;
            let key_len = map.def().key_size;
            let key = marshal_arg(
                vm,
                prog,
                regs.read(Reg::R2)?,
                key_len,
                ctx.data,
                &stack[..],
                helper,
                key_buf,
            )?;
            let ret = match map.delete(key) {
                Ok(()) => 0i64,
                Err(_) => -1,
            };
            Ok(HelperOutcome::Ret(Val::Scalar(ret as u64)))
        }
        HelperId::RedirectMap => {
            let map = map_arg(vm, prog, regs.read(Reg::R1)?, helper)?;
            let index = scalar(regs.read(Reg::R2)?)? as u32;
            // XDP_REDIRECT == 4 in the kernel ABI.
            Ok(HelperOutcome::Redirect(map.id(), index, 4))
        }
        HelperId::TailCall => {
            let map = map_arg(vm, prog, regs.read(Reg::R2)?, helper)?;
            if map.def().kind != MapKind::ProgArray {
                return Err(VmError::BadHelperArg(helper));
            }
            let index = scalar(regs.read(Reg::R3)?)? as u32;
            match map.get_prog(index)? {
                Some(slot) => Ok(HelperOutcome::TailCall(slot)),
                // Missing entry: the call fails and execution continues.
                None => Ok(HelperOutcome::Ret(Val::Scalar((-1i64) as u64))),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::asm::Asm;
    use crate::helpers::HelperId;
    use crate::insn::Reg;
    use crate::maps::{MapDef, MapRegistry};
    use crate::vm::{Backend, PacketCtx, RunEnv, Vm, VmError, MAX_TAIL_CALLS};
    use crate::Program;
    use syrup_telemetry::Registry;

    /// A policy exercising maps (lookup, update, atomic add), branches,
    /// packet access, and randomness — the instruction mix real Syrup
    /// policies use.
    fn busy_prog(counters: crate::maps::MapId) -> Program {
        Asm::new()
            .ldx_dw(Reg::R6, Reg::R1, 0) // data
            .ldx_dw(Reg::R7, Reg::R1, 8) // data_end
            .mov64_reg(Reg::R2, Reg::R6)
            .add64_imm(Reg::R2, 4)
            .jgt_reg(Reg::R2, Reg::R7, "pass")
            .ldx_w(Reg::R8, Reg::R6, 0) // first packet word
            .mod64_imm(Reg::R8, 4)
            .stx_w(Reg::R10, -4, Reg::R8)
            .load_map_fd(Reg::R1, counters)
            .mov64_reg(Reg::R2, Reg::R10)
            .add64_imm(Reg::R2, -4)
            .call(HelperId::MapLookupElem)
            .jeq_imm(Reg::R0, 0, "pass")
            .mov64_imm(Reg::R1, 1)
            .atomic_add_dw(Reg::R0, 0, Reg::R1)
            .ldx_dw(Reg::R9, Reg::R0, 0)
            .call(HelperId::GetPrandomU32)
            .mod64_imm(Reg::R0, 3)
            .add64_reg(Reg::R0, Reg::R9)
            .exit()
            .label("pass")
            .load_imm64(Reg::R0, crate::ret::PASS as i64)
            .exit()
            .build("busy")
            .unwrap()
    }

    fn world(backend: Backend) -> (Vm, crate::maps::ProgSlot, crate::maps::MapId) {
        let maps = MapRegistry::new();
        let counters = maps.create(MapDef::u64_array(4));
        let mut vm = Vm::new(maps);
        vm.set_backend(backend);
        let slot = vm.load(busy_prog(counters)).unwrap();
        (vm, slot, counters)
    }

    #[test]
    fn both_backends_agree_on_a_map_heavy_program() {
        let (interp, islot, imap) = world(Backend::Interp);
        let (fast, fslot, fmap) = world(Backend::Fast);
        for round in 0u64..16 {
            let mut pkt_a = [0u8; 8];
            pkt_a[..8].copy_from_slice(&(round * 0x9E37).to_le_bytes());
            let mut pkt_b = pkt_a;
            let mut env_a = RunEnv {
                now_ns: round,
                prandom_state: 42 + round,
                ..RunEnv::default()
            };
            let mut env_b = env_a.clone();
            let mut ctx_a = PacketCtx::new(&mut pkt_a);
            let mut ctx_b = PacketCtx::new(&mut pkt_b);
            let a = interp.run(islot, &mut ctx_a, &mut env_a);
            let b = fast.run(fslot, &mut ctx_b, &mut env_b);
            assert_eq!(a, b, "outcome diverged at round {round}");
            assert_eq!(pkt_a, pkt_b, "packet bytes diverged at round {round}");
            assert_eq!(
                env_a.prandom_state, env_b.prandom_state,
                "prandom stream diverged at round {round}"
            );
        }
        // Map state is identical after the whole run.
        let ia = interp.maps().get(imap).unwrap();
        let fa = fast.maps().get(fmap).unwrap();
        for k in 0u32..4 {
            assert_eq!(ia.lookup_u64(k).unwrap(), fa.lookup_u64(k).unwrap());
        }
    }

    #[test]
    fn fast_backend_honors_tail_call_cap() {
        let maps = MapRegistry::new();
        let prog_array = maps.create(MapDef::prog_array(1));
        let mut vm = Vm::new(maps);
        vm.set_backend(Backend::Fast);
        let prog = Asm::new()
            .load_map_fd(Reg::R2, prog_array)
            .mov64_imm(Reg::R3, 0)
            .call(HelperId::TailCall)
            .mov64_imm(Reg::R0, 9)
            .exit()
            .build("self")
            .unwrap();
        let slot = vm.load_unverified(prog);
        vm.maps()
            .get(prog_array)
            .unwrap()
            .set_prog(0, Some(slot))
            .unwrap();
        let mut data = [0u8; 4];
        let mut ctx = PacketCtx::new(&mut data);
        let out = vm.run(slot, &mut ctx, &mut RunEnv::default()).unwrap();
        assert_eq!(out.ret, 9);
        assert_eq!(out.tail_calls, MAX_TAIL_CALLS);
    }

    #[test]
    fn fast_backend_traps_match_interpreter() {
        // Same defense-in-depth checks, same error values.
        let cases: Vec<(Program, VmError)> = vec![
            (
                Asm::new()
                    .mov64_reg(Reg::R0, Reg::R5)
                    .exit()
                    .build("uninit")
                    .unwrap(),
                VmError::UninitRegister(Reg::R5),
            ),
            (
                Asm::new()
                    .mov64_imm(Reg::R1, 1)
                    .stx_dw(Reg::R10, -516, Reg::R1)
                    .exit()
                    .build("oob")
                    .unwrap(),
                VmError::OutOfBounds {
                    region: "stack",
                    off: -4,
                    size: 8,
                },
            ),
            (
                Asm::new()
                    .mov64_imm(Reg::R0, 0)
                    .stx_dw(Reg::R1, 0, Reg::R0)
                    .exit()
                    .build("ctx_store")
                    .unwrap(),
                VmError::ReadOnly,
            ),
        ];
        for (prog, want) in cases {
            for backend in [Backend::Interp, Backend::Fast] {
                let mut vm = Vm::new(MapRegistry::new());
                vm.set_backend(backend);
                let slot = vm.load_unverified(prog.clone());
                let mut data = [0u8; 16];
                let mut ctx = PacketCtx::new(&mut data);
                let got = vm.run(slot, &mut ctx, &mut RunEnv::default()).unwrap_err();
                assert_eq!(got, want, "{backend} trap mismatch for {}", prog.name);
            }
        }
    }

    #[test]
    fn per_backend_counters_split_runs_and_cycles() {
        let registry = Registry::new();
        let (mut vm, slot, _) = world(Backend::Interp);
        vm.attach_telemetry(&registry);
        let mut data = [0u8; 8];
        for _ in 0..3 {
            let mut ctx = PacketCtx::new(&mut data);
            vm.run(slot, &mut ctx, &mut RunEnv::default()).unwrap();
        }
        vm.set_backend(Backend::Fast);
        for _ in 0..2 {
            let mut ctx = PacketCtx::new(&mut data);
            vm.run(slot, &mut ctx, &mut RunEnv::default()).unwrap();
        }
        let snap = registry.snapshot();
        assert_eq!(snap.counter("vm/runs"), 5);
        assert_eq!(snap.counter("vm/runs_interp"), 3);
        assert_eq!(snap.counter("vm/runs_fast"), 2);
        // Modelled cycle totals agree per backend: the split counters sum
        // to the histogram total.
        let total = snap.histogram("vm/run_cycles").unwrap().sum();
        assert_eq!(
            snap.counter("vm/cycles_interp") + snap.counter("vm/cycles_fast"),
            total
        );
    }

    #[test]
    fn fast_backend_profiler_coverage_is_exact() {
        let registry = Registry::new();
        let profiler = syrup_profile::Profiler::new();
        let maps = MapRegistry::new();
        let prog_array = maps.create(MapDef::prog_array(4));
        let mut vm = Vm::new(maps);
        vm.set_backend(Backend::Fast);
        vm.attach_telemetry(&registry);
        vm.attach_profiler(&profiler);

        let policy = Asm::new()
            .mov64_imm(Reg::R0, 3)
            .exit()
            .build("policy")
            .unwrap();
        let policy_slot = vm.load_unverified(policy);
        vm.maps()
            .get(prog_array)
            .unwrap()
            .set_prog(0, Some(policy_slot))
            .unwrap();
        let dispatch = Asm::new()
            .load_map_fd(Reg::R2, prog_array)
            .mov64_imm(Reg::R3, 0)
            .call(HelperId::TailCall)
            .mov64_imm(Reg::R0, 0)
            .exit()
            .build("dispatch")
            .unwrap();
        let dispatch_slot = vm.load_unverified(dispatch);

        let mut data = [0u8; 4];
        for _ in 0..5 {
            let mut ctx = PacketCtx::new(&mut data);
            let out = vm
                .run(dispatch_slot, &mut ctx, &mut RunEnv::default())
                .unwrap();
            assert_eq!(out.ret, 3);
        }

        let total = registry
            .snapshot()
            .histogram("vm/run_cycles")
            .unwrap()
            .sum();
        let report = profiler.report(Some(total), 16);
        assert_eq!(report.runs, 5);
        assert_eq!(report.attributed_cycles, total);
        assert_eq!(report.coverage, 1.0);
        assert!(report.progs.iter().any(|p| p.prog == "dispatch"));
        assert!(report.progs.iter().any(|p| p.prog == "policy"));
    }
}
