//! eBPF maps: the kernel data structures behind Syrup's Map abstraction.
//!
//! Maps are how Syrup policies hold executors, communicate across layers,
//! and talk to userspace agents (§3.4). This module implements the three
//! kinds the paper relies on:
//!
//! * **Array** — fixed-size, zero-initialized, indexed by a `u32` key; used
//!   for executor tables and counters.
//! * **Hash** — arbitrary byte keys; used for application-defined state.
//! * **ProgArray** — program references for tail calls; `syrupd` uses one to
//!   dispatch packets to the owning application's policy (§4.3).
//!
//! Like kernel maps, these have no lock visible to programs; §4.1 notes
//! that programs instead use atomic instructions directly on values, which
//! [`MapRef::fetch_add_value`] provides. Userspace accesses values by copy
//! ([`MapRef::lookup`]/[`MapRef::update`]); programs access them in place
//! through slot handles, mirroring the pointer-to-value semantics of
//! `bpf_map_lookup_elem`.
//!
//! Maps can be pinned to a path in a sysfs-like namespace so multiple
//! programs of the same user can share them; `syrup-core` layers file-style
//! permissions on top.

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};

/// Identifies a map within a [`MapRegistry`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MapId(pub u32);

/// Identifies a loaded program (used by [`MapKind::ProgArray`] entries).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ProgSlot(pub u32);

/// The map flavour.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MapKind {
    /// Fixed-size array indexed by `u32`, zero-initialized.
    Array,
    /// Hash table with arbitrary fixed-size byte keys.
    Hash,
    /// Array of program references for tail calls.
    ProgArray,
}

/// Map creation parameters, mirroring `bpf_map_def`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MapDef {
    /// The flavour.
    pub kind: MapKind,
    /// Key size in bytes. Arrays and prog-arrays require 4.
    pub key_size: u32,
    /// Value size in bytes. Prog-arrays require 4.
    pub value_size: u32,
    /// Capacity.
    pub max_entries: u32,
}

impl MapDef {
    /// An array of `u64` values — the paper's default Map shape (§3.4).
    pub fn u64_array(max_entries: u32) -> MapDef {
        MapDef {
            kind: MapKind::Array,
            key_size: 4,
            value_size: 8,
            max_entries,
        }
    }

    /// A hash map from `u32` keys to `u64` values.
    pub fn u64_hash(max_entries: u32) -> MapDef {
        MapDef {
            kind: MapKind::Hash,
            key_size: 4,
            value_size: 8,
            max_entries,
        }
    }

    /// A program array for tail-call dispatch.
    pub fn prog_array(max_entries: u32) -> MapDef {
        MapDef {
            kind: MapKind::ProgArray,
            key_size: 4,
            value_size: 4,
            max_entries,
        }
    }
}

/// Update flags, mirroring `BPF_ANY` / `BPF_NOEXIST` / `BPF_EXIST`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum UpdateFlag {
    /// Create or overwrite.
    #[default]
    Any,
    /// Only create; fail if the key exists.
    NoExist,
    /// Only overwrite; fail if the key is missing.
    Exist,
}

/// Sorted `(key bytes, value bytes)` snapshot of a whole map, as
/// returned by [`MapRef::entries`].
pub type MapEntries = Vec<(Vec<u8>, Vec<u8>)>;

/// Errors from map operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MapError {
    /// Key length does not match the definition.
    BadKeySize {
        /// Expected key length.
        expected: u32,
        /// Provided key length.
        got: usize,
    },
    /// Value length does not match the definition.
    BadValueSize {
        /// Expected value length.
        expected: u32,
        /// Provided value length.
        got: usize,
    },
    /// Array index or prog-array index out of range.
    IndexOutOfRange,
    /// Hash map is full.
    Full,
    /// `UpdateFlag` precondition failed.
    FlagConflict,
    /// Key not present (delete/EXIST update).
    NotFound,
    /// In-place value access hit a stale or out-of-range slot.
    BadSlotAccess,
    /// Operation not supported by this map kind (e.g. data ops on a
    /// prog-array).
    WrongKind,
}

impl fmt::Display for MapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MapError::BadKeySize { expected, got } => {
                write!(f, "bad key size: expected {expected}, got {got}")
            }
            MapError::BadValueSize { expected, got } => {
                write!(f, "bad value size: expected {expected}, got {got}")
            }
            MapError::IndexOutOfRange => write!(f, "index out of range"),
            MapError::Full => write!(f, "map is full"),
            MapError::FlagConflict => write!(f, "update flag precondition failed"),
            MapError::NotFound => write!(f, "key not found"),
            MapError::BadSlotAccess => write!(f, "stale or out-of-range value slot"),
            MapError::WrongKind => write!(f, "operation unsupported for this map kind"),
        }
    }
}

impl std::error::Error for MapError {}

#[derive(Debug)]
enum Storage {
    /// Marker only: array data lives lock-free in [`MapInner::array`].
    Array,
    Hash {
        index: HashMap<Vec<u8>, usize>,
        slots: Vec<Option<(Vec<u8>, Vec<u8>)>>, // (key, value)
        free: Vec<usize>,
    },
    ProgArray {
        progs: Vec<Option<ProgSlot>>,
    },
}

/// Array-map value bytes as relaxed atomic words, so program loads,
/// stores, and fetch-adds never take the storage lock — arrays are the
/// hot map shape on every per-packet policy path. Each slot is padded to
/// whole words; sub-word accesses merge via CAS, so concurrent writers
/// of neighboring bytes in one word cannot tear each other. Accesses
/// that straddle a word boundary are atomic per word only (the kernel
/// makes no stronger promise for unaligned map-value atomics either).
#[derive(Debug)]
struct ArrayStore {
    words: Vec<AtomicU64>,
    words_per_slot: usize,
}

/// Bit mask covering the low `n` bytes (`n <= 8`).
fn byte_mask(n: usize) -> u64 {
    if n >= 8 {
        u64::MAX
    } else {
        (1u64 << (n * 8)) - 1
    }
}

impl ArrayStore {
    fn new(def: &MapDef) -> Self {
        let words_per_slot = (def.value_size as usize).div_ceil(8);
        let total = def.max_entries as usize * words_per_slot;
        let mut words = Vec::with_capacity(total);
        words.resize_with(total, || AtomicU64::new(0));
        ArrayStore {
            words,
            words_per_slot,
        }
    }

    /// Reads `size` (≤ 8) bytes at byte offset `off` within `slot`,
    /// zero-extended, little-endian. Bounds are the caller's problem.
    fn read(&self, slot: u32, off: usize, size: usize) -> u64 {
        let wi = slot as usize * self.words_per_slot + off / 8;
        let sub = off % 8;
        let lo = self.words[wi].load(Ordering::Relaxed) >> (sub * 8);
        let have = 8 - sub;
        let v = if size > have {
            lo | (self.words[wi + 1].load(Ordering::Relaxed) << (have * 8))
        } else {
            lo
        };
        v & byte_mask(size)
    }

    /// Merges `bits` (pre-shifted) into the word at `wi` under `mask`.
    fn merge(&self, wi: usize, mask: u64, bits: u64) {
        let mut cur = self.words[wi].load(Ordering::Relaxed);
        loop {
            let next = (cur & !mask) | bits;
            match self.words[wi].compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Writes the low `size` bytes of `val` at `off` within `slot`.
    fn write(&self, slot: u32, off: usize, size: usize, val: u64) {
        let wi = slot as usize * self.words_per_slot + off / 8;
        let sub = off % 8;
        if size == 8 && sub == 0 {
            self.words[wi].store(val, Ordering::Relaxed);
            return;
        }
        let have = 8 - sub;
        if size <= have {
            self.merge(
                wi,
                byte_mask(size) << (sub * 8),
                (val & byte_mask(size)) << (sub * 8),
            );
        } else {
            self.merge(
                wi,
                byte_mask(have) << (sub * 8),
                (val & byte_mask(have)) << (sub * 8),
            );
            let rest = size - have;
            self.merge(
                wi + 1,
                byte_mask(rest),
                (val >> (have * 8)) & byte_mask(rest),
            );
        }
    }

    /// Atomically adds to the 4- or 8-byte cell at `off`, returning the
    /// previous contents. Word-aligned cells use a single atomic op; a
    /// cell that straddles words falls back to per-word merges.
    fn fetch_add(&self, slot: u32, off: usize, size: usize, val: u64) -> u64 {
        let sub = off % 8;
        if size == 8 && sub == 0 {
            let wi = slot as usize * self.words_per_slot + off / 8;
            return self.words[wi].fetch_add(val, Ordering::Relaxed);
        }
        if size == 4 && sub <= 4 {
            let wi = slot as usize * self.words_per_slot + off / 8;
            let shift = sub * 8;
            let mask = byte_mask(4) << shift;
            let mut cur = self.words[wi].load(Ordering::Relaxed);
            loop {
                let old = (cur >> shift) & byte_mask(4);
                let new = (old as u32).wrapping_add(val as u32) as u64;
                let next = (cur & !mask) | (new << shift);
                match self.words[wi].compare_exchange_weak(
                    cur,
                    next,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => return old,
                    Err(seen) => cur = seen,
                }
            }
        }
        let old = self.read(slot, off, size);
        let new = if size == 4 {
            (old as u32).wrapping_add(val as u32) as u64
        } else {
            old.wrapping_add(val)
        };
        self.write(slot, off, size, new);
        old
    }

    /// Copies a slot's value bytes out.
    fn copy_out(&self, slot: u32, value_size: usize) -> Vec<u8> {
        let base = slot as usize * self.words_per_slot;
        let mut out = vec![0u8; value_size];
        for (i, chunk) in out.chunks_mut(8).enumerate() {
            let w = self.words[base + i].load(Ordering::Relaxed).to_le_bytes();
            chunk.copy_from_slice(&w[..chunk.len()]);
        }
        out
    }

    /// Replaces a slot's value bytes (padding in the tail word is zeroed;
    /// it is unobservable).
    fn copy_in(&self, slot: u32, bytes: &[u8]) {
        let base = slot as usize * self.words_per_slot;
        for (i, chunk) in bytes.chunks(8).enumerate() {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.words[base + i].store(u64::from_le_bytes(buf), Ordering::Relaxed);
        }
    }
}

/// A shared handle to one map.
#[derive(Clone)]
pub struct MapRef {
    inner: Arc<MapInner>,
}

struct MapInner {
    id: MapId,
    def: MapDef,
    /// `Some` exactly when `def.kind == MapKind::Array`.
    array: Option<ArrayStore>,
    storage: Mutex<Storage>,
}

impl fmt::Debug for MapRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MapRef")
            .field("id", &self.inner.id)
            .field("def", &self.inner.def)
            .finish()
    }
}

impl MapRef {
    fn new(id: MapId, def: MapDef) -> Self {
        let mut array = None;
        let storage = match def.kind {
            MapKind::Array => {
                array = Some(ArrayStore::new(&def));
                Storage::Array
            }
            MapKind::Hash => Storage::Hash {
                index: HashMap::new(),
                slots: Vec::new(),
                free: Vec::new(),
            },
            MapKind::ProgArray => Storage::ProgArray {
                progs: vec![None; def.max_entries as usize],
            },
        };
        MapRef {
            inner: Arc::new(MapInner {
                id,
                def,
                array,
                storage: Mutex::new(storage),
            }),
        }
    }

    /// The map's identity.
    pub fn id(&self) -> MapId {
        self.inner.id
    }

    /// The creation parameters.
    pub fn def(&self) -> MapDef {
        self.inner.def
    }

    fn check_key(&self, key: &[u8]) -> Result<(), MapError> {
        if key.len() != self.inner.def.key_size as usize {
            return Err(MapError::BadKeySize {
                expected: self.inner.def.key_size,
                got: key.len(),
            });
        }
        Ok(())
    }

    /// Copies out the value for `key` (userspace `bpf_map_lookup_elem`).
    pub fn lookup(&self, key: &[u8]) -> Result<Option<Vec<u8>>, MapError> {
        self.check_key(key)?;
        if let Some(array) = &self.inner.array {
            let idx = array_index(key, self.inner.def.max_entries)?;
            let vs = self.inner.def.value_size as usize;
            return Ok(Some(array.copy_out(idx as u32, vs)));
        }
        let storage = self.inner.storage.lock();
        match &*storage {
            Storage::Array => unreachable!("array handled above"),
            Storage::Hash { index, slots, .. } => Ok(index
                .get(key)
                .and_then(|&slot| slots[slot].as_ref())
                .map(|(_, v)| v.clone())),
            Storage::ProgArray { .. } => Err(MapError::WrongKind),
        }
    }

    /// Convenience: looks up a `u64` value by `u32` key — the paper's
    /// default map shape.
    pub fn lookup_u64(&self, key: u32) -> Result<Option<u64>, MapError> {
        let v = self.lookup(&key.to_le_bytes())?;
        Ok(v.map(|bytes| {
            let mut buf = [0u8; 8];
            let n = bytes.len().min(8);
            buf[..n].copy_from_slice(&bytes[..n]);
            u64::from_le_bytes(buf)
        }))
    }

    /// Snapshots every present entry as sorted `(key, value)` pairs, for
    /// whole-map state comparison (the backend-diff oracle). Array maps
    /// yield every index under its `u32` little-endian key; prog-arrays
    /// hold programs, not data.
    pub fn entries(&self) -> Result<MapEntries, MapError> {
        if let Some(array) = &self.inner.array {
            let vs = self.inner.def.value_size as usize;
            return Ok((0..self.inner.def.max_entries)
                .map(|i| (i.to_le_bytes().to_vec(), array.copy_out(i, vs)))
                .collect());
        }
        let storage = self.inner.storage.lock();
        match &*storage {
            Storage::Array => unreachable!("array handled above"),
            Storage::Hash { slots, .. } => {
                let mut out: Vec<_> = slots
                    .iter()
                    .flatten()
                    .map(|(k, v)| (k.clone(), v.clone()))
                    .collect();
                out.sort();
                Ok(out)
            }
            Storage::ProgArray { .. } => Err(MapError::WrongKind),
        }
    }

    /// Writes the value for `key` (userspace `bpf_map_update_elem`).
    pub fn update(&self, key: &[u8], value: &[u8], flag: UpdateFlag) -> Result<(), MapError> {
        self.check_key(key)?;
        if value.len() != self.inner.def.value_size as usize {
            return Err(MapError::BadValueSize {
                expected: self.inner.def.value_size,
                got: value.len(),
            });
        }
        if let Some(array) = &self.inner.array {
            if flag == UpdateFlag::NoExist {
                // Array elements always exist.
                return Err(MapError::FlagConflict);
            }
            let idx = array_index(key, self.inner.def.max_entries)?;
            array.copy_in(idx as u32, value);
            return Ok(());
        }
        let mut storage = self.inner.storage.lock();
        match &mut *storage {
            Storage::Array => unreachable!("array handled above"),
            Storage::Hash { index, slots, free } => {
                let exists = index.contains_key(key);
                match flag {
                    UpdateFlag::NoExist if exists => return Err(MapError::FlagConflict),
                    UpdateFlag::Exist if !exists => return Err(MapError::FlagConflict),
                    _ => {}
                }
                if let Some(&slot) = index.get(key) {
                    if let Some((_, v)) = slots[slot].as_mut() {
                        v.copy_from_slice(value);
                    }
                    return Ok(());
                }
                if index.len() >= self.inner.def.max_entries as usize {
                    return Err(MapError::Full);
                }
                let slot = match free.pop() {
                    Some(s) => {
                        slots[s] = Some((key.to_vec(), value.to_vec()));
                        s
                    }
                    None => {
                        slots.push(Some((key.to_vec(), value.to_vec())));
                        slots.len() - 1
                    }
                };
                index.insert(key.to_vec(), slot);
                Ok(())
            }
            Storage::ProgArray { .. } => Err(MapError::WrongKind),
        }
    }

    /// Convenience: stores a `u64` value under a `u32` key.
    pub fn update_u64(&self, key: u32, value: u64) -> Result<(), MapError> {
        self.update(&key.to_le_bytes(), &value.to_le_bytes(), UpdateFlag::Any)
    }

    /// Deletes `key` (hash maps only; array elements cannot be deleted).
    pub fn delete(&self, key: &[u8]) -> Result<(), MapError> {
        self.check_key(key)?;
        let mut storage = self.inner.storage.lock();
        match &mut *storage {
            Storage::Array => Err(MapError::WrongKind),
            Storage::Hash { index, slots, free } => match index.remove(key) {
                Some(slot) => {
                    slots[slot] = None;
                    free.push(slot);
                    Ok(())
                }
                None => Err(MapError::NotFound),
            },
            Storage::ProgArray { .. } => Err(MapError::WrongKind),
        }
    }

    /// Resolves `key` to a stable value-slot handle for in-place program
    /// access (the pointer `bpf_map_lookup_elem` returns in kernel code).
    pub fn slot_for_key(&self, key: &[u8]) -> Result<Option<u32>, MapError> {
        self.check_key(key)?;
        // Array slots are a pure function of the immutable def — no need
        // to take the storage lock on the hottest lookup path.
        if self.inner.def.kind == MapKind::Array {
            return match array_index(key, self.inner.def.max_entries) {
                Ok(idx) => Ok(Some(idx as u32)),
                // Out-of-range array lookups return NULL in the kernel.
                Err(_) => Ok(None),
            };
        }
        let storage = self.inner.storage.lock();
        match &*storage {
            Storage::Array => unreachable!("array handled above"),
            Storage::Hash { index, .. } => Ok(index.get(key).map(|&s| s as u32)),
            Storage::ProgArray { .. } => Err(MapError::WrongKind),
        }
    }

    /// Bounds-checks an array slot access, returning the byte offset and
    /// size as `usize` (array values are dense, so `off + size` within
    /// `value_size` is the whole check).
    #[inline(always)]
    fn check_array_access(
        &self,
        slot: u32,
        off: u32,
        size: u32,
    ) -> Result<(usize, usize), MapError> {
        let (off, size) = (off as usize, size as usize);
        if slot >= self.inner.def.max_entries || off + size > self.inner.def.value_size as usize {
            return Err(MapError::BadSlotAccess);
        }
        Ok((off, size))
    }

    fn with_value_bytes<R>(
        &self,
        slot: u32,
        f: impl FnOnce(&mut [u8]) -> R,
    ) -> Result<R, MapError> {
        let mut storage = self.inner.storage.lock();
        match &mut *storage {
            Storage::Array => unreachable!("array accesses bypass the lock"),
            Storage::Hash { slots, .. } => match slots.get_mut(slot as usize) {
                Some(Some((_, v))) => Ok(f(v)),
                // The slot was deleted after the program obtained the
                // handle; the kernel prevents this with RCU, we trap.
                _ => Err(MapError::BadSlotAccess),
            },
            Storage::ProgArray { .. } => Err(MapError::WrongKind),
        }
    }

    /// Reads `size` bytes at `off` within the value at `slot`,
    /// zero-extended to `u64` (little-endian, as on x86).
    pub fn read_value(&self, slot: u32, off: u32, size: u32) -> Result<u64, MapError> {
        if let Some(array) = &self.inner.array {
            let (off, size) = self.check_array_access(slot, off, size)?;
            return Ok(array.read(slot, off, size));
        }
        self.with_value_bytes(slot, |bytes| {
            let (off, size) = (off as usize, size as usize);
            if off + size > bytes.len() {
                return Err(MapError::BadSlotAccess);
            }
            let mut buf = [0u8; 8];
            buf[..size].copy_from_slice(&bytes[off..off + size]);
            Ok(u64::from_le_bytes(buf))
        })?
    }

    /// Writes the low `size` bytes of `val` at `off` within the value at
    /// `slot`.
    pub fn write_value(&self, slot: u32, off: u32, size: u32, val: u64) -> Result<(), MapError> {
        if let Some(array) = &self.inner.array {
            let (off, size) = self.check_array_access(slot, off, size)?;
            array.write(slot, off, size, val);
            return Ok(());
        }
        self.with_value_bytes(slot, |bytes| {
            let (off, size) = (off as usize, size as usize);
            if off + size > bytes.len() {
                return Err(MapError::BadSlotAccess);
            }
            bytes[off..off + size].copy_from_slice(&val.to_le_bytes()[..size]);
            Ok(())
        })?
    }

    /// Atomically adds `val` to the 4- or 8-byte cell at `off` within the
    /// value at `slot`, returning the previous contents. This is the §4.1
    /// "atomic instructions directly on BPF map values" primitive.
    pub fn fetch_add_value(
        &self,
        slot: u32,
        off: u32,
        size: u32,
        val: u64,
    ) -> Result<u64, MapError> {
        if size != 4 && size != 8 {
            return Err(MapError::BadSlotAccess);
        }
        if let Some(array) = &self.inner.array {
            let (off, size) = self.check_array_access(slot, off, size)?;
            return Ok(array.fetch_add(slot, off, size, val));
        }
        self.with_value_bytes(slot, |bytes| {
            let (off, size) = (off as usize, size as usize);
            if off + size > bytes.len() {
                return Err(MapError::BadSlotAccess);
            }
            let mut buf = [0u8; 8];
            buf[..size].copy_from_slice(&bytes[off..off + size]);
            let old = u64::from_le_bytes(buf);
            let new = if size == 4 {
                ((old as u32).wrapping_add(val as u32)) as u64
            } else {
                old.wrapping_add(val)
            };
            bytes[off..off + size].copy_from_slice(&new.to_le_bytes()[..size]);
            Ok(old)
        })?
    }

    /// Reads a prog-array entry.
    pub fn get_prog(&self, index: u32) -> Result<Option<ProgSlot>, MapError> {
        let storage = self.inner.storage.lock();
        match &*storage {
            Storage::ProgArray { progs } => Ok(progs.get(index as usize).copied().flatten()),
            _ => Err(MapError::WrongKind),
        }
    }

    /// Sets a prog-array entry (how `syrupd` installs per-app policies).
    pub fn set_prog(&self, index: u32, prog: Option<ProgSlot>) -> Result<(), MapError> {
        let mut storage = self.inner.storage.lock();
        match &mut *storage {
            Storage::ProgArray { progs } => match progs.get_mut(index as usize) {
                Some(entry) => {
                    *entry = prog;
                    Ok(())
                }
                None => Err(MapError::IndexOutOfRange),
            },
            _ => Err(MapError::WrongKind),
        }
    }

    /// Number of live entries (hash) or capacity (array / prog-array).
    pub fn len(&self) -> usize {
        let storage = self.inner.storage.lock();
        match &*storage {
            Storage::Array | Storage::ProgArray { .. } => self.inner.def.max_entries as usize,
            Storage::Hash { index, .. } => index.len(),
        }
    }

    /// Whether a hash map holds no entries (always `false` for arrays).
    pub fn is_empty(&self) -> bool {
        let storage = self.inner.storage.lock();
        match &*storage {
            Storage::Hash { index, .. } => index.is_empty(),
            _ => false,
        }
    }
}

fn array_index(key: &[u8], max_entries: u32) -> Result<usize, MapError> {
    let mut buf = [0u8; 4];
    buf.copy_from_slice(&key[..4]);
    let idx = u32::from_le_bytes(buf);
    if idx >= max_entries {
        return Err(MapError::IndexOutOfRange);
    }
    Ok(idx as usize)
}

/// A registry of maps with a pin-to-path namespace (the sysfs pinning of
/// §3.4). Cloning shares the underlying registry.
#[derive(Clone, Default)]
pub struct MapRegistry {
    inner: Arc<RwLock<RegistryInner>>,
}

#[derive(Default)]
struct RegistryInner {
    maps: Vec<MapRef>,
    pins: HashMap<String, MapId>,
}

impl fmt::Debug for MapRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let inner = self.inner.read();
        f.debug_struct("MapRegistry")
            .field("maps", &inner.maps.len())
            .field("pins", &inner.pins.len())
            .finish()
    }
}

impl MapRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a map and returns its id.
    pub fn create(&self, def: MapDef) -> MapId {
        let mut inner = self.inner.write();
        let id = MapId(inner.maps.len() as u32);
        inner.maps.push(MapRef::new(id, def));
        id
    }

    /// Fetches a handle by id.
    pub fn get(&self, id: MapId) -> Option<MapRef> {
        self.inner.read().maps.get(id.0 as usize).cloned()
    }

    /// Pins a map to a path so other programs can open it.
    pub fn pin(&self, id: MapId, path: impl Into<String>) -> Result<(), MapError> {
        let mut inner = self.inner.write();
        if id.0 as usize >= inner.maps.len() {
            return Err(MapError::NotFound);
        }
        inner.pins.insert(path.into(), id);
        Ok(())
    }

    /// Removes a pin; the map itself survives (ids are never reused), only
    /// the path lookup goes away. Errors if the path was not pinned.
    pub fn unpin(&self, path: &str) -> Result<MapId, MapError> {
        let mut inner = self.inner.write();
        inner.pins.remove(path).ok_or(MapError::NotFound)
    }

    /// Opens a pinned map by path (`syr_map_open`).
    pub fn open(&self, path: &str) -> Option<MapRef> {
        let inner = self.inner.read();
        let id = *inner.pins.get(path)?;
        inner.maps.get(id.0 as usize).cloned()
    }

    /// All pinned paths with their map ids, sorted by path (the
    /// `ls /sys/fs/bpf` an operator would run; `syrupctl map dump` uses
    /// it to enumerate maps).
    pub fn pins(&self) -> Vec<(String, MapId)> {
        let inner = self.inner.read();
        let mut pins: Vec<(String, MapId)> =
            inner.pins.iter().map(|(p, &id)| (p.clone(), id)).collect();
        pins.sort();
        pins
    }

    /// Number of maps ever created.
    pub fn len(&self) -> usize {
        self.inner.read().maps.len()
    }

    /// Whether no maps exist.
    pub fn is_empty(&self) -> bool {
        self.inner.read().maps.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn registry_with(def: MapDef) -> (MapRegistry, MapRef) {
        let reg = MapRegistry::new();
        let id = reg.create(def);
        let map = reg.get(id).unwrap();
        (reg, map)
    }

    #[test]
    fn array_is_zero_initialized() {
        let (_, map) = registry_with(MapDef::u64_array(4));
        assert_eq!(map.lookup_u64(0).unwrap(), Some(0));
        assert_eq!(map.lookup_u64(3).unwrap(), Some(0));
    }

    #[test]
    fn array_update_lookup_round_trip() {
        let (_, map) = registry_with(MapDef::u64_array(8));
        map.update_u64(5, 0xDEAD_BEEF).unwrap();
        assert_eq!(map.lookup_u64(5).unwrap(), Some(0xDEAD_BEEF));
    }

    #[test]
    fn array_out_of_range() {
        let (_, map) = registry_with(MapDef::u64_array(2));
        assert_eq!(map.lookup_u64(2), Err(MapError::IndexOutOfRange));
        assert_eq!(map.update_u64(9, 1), Err(MapError::IndexOutOfRange));
        // In-kernel lookup of an OOB array index returns NULL.
        assert_eq!(map.slot_for_key(&9u32.to_le_bytes()).unwrap(), None);
    }

    #[test]
    fn array_rejects_delete_and_noexist() {
        let (_, map) = registry_with(MapDef::u64_array(2));
        assert_eq!(map.delete(&0u32.to_le_bytes()), Err(MapError::WrongKind));
        assert_eq!(
            map.update(
                &0u32.to_le_bytes(),
                &1u64.to_le_bytes(),
                UpdateFlag::NoExist
            ),
            Err(MapError::FlagConflict)
        );
    }

    #[test]
    fn hash_insert_lookup_delete() {
        let (_, map) = registry_with(MapDef::u64_hash(16));
        assert_eq!(map.lookup_u64(7).unwrap(), None);
        map.update_u64(7, 42).unwrap();
        assert_eq!(map.lookup_u64(7).unwrap(), Some(42));
        map.delete(&7u32.to_le_bytes()).unwrap();
        assert_eq!(map.lookup_u64(7).unwrap(), None);
        assert_eq!(map.delete(&7u32.to_le_bytes()), Err(MapError::NotFound));
    }

    #[test]
    fn hash_capacity_and_slot_reuse() {
        let (_, map) = registry_with(MapDef::u64_hash(2));
        map.update_u64(1, 1).unwrap();
        map.update_u64(2, 2).unwrap();
        assert_eq!(map.update_u64(3, 3), Err(MapError::Full));
        map.delete(&1u32.to_le_bytes()).unwrap();
        map.update_u64(3, 3).unwrap();
        assert_eq!(map.lookup_u64(3).unwrap(), Some(3));
        assert_eq!(map.len(), 2);
    }

    #[test]
    fn hash_update_flags() {
        let (_, map) = registry_with(MapDef::u64_hash(4));
        let k = 1u32.to_le_bytes();
        let v = 5u64.to_le_bytes();
        assert_eq!(
            map.update(&k, &v, UpdateFlag::Exist),
            Err(MapError::FlagConflict)
        );
        map.update(&k, &v, UpdateFlag::NoExist).unwrap();
        assert_eq!(
            map.update(&k, &v, UpdateFlag::NoExist),
            Err(MapError::FlagConflict)
        );
        map.update(&k, &10u64.to_le_bytes(), UpdateFlag::Exist)
            .unwrap();
        assert_eq!(map.lookup_u64(1).unwrap(), Some(10));
    }

    #[test]
    fn key_and_value_size_checks() {
        let (_, map) = registry_with(MapDef::u64_array(2));
        assert!(matches!(
            map.lookup(&[0u8; 3]),
            Err(MapError::BadKeySize {
                expected: 4,
                got: 3
            })
        ));
        assert!(matches!(
            map.update(&0u32.to_le_bytes(), &[0u8; 7], UpdateFlag::Any),
            Err(MapError::BadValueSize {
                expected: 8,
                got: 7
            })
        ));
    }

    #[test]
    fn in_place_value_access() {
        let (_, map) = registry_with(MapDef::u64_array(4));
        let slot = map.slot_for_key(&2u32.to_le_bytes()).unwrap().unwrap();
        map.write_value(slot, 0, 8, 100).unwrap();
        assert_eq!(map.read_value(slot, 0, 8).unwrap(), 100);
        assert_eq!(map.lookup_u64(2).unwrap(), Some(100));
        // Sub-word access.
        map.write_value(slot, 4, 2, 0xABCD).unwrap();
        assert_eq!(map.read_value(slot, 4, 2).unwrap(), 0xABCD);
        // Out-of-bounds within the value traps.
        assert_eq!(map.read_value(slot, 7, 4), Err(MapError::BadSlotAccess));
    }

    #[test]
    fn fetch_add_semantics() {
        let (_, map) = registry_with(MapDef::u64_array(1));
        let slot = map.slot_for_key(&0u32.to_le_bytes()).unwrap().unwrap();
        map.write_value(slot, 0, 8, 10).unwrap();
        assert_eq!(map.fetch_add_value(slot, 0, 8, 5).unwrap(), 10);
        assert_eq!(map.read_value(slot, 0, 8).unwrap(), 15);
        // Token-style decrement via two's complement.
        assert_eq!(map.fetch_add_value(slot, 0, 8, (-1i64) as u64).unwrap(), 15);
        assert_eq!(map.read_value(slot, 0, 8).unwrap(), 14);
        // 32-bit wraps within the word.
        map.write_value(slot, 0, 4, u32::MAX as u64).unwrap();
        map.fetch_add_value(slot, 0, 4, 1).unwrap();
        assert_eq!(map.read_value(slot, 0, 4).unwrap(), 0);
        // Only word sizes are atomic.
        assert_eq!(
            map.fetch_add_value(slot, 0, 2, 1),
            Err(MapError::BadSlotAccess)
        );
    }

    #[test]
    fn stale_hash_slot_traps() {
        let (_, map) = registry_with(MapDef::u64_hash(4));
        map.update_u64(9, 1).unwrap();
        let slot = map.slot_for_key(&9u32.to_le_bytes()).unwrap().unwrap();
        map.delete(&9u32.to_le_bytes()).unwrap();
        assert_eq!(map.read_value(slot, 0, 8), Err(MapError::BadSlotAccess));
    }

    #[test]
    fn prog_array_entries() {
        let (_, map) = registry_with(MapDef::prog_array(4));
        assert_eq!(map.get_prog(0).unwrap(), None);
        map.set_prog(0, Some(ProgSlot(11))).unwrap();
        assert_eq!(map.get_prog(0).unwrap(), Some(ProgSlot(11)));
        map.set_prog(0, None).unwrap();
        assert_eq!(map.get_prog(0).unwrap(), None);
        assert_eq!(
            map.set_prog(9, Some(ProgSlot(1))),
            Err(MapError::IndexOutOfRange)
        );
        assert_eq!(map.get_prog(9).unwrap(), None);
        // Data ops are invalid on prog arrays.
        assert_eq!(map.lookup(&0u32.to_le_bytes()), Err(MapError::WrongKind));
    }

    #[test]
    fn pinning_namespace() {
        let (reg, map) = registry_with(MapDef::u64_array(1));
        reg.pin(map.id(), "/sys/fs/bpf/app1/tokens").unwrap();
        let opened = reg.open("/sys/fs/bpf/app1/tokens").unwrap();
        opened.update_u64(0, 77).unwrap();
        assert_eq!(map.lookup_u64(0).unwrap(), Some(77));
        assert!(reg.open("/sys/fs/bpf/other").is_none());
        assert_eq!(reg.pin(MapId(99), "x"), Err(MapError::NotFound));
    }

    #[test]
    fn concurrent_fetch_add_is_atomic() {
        let (_, map) = registry_with(MapDef::u64_array(1));
        let slot = map.slot_for_key(&0u32.to_le_bytes()).unwrap().unwrap();
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let m = map.clone();
                std::thread::spawn(move || {
                    for _ in 0..10_000 {
                        m.fetch_add_value(slot, 0, 8, 1).unwrap();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(map.read_value(slot, 0, 8).unwrap(), 40_000);
    }
}
