//! A simplified Completely Fair Scheduler.
//!
//! The model keeps CFS's essential behaviours for the Figure 8 workload —
//! per-core runqueues ordered by virtual runtime, wake placement onto idle
//! cores (else the least-loaded runqueue), and time-slice preemption at
//! millisecond granularity — while omitting what the experiment does not
//! exercise (nice levels, cgroups, load-balancer heuristics). The one
//! property that drives the paper's result is faithfully preserved: CFS
//! knows nothing about *what* a thread is doing, so a 700µs SCAN keeps its
//! core until its slice expires even while 10µs GETs queue behind it.

use std::collections::HashMap;

use syrup_sim::{Duration, Time};

use crate::{Assignment, CoreId, ThreadId, ThreadScheduler};

/// Tunables for the CFS model.
#[derive(Debug, Clone, Copy)]
pub struct CfsParams {
    /// Preemption granularity (Linux `sched_min_granularity` scale).
    pub slice: Duration,
    /// Context-switch cost applied to every dispatch.
    pub ctx_switch: Duration,
}

impl Default for CfsParams {
    fn default() -> Self {
        CfsParams {
            slice: Duration::from_millis(1),
            ctx_switch: Duration::from_micros(2),
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TState {
    Sleeping,
    Queued(CoreId),
    Running(CoreId),
}

/// The scheduler state.
#[derive(Debug)]
pub struct CfsSched {
    params: CfsParams,
    cores: Vec<CoreId>,
    /// Per-core: currently running thread and when it started.
    running: HashMap<CoreId, (ThreadId, Time)>,
    /// Per-core runqueues (kept sorted by vruntime on demand).
    queues: HashMap<CoreId, Vec<ThreadId>>,
    vruntime: HashMap<ThreadId, u64>,
    state: HashMap<ThreadId, TState>,
}

impl CfsSched {
    /// Creates a CFS over `cores`.
    pub fn new(cores: Vec<CoreId>, params: CfsParams) -> Self {
        let queues = cores.iter().map(|&c| (c, Vec::new())).collect();
        CfsSched {
            params,
            cores,
            running: HashMap::new(),
            queues,
            vruntime: HashMap::new(),
            state: HashMap::new(),
        }
    }

    fn min_vruntime(&self, core: CoreId) -> Option<ThreadId> {
        self.queues[&core]
            .iter()
            .copied()
            .min_by_key(|t| self.vruntime.get(t).copied().unwrap_or(0))
    }

    fn account(&mut self, t: ThreadId, started: Time, now: Time) {
        let ran = now.since(started).as_nanos();
        *self.vruntime.entry(t).or_insert(0) += ran;
    }

    fn dispatch(
        &mut self,
        core: CoreId,
        t: ThreadId,
        now: Time,
        preempted: Option<ThreadId>,
    ) -> Assignment {
        let start_at = now + self.params.ctx_switch;
        self.running.insert(core, (t, start_at));
        self.state.insert(t, TState::Running(core));
        Assignment {
            core,
            thread: t,
            start_at,
            preempted,
        }
    }
}

impl ThreadScheduler for CfsSched {
    fn app_cores(&self) -> Vec<CoreId> {
        self.cores.clone()
    }

    fn thread_ready(&mut self, t: ThreadId, now: Time) -> Vec<Assignment> {
        match self.state.get(&t) {
            Some(TState::Queued(_)) | Some(TState::Running(_)) => return Vec::new(),
            _ => {}
        }
        // Wake placement: an idle core if one exists…
        if let Some(&idle) = self.cores.iter().find(|c| !self.running.contains_key(c)) {
            // A newly woken thread inherits the smallest vruntime in the
            // system so it is not starved (CFS clamps to min_vruntime).
            let min_v = self.vruntime.values().copied().min().unwrap_or(0);
            let v = self.vruntime.entry(t).or_insert(0);
            *v = (*v).max(min_v);
            return vec![self.dispatch(idle, t, now, None)];
        }
        // …else the shortest runqueue. No wake preemption: CFS is request-
        // type-oblivious, and at equal weights a running thread keeps its
        // slice.
        let core = *self
            .cores
            .iter()
            .min_by_key(|c| self.queues[c].len())
            .expect("at least one core");
        self.queues.get_mut(&core).expect("known core").push(t);
        self.state.insert(t, TState::Queued(core));
        Vec::new()
    }

    fn thread_stopped(&mut self, t: ThreadId, core: CoreId, now: Time) -> Vec<Assignment> {
        if let Some((running, started)) = self.running.remove(&core) {
            debug_assert_eq!(running, t, "stopped thread was not running there");
            self.account(t, started, now);
        }
        self.state.insert(t, TState::Sleeping);
        match self.min_vruntime(core) {
            Some(next) => {
                self.queues
                    .get_mut(&core)
                    .expect("known core")
                    .retain(|&x| x != next);
                vec![self.dispatch(core, next, now, None)]
            }
            None => Vec::new(),
        }
    }

    fn preempt_check(&mut self, core: CoreId, now: Time) -> Vec<Assignment> {
        let Some(&(current, started)) = self.running.get(&core) else {
            return Vec::new();
        };
        // Only preempt when the slice is actually used up.
        if now.since(started) < self.params.slice {
            return Vec::new();
        }
        let Some(next) = self.min_vruntime(core) else {
            return Vec::new();
        };
        self.account(current, started, now);
        let cur_v = self.vruntime.get(&current).copied().unwrap_or(0);
        let next_v = self.vruntime.get(&next).copied().unwrap_or(0);
        if next_v >= cur_v {
            // The current thread is still the fairest choice; restart its
            // slice accounting.
            self.running.insert(core, (current, now));
            return Vec::new();
        }
        // Switch: current goes back to this core's queue.
        self.queues
            .get_mut(&core)
            .expect("known core")
            .retain(|&x| x != next);
        self.queues
            .get_mut(&core)
            .expect("known core")
            .push(current);
        self.state.insert(current, TState::Queued(core));
        vec![self.dispatch(core, next, now, Some(current))]
    }

    fn timeslice(&self) -> Option<Duration> {
        Some(self.params.slice)
    }

    fn runnable_count(&self) -> usize {
        self.queues.values().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cores(n: u32) -> Vec<CoreId> {
        (0..n).map(CoreId).collect()
    }

    #[test]
    fn wakes_go_to_idle_cores_first() {
        let mut s = CfsSched::new(cores(2), CfsParams::default());
        let a = s.thread_ready(ThreadId(1), Time::ZERO);
        assert_eq!(a.len(), 1);
        assert_eq!(a[0].core, CoreId(0));
        let b = s.thread_ready(ThreadId(2), Time::ZERO);
        assert_eq!(b[0].core, CoreId(1));
        // Third thread has no idle core: queued, no assignment.
        assert!(s.thread_ready(ThreadId(3), Time::ZERO).is_empty());
        assert_eq!(s.runnable_count(), 1);
    }

    #[test]
    fn stopped_thread_hands_core_to_queued_one() {
        let mut s = CfsSched::new(cores(1), CfsParams::default());
        s.thread_ready(ThreadId(1), Time::ZERO);
        s.thread_ready(ThreadId(2), Time::ZERO);
        let next = s.thread_stopped(ThreadId(1), CoreId(0), Time::from_micros(50));
        assert_eq!(next.len(), 1);
        assert_eq!(next[0].thread, ThreadId(2));
        assert!(next[0].start_at > Time::from_micros(50)); // ctx switch
        assert_eq!(s.runnable_count(), 0);
    }

    #[test]
    fn no_preemption_before_slice_expires() {
        let mut s = CfsSched::new(cores(1), CfsParams::default());
        s.thread_ready(ThreadId(1), Time::ZERO);
        s.thread_ready(ThreadId(2), Time::ZERO);
        // 100µs into a 1ms slice: no switch, even with a queued thread.
        assert!(s
            .preempt_check(CoreId(0), Time::from_micros(100))
            .is_empty());
    }

    #[test]
    fn slice_expiry_switches_to_lower_vruntime() {
        let mut s = CfsSched::new(cores(1), CfsParams::default());
        s.thread_ready(ThreadId(1), Time::ZERO);
        s.thread_ready(ThreadId(2), Time::ZERO);
        let a = s.preempt_check(CoreId(0), Time::from_millis(2));
        assert_eq!(a.len(), 1);
        assert_eq!(a[0].thread, ThreadId(2));
        assert_eq!(a[0].preempted, Some(ThreadId(1)));
        // The preempted thread is runnable again.
        assert_eq!(s.runnable_count(), 1);
    }

    #[test]
    fn vruntime_fairness_across_switches() {
        // Thread 1 runs 5ms, then thread 2 should win and keep the core
        // until it catches up.
        let mut s = CfsSched::new(cores(1), CfsParams::default());
        s.thread_ready(ThreadId(1), Time::ZERO);
        s.thread_ready(ThreadId(2), Time::ZERO);
        let a = s.preempt_check(CoreId(0), Time::from_millis(5));
        assert_eq!(a[0].thread, ThreadId(2));
        // 1ms later, thread 2 (1ms) still trails thread 1 (5ms): no switch.
        assert!(s.preempt_check(CoreId(0), Time::from_millis(6)).is_empty());
    }

    #[test]
    fn sleeping_wake_requeue_cycle() {
        let mut s = CfsSched::new(cores(1), CfsParams::default());
        s.thread_ready(ThreadId(1), Time::ZERO);
        s.thread_stopped(ThreadId(1), CoreId(0), Time::from_micros(10));
        // Re-wake gets the idle core again.
        let a = s.thread_ready(ThreadId(1), Time::from_micros(20));
        assert_eq!(a.len(), 1);
        assert_eq!(a[0].thread, ThreadId(1));
    }

    #[test]
    fn duplicate_ready_is_ignored() {
        let mut s = CfsSched::new(cores(1), CfsParams::default());
        assert_eq!(s.thread_ready(ThreadId(1), Time::ZERO).len(), 1);
        assert!(s.thread_ready(ThreadId(1), Time::ZERO).is_empty());
        assert_eq!(s.runnable_count(), 0);
    }
}
