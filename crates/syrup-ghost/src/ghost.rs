//! The ghOSt-style centralized scheduler with a Syrup thread policy.
//!
//! ghOSt forwards thread state changes to a *spinning userspace agent*
//! over a message queue; the agent runs the policy and commits decisions
//! back via syscalls, which the kernel enforces with IPIs to the target
//! cores (§4.1). Three costs of that architecture matter for Figure 8 and
//! are modelled explicitly:
//!
//! 1. the agent occupies a whole core ("only five cores can be used for
//!    application processing; one is reserved for the spinning ghOSt
//!    agent"),
//! 2. messages serialize through the agent (queueing delay under load),
//! 3. preemptions pay an IPI + context switch before the new thread runs.
//!
//! The deployed policy is the paper's §5.3 one: strict priority for
//! threads processing GETs, "preempting at will threads processing SCAN
//! requests", with the GET/SCAN classification read from an
//! application-populated Map — Syrup's cross-layer communication in
//! action.

use std::collections::BTreeMap;

use syrup_ebpf::maps::MapRef;
use syrup_sim::{Duration, Time};
use syrup_telemetry::{CounterHandle, GaugeHandle, HistogramHandle, Registry};

use crate::{Assignment, CoreId, ThreadId, ThreadScheduler};

/// Request-class codes stored in the thread-class Map.
pub mod class {
    /// Thread is idle / class unknown.
    pub const UNKNOWN: u64 = 0;
    /// Thread is processing (or about to process) a GET.
    pub const GET: u64 = 1;
    /// Thread is processing a SCAN.
    pub const SCAN: u64 = 2;
}

/// Cost parameters of the ghOSt machinery.
#[derive(Debug, Clone, Copy)]
pub struct GhostParams {
    /// Kernel → agent message latency.
    pub message_delay: Duration,
    /// Agent processing cost per message (the spinning thread's loop).
    pub agent_cost: Duration,
    /// IPI delivery + remote context switch for a preemption.
    pub ipi: Duration,
    /// Plain dispatch context switch (no IPI needed).
    pub ctx_switch: Duration,
}

impl Default for GhostParams {
    fn default() -> Self {
        GhostParams {
            message_delay: Duration::from_nanos(1_000),
            agent_cost: Duration::from_nanos(600),
            ipi: Duration::from_micros(5),
            ctx_switch: Duration::from_micros(2),
        }
    }
}

/// Agent-side instrumentation: what ghOSt's own stats interface exports.
/// Disabled (free) until [`GhostSched::attach_telemetry`].
#[derive(Debug, Default)]
struct GhostTelemetry {
    /// Runnable-queue depth after each scheduling event.
    runnable_depth: GaugeHandle,
    /// Wire-to-decision latency of each agent message (message delay +
    /// queueing at the agent + processing), in nanoseconds.
    decision_latency: HistogramHandle,
    messages: CounterHandle,
    preemptions: CounterHandle,
}

/// The centralized scheduler state.
#[derive(Debug)]
pub struct GhostSched {
    params: GhostParams,
    app_cores: Vec<CoreId>,
    /// The core burned by the spinning agent.
    pub agent_core: CoreId,
    /// Thread → class, written by the application layer (§3.4 Map).
    class_map: MapRef,
    /// Keyed by a `BTreeMap` so victim selection in `policy` walks cores
    /// in a fixed order — `HashMap` iteration order made seeded runs
    /// nondeterministic.
    running: BTreeMap<CoreId, ThreadId>,
    runnable: Vec<ThreadId>,
    /// Thread → rank Map for the opt-in rank-ordered run queue
    /// ([`GhostSched::enable_ranked_runqueue`]). `None` keeps the classic
    /// class-priority policy bit-for-bit.
    rank_map: Option<MapRef>,
    /// When the agent finishes its current message backlog.
    agent_busy_until: Time,
    /// Total messages processed (diagnostics).
    pub messages: u64,
    /// Total preemptions issued (diagnostics).
    pub preemptions: u64,
    telemetry: GhostTelemetry,
    tracer: syrup_trace::Tracer,
    profiler: syrup_profile::Profiler,
    recorder: syrup_blackbox::Recorder,
    /// Trace context of the request each thread is serving, set by the
    /// application via [`GhostSched::set_thread_trace`].
    thread_trace: BTreeMap<u32, syrup_trace::TraceCtx>,
}

impl GhostSched {
    /// Creates the scheduler: `cores` are the machine's cores; the last
    /// one is taken by the agent and the rest host application threads.
    ///
    /// `class_map` is the Map the application populates with each
    /// thread's current request class (key = thread id).
    pub fn new(cores: Vec<CoreId>, class_map: MapRef, params: GhostParams) -> Self {
        assert!(cores.len() >= 2, "ghOSt needs an agent core plus app cores");
        let mut app_cores = cores;
        let agent_core = app_cores.pop().expect("nonempty");
        GhostSched {
            params,
            app_cores,
            agent_core,
            class_map,
            running: BTreeMap::new(),
            runnable: Vec::new(),
            rank_map: None,
            agent_busy_until: Time::ZERO,
            messages: 0,
            preemptions: 0,
            telemetry: GhostTelemetry::default(),
            tracer: syrup_trace::Tracer::disabled(),
            profiler: syrup_profile::Profiler::disabled(),
            recorder: syrup_blackbox::Recorder::disabled(),
            thread_trace: BTreeMap::new(),
        }
    }

    /// Starts feeding the pressure profiler: per-thread time-in-state
    /// (runnable on wakeup, running at dispatch, blocked on stop),
    /// scheduling-latency samples (wakeup → agent decision), and
    /// starvation events when a thread sat runnable past the profiler's
    /// threshold before being served.
    pub fn attach_profiler(&mut self, profiler: &syrup_profile::Profiler) {
        self.profiler = profiler.clone();
    }

    /// Streams thread state changes into the flight recorder
    /// ([`syrup_blackbox::Layer::Ghost`]; state 0 runnable, 1 running,
    /// 2 blocked), mirroring the transitions the pressure profiler
    /// aggregates.
    pub fn attach_blackbox(&mut self, recorder: &syrup_blackbox::Recorder) {
        self.recorder = recorder.clone();
    }

    /// Starts recording the agent pipeline onto request timelines:
    /// `ghost-enqueue` (wakeup message → agent decision), `ghost-dispatch`
    /// (decision → thread running, covering ctx-switch/IPI cost), and a
    /// `ghost-preempt` instant on the victim's timeline.
    pub fn attach_tracer(&mut self, tracer: &syrup_trace::Tracer) {
        self.tracer = tracer.clone();
    }

    /// Associates `thread` with the trace context of the request it is
    /// (about to be) serving. Subsequent agent decisions about the thread
    /// land on that request's timeline; pass
    /// [`syrup_trace::TraceCtx::none`] to detach.
    pub fn set_thread_trace(&mut self, thread: ThreadId, ctx: syrup_trace::TraceCtx) {
        if ctx.is_traced() {
            self.thread_trace.insert(thread.0, ctx);
        } else {
            self.thread_trace.remove(&thread.0);
        }
    }

    fn trace_of(&self, thread: ThreadId) -> syrup_trace::TraceCtx {
        self.thread_trace
            .get(&thread.0)
            .copied()
            .unwrap_or_default()
    }

    /// Publishes agent metrics under `ghost/` in `registry`
    /// (`ghost/runnable_depth`, `ghost/decision_latency_ns`,
    /// `ghost/messages`, `ghost/preemptions`).
    pub fn attach_telemetry(&mut self, registry: &Registry) {
        self.telemetry = GhostTelemetry {
            runnable_depth: registry.gauge("ghost/runnable_depth"),
            decision_latency: registry.histogram("ghost/decision_latency_ns"),
            messages: registry.counter("ghost/messages"),
            preemptions: registry.counter("ghost/preemptions"),
        };
    }

    fn class_of(&self, t: ThreadId) -> u64 {
        self.class_map
            .lookup_u64(t.0)
            .ok()
            .flatten()
            .unwrap_or(class::UNKNOWN)
    }

    /// Switches the agent to the rank-ordered run queue: the policy
    /// orders runnable threads by the rank the application writes into
    /// `rank_map` (key = thread id; lowest rank dispatches first, thread
    /// id breaks ties), and a runnable thread whose rank is strictly
    /// lower than a running thread's preempts it. Threads without a map
    /// entry rank [`u32::MAX`] (scheduled last, never preempting) — use a
    /// hash-backed map for that behaviour; an array map zero-fills, which
    /// makes unmapped threads most urgent instead.
    pub fn enable_ranked_runqueue(&mut self, rank_map: MapRef) {
        self.rank_map = Some(rank_map);
    }

    /// Whether the rank-ordered run queue is active.
    pub fn is_ranked(&self) -> bool {
        self.rank_map.is_some()
    }

    fn rank_of(&self, t: ThreadId) -> u32 {
        let Some(map) = &self.rank_map else {
            return u32::MAX;
        };
        map.lookup_u64(t.0)
            .ok()
            .flatten()
            .map_or(u32::MAX, |r| r.min(u64::from(u32::MAX)) as u32)
    }

    /// Models the agent serialization: a message arriving now is handled
    /// after the queue drains, costing one loop iteration.
    fn agent_process_time(&mut self, now: Time) -> Time {
        let arrival = now + self.params.message_delay;
        let start = arrival.max(self.agent_busy_until);
        let done = start + self.params.agent_cost;
        self.agent_busy_until = done;
        self.messages += 1;
        self.telemetry.messages.inc();
        self.telemetry
            .decision_latency
            .record(done.since(now).as_nanos());
        done
    }

    /// Runs the deployed policy and performs the shared bookkeeping
    /// (dispatch traces, thread-state samples, queue-depth gauge).
    fn policy(&mut self, decision_at: Time) -> Vec<Assignment> {
        let out = if self.rank_map.is_some() {
            self.policy_ranked(decision_at)
        } else {
            self.policy_classes(decision_at)
        };
        for a in &out {
            self.tracer.span_arg(
                self.trace_of(a.thread),
                syrup_trace::Stage::GhostDispatch,
                decision_at.as_nanos(),
                a.start_at.as_nanos(),
                u64::from(a.core.0),
            );
            self.profiler.thread_state(
                u64::from(a.thread.0),
                syrup_profile::ThreadState::Running,
                a.start_at.as_nanos(),
            );
            self.recorder
                .thread_state(a.start_at.as_nanos(), u64::from(a.thread.0), 1);
            if let Some(victim) = a.preempted {
                self.profiler.thread_state(
                    u64::from(victim.0),
                    syrup_profile::ThreadState::Runnable,
                    a.start_at.as_nanos(),
                );
                self.recorder
                    .thread_state(a.start_at.as_nanos(), u64::from(victim.0), 0);
            }
        }
        if self.rank_map.is_some() && self.profiler.is_enabled() {
            let mut bands = [0usize; syrup_sched::NUM_RANK_BANDS];
            for &t in &self.runnable {
                bands[syrup_sched::rank_band(self.rank_of(t))] += 1;
            }
            self.profiler
                .queue_rank_bands("ghost", decision_at.as_nanos(), &bands);
        }
        self.telemetry
            .runnable_depth
            .set(self.runnable.len() as i64);
        out
    }

    /// The paper's §5.3 policy: match runnable threads to cores, GETs
    /// first, preempting SCANs when a GET would otherwise wait.
    fn policy_classes(&mut self, decision_at: Time) -> Vec<Assignment> {
        let mut out = Vec::new();
        // Highest priority first: GETs, then unknown, then SCANs.
        let mut keyed: Vec<(u8, ThreadId)> = self
            .runnable
            .iter()
            .map(|&t| {
                let key = match self.class_of(t) {
                    class::GET => 0u8,
                    class::UNKNOWN => 1,
                    _ => 2,
                };
                (key, t)
            })
            .collect();
        keyed.sort_by_key(|&(k, t)| (k, t.0));
        self.runnable = keyed.into_iter().map(|(_, t)| t).collect();
        // Fill idle cores, highest priority first.
        while let Some(&idle) = self
            .app_cores
            .iter()
            .find(|c| !self.running.contains_key(c))
        {
            if self.runnable.is_empty() {
                break;
            }
            let t = self.runnable.remove(0);
            self.running.insert(idle, t);
            out.push(Assignment {
                core: idle,
                thread: t,
                start_at: decision_at + self.params.ctx_switch,
                preempted: None,
            });
        }
        // Preempt SCANs for waiting GETs.
        #[allow(clippy::while_let_loop)] // Two coupled lookups per iteration.
        loop {
            let Some(pos) = self
                .runnable
                .iter()
                .position(|&t| self.class_of(t) == class::GET)
            else {
                break;
            };
            let Some((&core, &victim)) = self
                .running
                .iter()
                .find(|(_, &t)| self.class_of(t) == class::SCAN)
            else {
                break;
            };
            let get_thread = self.runnable.remove(pos);
            self.running.insert(core, get_thread);
            self.runnable.push(victim);
            self.preemptions += 1;
            self.telemetry.preemptions.inc();
            self.tracer.instant(
                self.trace_of(victim),
                syrup_trace::Stage::GhostPreempt,
                decision_at.as_nanos(),
                u64::from(core.0),
            );
            out.push(Assignment {
                core,
                thread: get_thread,
                start_at: decision_at + self.params.ipi,
                preempted: Some(victim),
            });
        }
        out
    }

    /// The rank-ordered policy: drain the runnable pool through a PIFO
    /// (lowest rank first, FIFO ties), fill idle cores in that order,
    /// then preempt the highest-ranked running thread whenever a
    /// strictly lower-ranked thread waits.
    fn policy_ranked(&mut self, decision_at: Time) -> Vec<Assignment> {
        let mut out = Vec::new();
        let mut pifo = syrup_sched::Pifo::unbounded();
        for &t in &self.runnable {
            pifo.push(t, self.rank_of(t));
        }
        self.runnable.clear();
        while let Some((t, _)) = pifo.pop_entry() {
            self.runnable.push(t);
        }
        // Fill idle cores, most urgent first.
        while let Some(&idle) = self
            .app_cores
            .iter()
            .find(|c| !self.running.contains_key(c))
        {
            if self.runnable.is_empty() {
                break;
            }
            let t = self.runnable.remove(0);
            self.running.insert(idle, t);
            out.push(Assignment {
                core: idle,
                thread: t,
                start_at: decision_at + self.params.ctx_switch,
                preempted: None,
            });
        }
        // Preempt while the most urgent waiter outranks the least urgent
        // running thread.
        while let Some(&cand) = self.runnable.first() {
            let Some((&core, &victim)) = self
                .running
                .iter()
                .max_by_key(|(&core, &t)| (self.rank_of(t), core.0))
            else {
                break;
            };
            if self.rank_of(cand) >= self.rank_of(victim) {
                break;
            }
            self.runnable.remove(0);
            self.running.insert(core, cand);
            self.runnable.push(victim);
            self.preemptions += 1;
            self.telemetry.preemptions.inc();
            self.tracer.instant(
                self.trace_of(victim),
                syrup_trace::Stage::GhostPreempt,
                decision_at.as_nanos(),
                u64::from(core.0),
            );
            out.push(Assignment {
                core,
                thread: cand,
                start_at: decision_at + self.params.ipi,
                preempted: Some(victim),
            });
        }
        out
    }
}

impl ThreadScheduler for GhostSched {
    fn app_cores(&self) -> Vec<CoreId> {
        self.app_cores.clone()
    }

    fn thread_ready(&mut self, t: ThreadId, now: Time) -> Vec<Assignment> {
        if self.runnable.contains(&t) || self.running.values().any(|&r| r == t) {
            return Vec::new();
        }
        let decision_at = self.agent_process_time(now);
        self.tracer.span(
            self.trace_of(t),
            syrup_trace::Stage::GhostEnqueue,
            now.as_nanos(),
            decision_at.as_nanos(),
        );
        self.profiler.thread_state(
            u64::from(t.0),
            syrup_profile::ThreadState::Runnable,
            now.as_nanos(),
        );
        self.recorder
            .thread_state(now.as_nanos(), u64::from(t.0), 0);
        self.profiler
            .sched_latency(decision_at.since(now).as_nanos());
        self.runnable.push(t);
        self.policy(decision_at)
    }

    fn thread_stopped(&mut self, t: ThreadId, core: CoreId, now: Time) -> Vec<Assignment> {
        let decision_at = self.agent_process_time(now);
        self.profiler.thread_state(
            u64::from(t.0),
            syrup_profile::ThreadState::Blocked,
            now.as_nanos(),
        );
        self.recorder
            .thread_state(now.as_nanos(), u64::from(t.0), 2);
        if self.running.get(&core) == Some(&t) {
            self.running.remove(&core);
        }
        self.runnable.retain(|&x| x != t);
        self.policy(decision_at)
    }

    fn preempt_check(&mut self, _core: CoreId, _now: Time) -> Vec<Assignment> {
        // Purely event-driven: preemption decisions happen in `policy`.
        Vec::new()
    }

    fn timeslice(&self) -> Option<Duration> {
        None
    }

    fn runnable_count(&self) -> usize {
        self.runnable.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use syrup_ebpf::maps::{MapDef, MapRegistry};

    fn setup(n_cores: u32) -> (GhostSched, MapRef) {
        let reg = MapRegistry::new();
        let map = reg.get(reg.create(MapDef::u64_array(64))).unwrap();
        let sched = GhostSched::new(
            (0..n_cores).map(CoreId).collect(),
            map.clone(),
            GhostParams::default(),
        );
        (sched, map)
    }

    #[test]
    fn agent_takes_the_last_core() {
        let (s, _) = setup(6);
        assert_eq!(s.agent_core, CoreId(5));
        assert_eq!(s.app_cores().len(), 5);
    }

    #[test]
    fn assignments_include_agent_latency() {
        let (mut s, _) = setup(2);
        let a = s.thread_ready(ThreadId(1), Time::ZERO);
        assert_eq!(a.len(), 1);
        // message delay + agent cost + ctx switch.
        let expected = Duration::from_nanos(1_000 + 600 + 2_000);
        assert_eq!(a[0].start_at, Time::ZERO + expected);
    }

    #[test]
    fn messages_queue_at_the_agent() {
        let (mut s, _) = setup(4);
        let a1 = s.thread_ready(ThreadId(1), Time::ZERO);
        let a2 = s.thread_ready(ThreadId(2), Time::ZERO);
        // The second decision lands one agent-cost later than the first.
        assert!(a2[0].start_at > a1[0].start_at);
        assert_eq!(s.messages, 2);
    }

    #[test]
    fn get_preempts_scan() {
        let (mut s, map) = setup(2); // one app core + agent
        map.update_u64(1, class::SCAN).unwrap();
        map.update_u64(2, class::GET).unwrap();
        let a = s.thread_ready(ThreadId(1), Time::ZERO);
        assert_eq!(a.len(), 1);
        assert_eq!(a[0].preempted, None);

        // The GET arrives while the SCAN occupies the only app core.
        let b = s.thread_ready(ThreadId(2), Time::from_micros(100));
        assert_eq!(b.len(), 1);
        assert_eq!(b[0].thread, ThreadId(2));
        assert_eq!(b[0].preempted, Some(ThreadId(1)));
        assert_eq!(s.preemptions, 1);
        // The preempted SCAN waits in the runnable pool.
        assert_eq!(s.runnable_count(), 1);
        // IPI cost applies.
        assert!(b[0].start_at.since(Time::from_micros(100)) >= Duration::from_micros(5));
    }

    #[test]
    fn scan_does_not_preempt_get() {
        let (mut s, map) = setup(2);
        map.update_u64(1, class::GET).unwrap();
        map.update_u64(2, class::SCAN).unwrap();
        s.thread_ready(ThreadId(1), Time::ZERO);
        let b = s.thread_ready(ThreadId(2), Time::from_micros(10));
        assert!(b.is_empty(), "SCAN must wait");
        assert_eq!(s.preemptions, 0);
    }

    #[test]
    fn gets_win_idle_cores_over_scans() {
        let (mut s, map) = setup(3); // two app cores
        map.update_u64(1, class::SCAN).unwrap();
        map.update_u64(2, class::SCAN).unwrap();
        map.update_u64(3, class::GET).unwrap();
        // Occupy both cores with SCANs… but deliver all wakeups in one
        // burst so the agent decides with full information.
        s.thread_ready(ThreadId(1), Time::ZERO);
        s.thread_ready(ThreadId(2), Time::ZERO);
        let c = s.thread_ready(ThreadId(3), Time::ZERO);
        // The GET preempts one of the SCANs.
        assert_eq!(c.len(), 1);
        assert_eq!(c[0].thread, ThreadId(3));
        assert!(c[0].preempted.is_some());
    }

    #[test]
    fn stopped_thread_frees_core_for_waiters() {
        let (mut s, map) = setup(2);
        map.update_u64(1, class::GET).unwrap();
        map.update_u64(2, class::GET).unwrap();
        s.thread_ready(ThreadId(1), Time::ZERO);
        assert!(s.thread_ready(ThreadId(2), Time::ZERO).is_empty());
        let a = s.thread_stopped(ThreadId(1), CoreId(0), Time::from_micros(15));
        assert_eq!(a.len(), 1);
        assert_eq!(a[0].thread, ThreadId(2));
    }

    #[test]
    fn telemetry_tracks_agent_costs_and_queue_depth() {
        let registry = Registry::new();
        let (mut s, map) = setup(2);
        s.attach_telemetry(&registry);
        map.update_u64(1, class::SCAN).unwrap();
        map.update_u64(2, class::GET).unwrap();
        s.thread_ready(ThreadId(1), Time::ZERO);
        s.thread_ready(ThreadId(2), Time::from_micros(100)); // preempts

        let snap = registry.snapshot();
        assert_eq!(snap.counter("ghost/messages"), 2);
        assert_eq!(snap.counter("ghost/preemptions"), 1);
        // After the preemption the displaced SCAN waits in the queue.
        assert_eq!(snap.gauge("ghost/runnable_depth"), 1);
        let lat = snap.histogram("ghost/decision_latency_ns").unwrap();
        assert_eq!(lat.count(), 2);
        // An uncontended message costs exactly delay + agent cost.
        assert_eq!(lat.min(), 1_000 + 600);
    }

    #[test]
    fn profiler_tracks_time_in_state_and_starvation() {
        let profiler = syrup_profile::Profiler::new();
        profiler.set_starvation_threshold(1_000); // 1 µs, well under agent latency
        let (mut s, map) = setup(2); // one app core + agent
        s.attach_profiler(&profiler);
        map.update_u64(1, class::SCAN).unwrap();
        map.update_u64(2, class::GET).unwrap();

        // SCAN occupies the core; the GET preempts it; the GET finishes.
        s.thread_ready(ThreadId(1), Time::ZERO);
        s.thread_ready(ThreadId(2), Time::from_micros(100));
        s.thread_stopped(ThreadId(2), CoreId(0), Time::from_micros(200));

        let p = profiler.pressure();
        // Both threads went through runnable → running; the GET also
        // blocked at the end.
        assert_eq!(p.threads.len(), 2);
        let t2 = p.threads.iter().find(|t| t.tid == 2).unwrap();
        assert!(t2.runnable_ns > 0, "wakeup → dispatch counts as runnable");
        assert!(t2.running_ns > 0, "dispatch → stop counts as running");
        // Dispatch latency (msg delay + agent cost + IPI) exceeds the 1 µs
        // threshold, so both dispatches flag starvation.
        assert!(!p.starvation.is_empty());
        assert!(p.threads.iter().any(|t| t.starved));
        // One scheduling-latency sample per wakeup message.
        assert_eq!(p.sched_latency.samples, 2);
        assert!(p.sched_latency.mean_ns >= 1_600.0);
    }

    #[test]
    fn blackbox_records_thread_state_changes() {
        use syrup_blackbox::{EventKind, Layer, Recorder};
        let rec = Recorder::new();
        let (mut s, map) = setup(2); // one app core + agent
        s.attach_blackbox(&rec);
        map.update_u64(1, class::SCAN).unwrap();
        map.update_u64(2, class::GET).unwrap();

        // SCAN occupies the core; the GET preempts it; the GET finishes.
        s.thread_ready(ThreadId(1), Time::ZERO);
        s.thread_ready(ThreadId(2), Time::from_micros(100));
        s.thread_stopped(ThreadId(2), CoreId(0), Time::from_micros(200));

        let events = rec.events(Layer::Ghost);
        assert!(events.iter().all(|e| e.kind == EventKind::ThreadState));
        // Thread 1: runnable, running, runnable (preempted by the GET),
        // running again once the GET stops and the core frees.
        let t1: Vec<u32> = events.iter().filter(|e| e.w0 == 1).map(|e| e.aux).collect();
        assert_eq!(t1, vec![0, 1, 0, 1]);
        // Thread 2: runnable, running (preempting), blocked.
        let t2: Vec<u32> = events.iter().filter(|e| e.w0 == 2).map(|e| e.aux).collect();
        assert_eq!(t2, vec![0, 1, 2]);
        assert!(events.iter().any(|e| e.at_ns >= 200_000));
    }

    fn setup_ranked(n_cores: u32) -> (GhostSched, MapRef) {
        let reg = MapRegistry::new();
        let class = reg.get(reg.create(MapDef::u64_array(64))).unwrap();
        // Hash-backed so absent threads read as "no rank" (an array map
        // would zero-fill, making every unmapped thread most urgent).
        let ranks = reg.get(reg.create(MapDef::u64_hash(64))).unwrap();
        let mut sched = GhostSched::new(
            (0..n_cores).map(CoreId).collect(),
            class,
            GhostParams::default(),
        );
        sched.enable_ranked_runqueue(ranks.clone());
        (sched, ranks)
    }

    #[test]
    fn ranked_runqueue_dispatches_lowest_rank_first() {
        let (mut s, ranks) = setup_ranked(2); // one app core + agent
        ranks.update_u64(1, 40).unwrap();
        ranks.update_u64(2, 7).unwrap();
        ranks.update_u64(3, 20).unwrap();
        assert!(s.is_ranked());
        // All three wake before any core frees; the single core goes to
        // the first arrival, then frees for the most urgent waiter.
        let a = s.thread_ready(ThreadId(1), Time::ZERO);
        assert_eq!(a[0].thread, ThreadId(1));
        // 7 outranks the running 40: immediate preemption.
        let b = s.thread_ready(ThreadId(2), Time::from_micros(10));
        assert_eq!(b.len(), 1);
        assert_eq!(b[0].thread, ThreadId(2));
        assert_eq!(b[0].preempted, Some(ThreadId(1)));
        // 20 does not outrank the running 7.
        assert!(s
            .thread_ready(ThreadId(3), Time::from_micros(20))
            .is_empty());
        // When 7 finishes, 20 dispatches ahead of 40.
        let c = s.thread_stopped(ThreadId(2), CoreId(0), Time::from_micros(50));
        assert_eq!(c.len(), 1);
        assert_eq!(c[0].thread, ThreadId(3));
    }

    #[test]
    fn unmapped_threads_rank_last_and_never_preempt() {
        let (mut s, ranks) = setup_ranked(2);
        ranks.update_u64(1, 1_000).unwrap();
        s.thread_ready(ThreadId(1), Time::ZERO);
        // Thread 2 has no rank entry: u32::MAX, so no preemption.
        let b = s.thread_ready(ThreadId(2), Time::from_micros(10));
        assert!(b.is_empty());
        assert_eq!(s.preemptions, 0);
    }

    #[test]
    fn ranked_runqueue_feeds_band_pressure() {
        let profiler = syrup_profile::Profiler::new();
        let (mut s, ranks) = setup_ranked(2);
        s.attach_profiler(&profiler);
        ranks.update_u64(1, 5).unwrap();
        ranks.update_u64(2, 5_000).unwrap();
        ranks.update_u64(3, 30).unwrap();
        s.thread_ready(ThreadId(1), Time::ZERO); // dispatches
        s.thread_ready(ThreadId(2), Time::ZERO); // waits, band 3
        s.thread_ready(ThreadId(3), Time::ZERO); // waits, band 1
        let p = profiler.pressure();
        let ghost = p
            .rank_bands
            .iter()
            .find(|b| b.component == "ghost")
            .expect("ranked runqueue samples bands");
        assert_eq!(ghost.max_depth, 1);
        assert!(ghost.samples >= 3);
    }

    #[test]
    fn preempted_scan_resumes_when_core_frees() {
        let (mut s, map) = setup(2);
        map.update_u64(1, class::SCAN).unwrap();
        map.update_u64(2, class::GET).unwrap();
        s.thread_ready(ThreadId(1), Time::ZERO);
        s.thread_ready(ThreadId(2), Time::from_micros(50)); // preempts
        let a = s.thread_stopped(ThreadId(2), CoreId(0), Time::from_micros(70));
        assert_eq!(a.len(), 1);
        assert_eq!(a[0].thread, ThreadId(1), "SCAN resumes");
    }
}
