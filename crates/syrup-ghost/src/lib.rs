//! Thread scheduling substrate: a CFS-like default and a ghOSt-like agent.
//!
//! The paper's thread-scheduler hook is backed by ghOSt \[25\]: a lightweight
//! kernel scheduling class forwards thread state changes as messages to a
//! spinning userspace agent, which runs the user-defined policy and
//! instructs the kernel via syscalls; the kernel enforces decisions with
//! IPIs (§4.1). This crate models both that agent and the baseline it is
//! compared against:
//!
//! * [`cfs`] — a simplified Completely Fair Scheduler: per-core runqueues
//!   ordered by vruntime, idle-core wake placement, and millisecond-scale
//!   time slices. Crucially it is *oblivious to request types*, which is
//!   exactly why single-layer scheduling fails in Figure 8 ("The default
//!   Linux CFS scheduler, being oblivious to the request handled by each
//!   thread, does not preempt them when a thread serving a GET becomes
//!   runnable").
//! * [`ghost`] — the ghOSt-style centralized scheduler: one core is
//!   dedicated to the spinning agent (the Figure 8 experiments run the
//!   application on five cores for this reason), messages incur queueing
//!   at the agent, and the deployed Syrup policy (GET-priority with
//!   preemption, as in Shinjuku) matches runnable threads to cores. The
//!   policy reads the request class per thread from an
//!   application-populated Map — the §3.4 cross-layer communication path.
//!
//! Both schedulers expose the same [`ThreadScheduler`] interface to the
//! simulation worlds: notify on thread wake/stop, receive assignments
//! (which may preempt), and drive time-slice checks.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cfs;
pub mod ghost;

pub use cfs::CfsSched;
pub use ghost::{GhostParams, GhostSched};

use syrup_sim::Time;

/// A kernel thread identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ThreadId(pub u32);

/// A logical core identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CoreId(pub u32);

/// One scheduling decision: run `thread` on `core` starting at `start_at`.
///
/// When `preempted` names a thread, the world must stop it at `start_at`
/// (its remaining service is resumed on a later assignment); the scheduler
/// has already returned it to the runnable pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Assignment {
    /// Target core.
    pub core: CoreId,
    /// Thread to run.
    pub thread: ThreadId,
    /// When the thread begins executing (includes context-switch and, for
    /// preemptions, IPI delivery).
    pub start_at: Time,
    /// The thread displaced by this assignment, if any.
    pub preempted: Option<ThreadId>,
}

/// The interface both schedulers present to a simulation world.
pub trait ThreadScheduler {
    /// Cores available to application threads (excludes a ghOSt agent's
    /// core).
    fn app_cores(&self) -> Vec<CoreId>;

    /// A thread became runnable (request arrived at its socket).
    fn thread_ready(&mut self, t: ThreadId, now: Time) -> Vec<Assignment>;

    /// The running thread on `core` blocked (no more requests) or
    /// finished its work.
    fn thread_stopped(&mut self, t: ThreadId, core: CoreId, now: Time) -> Vec<Assignment>;

    /// Time-slice check on `core` (only meaningful when [`Self::timeslice`]
    /// returns `Some`): may switch to another runnable thread.
    fn preempt_check(&mut self, core: CoreId, now: Time) -> Vec<Assignment>;

    /// The preemption granularity, if the scheduler is tick-driven.
    fn timeslice(&self) -> Option<syrup_sim::Duration>;

    /// Number of threads currently waiting to run (diagnostics).
    fn runnable_count(&self) -> usize;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_ordered_and_hashable() {
        assert!(ThreadId(1) < ThreadId(2));
        assert!(CoreId(0) < CoreId(5));
        let mut set = std::collections::HashSet::new();
        set.insert(ThreadId(1));
        assert!(set.contains(&ThreadId(1)));
    }
}
