//! The Eiffel-style bucketed approximate priority queue.
//!
//! Eiffel's observation is that packet ranks need only be *approximately*
//! respected for scheduling disciplines to work, and that quantizing ranks
//! into buckets turns the priority queue into a circular array plus a
//! find-first-set scan over an occupancy bitmap: `push` is `O(1)`, `pop`
//! is `O(words)` in the bitmap.
//!
//! # Approximation bound
//!
//! Ranks are quantized to buckets of width `granularity` (`g`). Within one
//! bucket items dequeue FIFO, so two items can leave in inverted rank order
//! only when they share a bucket — their rank difference is then strictly
//! less than `g`. Formally, for any two items whose ranks fall inside the
//! current horizon (a span of `num_buckets × g` rank units), if
//! `rank(a) + g ≤ rank(b)` then `a` dequeues before `b`. The horizon
//! constrains the *span* of simultaneously queued ranks, not their
//! absolute values: a push below the head re-anchors the window backward
//! when the occupied span allows (bucket slots are indexed by absolute
//! bucket modulo `num_buckets`, so re-anchoring costs nothing). Only when
//! the span genuinely exceeds the horizon does clamping kick in — ranks
//! too far below clamp to the head bucket, ranks too far above clamp to
//! the last bucket — and for clamped items the inversion is unbounded.
//! Size the horizon to the workload's rank spread (the property tests in
//! `tests/tests/properties.rs` check the in-horizon bound against the
//! exact [`crate::Pifo`]).

use std::collections::VecDeque;

use crate::{rank_band, QueueTelemetry, NUM_RANK_BANDS};

/// An Eiffel-style circular bucket queue with FFS dequeue.
#[derive(Debug, Clone)]
pub struct BucketQueue<T> {
    /// `buckets[slot]` holds `(item, original_rank)` FIFO per bucket.
    buckets: Vec<VecDeque<(T, u32)>>,
    /// Occupancy bitmap: bit `slot % 64` of word `slot / 64`.
    occupied: Vec<u64>,
    /// Absolute bucket index the head currently points at. Slot for an
    /// absolute bucket `b` in the window is `b % num_buckets`.
    base: u64,
    /// Highest absolute bucket currently (or conservatively) occupied;
    /// bounds how far back a low-ranked push may re-anchor `base`.
    max_bucket: u64,
    len: usize,
    capacity: usize,
    granularity: u32,
    /// Items rejected because the queue was full.
    pub dropped: u64,
    /// Items ever admitted.
    pub enqueued: u64,
    bands: [usize; NUM_RANK_BANDS],
    telemetry: QueueTelemetry,
}

impl<T> BucketQueue<T> {
    /// Creates a queue of `num_buckets` buckets of rank width
    /// `granularity`, holding at most `capacity` items in total.
    ///
    /// The horizon — the rank span the queue orders without clamping — is
    /// `num_buckets × granularity` past the current head.
    pub fn new(capacity: usize, num_buckets: usize, granularity: u32) -> Self {
        assert!(num_buckets > 0, "bucket queue needs at least one bucket");
        assert!(granularity > 0, "rank granularity must be positive");
        BucketQueue {
            buckets: (0..num_buckets).map(|_| VecDeque::new()).collect(),
            occupied: vec![0; num_buckets.div_ceil(64)],
            base: 0,
            max_bucket: 0,
            len: 0,
            capacity,
            granularity,
            dropped: 0,
            enqueued: 0,
            bands: [0; NUM_RANK_BANDS],
            telemetry: QueueTelemetry::default(),
        }
    }

    /// A bucket queue with no capacity bound.
    pub fn unbounded(num_buckets: usize, granularity: u32) -> Self {
        BucketQueue::new(usize::MAX, num_buckets, granularity)
    }

    /// Publishes `<prefix>/enqueued`, `<prefix>/dropped` counters and a
    /// `<prefix>/rank` histogram in `registry`. Until called, every
    /// telemetry touch is a single disabled-handle branch.
    pub fn attach_telemetry(&mut self, registry: &syrup_telemetry::Registry, prefix: &str) {
        self.telemetry = QueueTelemetry::attach(registry, prefix);
    }

    /// The configured rank width of one bucket.
    pub fn granularity(&self) -> u32 {
        self.granularity
    }

    /// Number of buckets in the circular window.
    pub fn num_buckets(&self) -> usize {
        self.buckets.len()
    }

    /// The rank span the queue orders without clamping, measured from the
    /// current head.
    pub fn horizon(&self) -> u64 {
        self.buckets.len() as u64 * u64::from(self.granularity)
    }

    fn set_bit(&mut self, slot: usize) {
        self.occupied[slot / 64] |= 1u64 << (slot % 64);
    }

    fn clear_bit(&mut self, slot: usize) {
        self.occupied[slot / 64] &= !(1u64 << (slot % 64));
    }

    /// First occupied slot at circular distance ≥ 0 from `start`, or
    /// `None` when the bitmap is empty.
    fn first_set_from(&self, start: usize) -> Option<usize> {
        let nb = self.buckets.len();
        let words = self.occupied.len();
        // Head word, masked to bits at/after `start`.
        let (w0, b0) = (start / 64, start % 64);
        let head = self.occupied[w0] & (u64::MAX << b0);
        if head != 0 {
            let slot = w0 * 64 + head.trailing_zeros() as usize;
            if slot < nb {
                return Some(slot);
            }
        }
        // Remaining words in circular order, wrapping past the end.
        for i in 1..=words {
            let w = (w0 + i) % words;
            let mut word = self.occupied[w];
            if w == w0 {
                word &= !(u64::MAX << b0); // bits strictly before start
            }
            if word != 0 {
                let slot = w * 64 + word.trailing_zeros() as usize;
                if slot < nb {
                    return Some(slot);
                }
            }
        }
        None
    }

    /// Enqueues `item` at `rank`; returns `false` (and counts a drop)
    /// when the queue is full. A rank below the head re-anchors the
    /// window backward when the occupied span still fits the horizon;
    /// otherwise it clamps to the head bucket. Ranks past the horizon
    /// clamp to the last bucket.
    pub fn push(&mut self, item: T, rank: u32) -> bool {
        if self.len >= self.capacity {
            self.dropped += 1;
            self.telemetry.dropped.inc();
            return false;
        }
        self.enqueued += 1;
        self.telemetry.enqueued.inc();
        self.telemetry.rank.record(u64::from(rank));
        self.bands[rank_band(rank)] += 1;

        let nb = self.buckets.len() as u64;
        let mut ab = u64::from(rank) / u64::from(self.granularity);
        if self.len == 0 {
            // Empty queue: re-anchor the window at this item.
            self.base = ab;
            self.max_bucket = ab;
        } else if ab < self.base {
            if self.max_bucket - ab < nb {
                // Span still fits: move the head back. Slots are absolute
                // mod nb, so nothing needs reindexing.
                self.base = ab;
            } else {
                ab = self.base;
            }
        } else if ab >= self.base + nb {
            ab = self.base + nb - 1;
        }
        self.max_bucket = self.max_bucket.max(ab);
        let slot = (ab % nb) as usize;
        self.buckets[slot].push_back((item, rank));
        self.set_bit(slot);
        self.len += 1;
        true
    }

    /// Dequeues from the lowest-ranked occupied bucket (FIFO within it).
    pub fn pop(&mut self) -> Option<T> {
        self.pop_entry().map(|(item, _)| item)
    }

    /// [`BucketQueue::pop`], also reporting the dequeued item's original
    /// (unquantized) rank.
    pub fn pop_entry(&mut self) -> Option<(T, u32)> {
        let nb = self.buckets.len();
        let start = (self.base % nb as u64) as usize;
        let slot = self.first_set_from(start)?;
        // Advance the head to the bucket we dequeue from.
        let dist = (slot + nb - start) % nb;
        self.base += dist as u64;
        let (item, rank) = self.buckets[slot].pop_front().expect("occupied bit set");
        if self.buckets[slot].is_empty() {
            self.clear_bit(slot);
        }
        self.len -= 1;
        self.bands[rank_band(rank)] -= 1;
        Some((item, rank))
    }

    /// Peeks at the head item without removing it.
    pub fn peek(&self) -> Option<&T> {
        let nb = self.buckets.len();
        let start = (self.base % nb as u64) as usize;
        let slot = self.first_set_from(start)?;
        self.buckets[slot].front().map(|(item, _)| item)
    }

    /// The head item's original rank, if any.
    pub fn peek_rank(&self) -> Option<u32> {
        let nb = self.buckets.len();
        let start = (self.base % nb as u64) as usize;
        let slot = self.first_set_from(start)?;
        self.buckets[slot].front().map(|&(_, rank)| rank)
    }

    /// Current queue depth.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Occupancy per rank band (see [`crate::rank_band`]), for pressure
    /// sampling.
    pub fn band_depths(&self) -> [usize; NUM_RANK_BANDS] {
        self.bands
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orders_across_buckets() {
        let mut q = BucketQueue::unbounded(16, 10);
        q.push("c", 95);
        q.push("a", 5);
        q.push("b", 42);
        assert_eq!(q.pop(), Some("a"));
        assert_eq!(q.pop(), Some("b"));
        assert_eq!(q.pop(), Some("c"));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn same_bucket_is_fifo_and_inversion_is_below_granularity() {
        let mut q = BucketQueue::unbounded(8, 10);
        q.push("first", 9);
        q.push("second", 3); // same bucket (0..10): arrival order wins
        assert_eq!(q.pop(), Some("first"));
        assert_eq!(q.pop(), Some("second"));
    }

    #[test]
    fn granularity_one_is_exact_within_horizon() {
        let mut q = BucketQueue::unbounded(64, 1);
        let ranks = [17u32, 3, 60, 3, 0, 41];
        for (i, &r) in ranks.iter().enumerate() {
            q.push(i, r);
        }
        let mut sorted: Vec<(u32, usize)> = ranks.iter().copied().zip(0..).collect();
        sorted.sort_by_key(|&(r, i)| (r, i));
        for (_, i) in sorted {
            assert_eq!(q.pop(), Some(i));
        }
    }

    #[test]
    fn past_ranks_clamp_to_head() {
        let mut q = BucketQueue::unbounded(4, 10);
        q.push("head", 50);
        assert_eq!(q.pop(), Some("head")); // base now at bucket 5
        q.push("anchor", 70);
        q.push("late", 0); // bucket 0 < base: clamps to head bucket
                           // bucket 7 FIFO after the clamp: "late" landed behind "anchor".
        assert_eq!(q.pop(), Some("anchor"));
        assert_eq!(q.pop(), Some("late"));
    }

    #[test]
    fn far_ranks_clamp_to_last_bucket() {
        let mut q = BucketQueue::unbounded(4, 10);
        q.push("near", 0);
        q.push("far", 1_000_000); // beyond horizon: clamps to last bucket
        q.push("mid", 25);
        assert_eq!(q.pop(), Some("near"));
        assert_eq!(q.pop(), Some("mid"));
        assert_eq!(q.pop(), Some("far"));
    }

    #[test]
    fn wraps_around_the_circular_window() {
        let mut q = BucketQueue::unbounded(4, 1);
        // March the head far enough that slots wrap modulo 4 repeatedly.
        for round in 0..10u32 {
            q.push(round, round);
            assert_eq!(q.pop(), Some(round));
        }
        q.push(100, 10);
        q.push(101, 12);
        q.push(102, 11);
        assert_eq!(q.pop(), Some(100));
        assert_eq!(q.pop(), Some(102));
        assert_eq!(q.pop(), Some(101));
    }

    #[test]
    fn capacity_rejects_and_counts() {
        let mut q = BucketQueue::new(2, 8, 1);
        assert!(q.push(1, 0));
        assert!(q.push(2, 1));
        assert!(!q.push(3, 2));
        assert_eq!(q.dropped, 1);
        assert_eq!(q.enqueued, 2);
    }

    #[test]
    fn band_depths_follow_original_ranks() {
        let mut q = BucketQueue::unbounded(8, 1000);
        q.push(0, 3); // band 0, bucket 0
        q.push(0, 500); // band 2, bucket 0 (same bucket, different band)
        assert_eq!(q.band_depths(), [1, 0, 1, 0]);
        q.pop();
        assert_eq!(q.band_depths(), [0, 0, 1, 0]);
    }

    #[test]
    fn many_buckets_use_multiple_bitmap_words() {
        let mut q = BucketQueue::unbounded(200, 1);
        q.push("far", 150);
        q.push("near", 2);
        assert_eq!(q.peek_rank(), Some(2));
        assert_eq!(q.pop(), Some("near"));
        assert_eq!(q.pop(), Some("far"));
    }
}
