//! Scheduling-capable queue executors for Syrup (ROADMAP open item 3).
//!
//! Syrup's policies steer work *between* executors; until this crate every
//! executor (NIC queue, reuseport socket, ghOSt run queue) was a FIFO, so a
//! policy could pick a queue but never a position within it. "Programmable
//! Packet Scheduling at Line Rate" shows one primitive — the push-in
//! first-out queue (PIFO) — expresses most classical disciplines (SRPT,
//! WFQ, EDF, strict priority), and "Eiffel: Efficient and Flexible
//! Software Packet Scheduling" shows bucketed approximate priority queues
//! make that primitive cheap in software. This crate provides both:
//!
//! * [`Pifo`] — an exact rank-ordered queue: dequeue is non-decreasing in
//!   rank, ties dequeue FIFO (by arrival order), and the whole structure is
//!   deterministic for a given push/pop sequence.
//! * [`BucketQueue`] — an Eiffel-style circular bucket array with a
//!   find-first-set occupancy bitmap. Ranks are quantized to a configurable
//!   `granularity` `g`; within the horizon the dequeue order inverts the
//!   exact PIFO order by strictly less than `g` rank units (see the module
//!   docs of [`bucket`] for the precise bound).
//! * [`ExecQueue`] — the executor-facing wrapper `syrup-net` and
//!   `syrup-ghost` embed: one enum over FIFO / PIFO / bucket backings with a
//!   uniform `push(item, rank)` / `pop()` surface, so rank support is a
//!   construction-time opt-in and the FIFO arm stays byte-identical to the
//!   plain `VecDeque` it replaces.
//!
//! Instrumentation follows the repo-wide contract: telemetry counters and
//! the rank histogram are no-op handles until attached (a single branch
//! when disabled, benched in `bench/benches/sched.rs`), and rank-band
//! occupancy feeds `syrup-profile` pressure reports so starvation of
//! low-priority bands is visible in `syrupctl profile pressure`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bucket;
pub mod pifo;
pub mod queue;

pub use bucket::BucketQueue;
pub use pifo::Pifo;
pub use queue::{ExecQueue, QueueKind};

/// Number of rank bands tracked for pressure reporting.
///
/// Bands bucket the 32-bit rank space coarsely (exponentially) so the
/// pressure profiler can show *which priorities* occupy a queue without
/// per-rank series: band 0 holds the most urgent work, band 3 the bulk
/// tail. The thresholds are fixed so reports from different components are
/// comparable.
pub const NUM_RANK_BANDS: usize = 4;

/// Maps a rank to its pressure band: `0` for ranks below 16, `1` below
/// 256, `2` below 4096, `3` for everything else.
#[inline]
pub fn rank_band(rank: u32) -> usize {
    match rank {
        0..=15 => 0,
        16..=255 => 1,
        256..=4095 => 2,
        _ => 3,
    }
}

/// Telemetry handles shared by both queue implementations. All handles are
/// disabled (single-branch no-ops) until
/// [`Pifo::attach_telemetry`] / [`BucketQueue::attach_telemetry`].
#[derive(Debug, Clone, Default)]
pub(crate) struct QueueTelemetry {
    pub(crate) enqueued: syrup_telemetry::CounterHandle,
    pub(crate) dropped: syrup_telemetry::CounterHandle,
    pub(crate) rank: syrup_telemetry::HistogramHandle,
}

impl QueueTelemetry {
    pub(crate) fn attach(registry: &syrup_telemetry::Registry, prefix: &str) -> Self {
        QueueTelemetry {
            enqueued: registry.counter(&format!("{prefix}/enqueued")),
            dropped: registry.counter(&format!("{prefix}/dropped")),
            rank: registry.histogram(&format!("{prefix}/rank")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bands_partition_the_rank_space() {
        assert_eq!(rank_band(0), 0);
        assert_eq!(rank_band(15), 0);
        assert_eq!(rank_band(16), 1);
        assert_eq!(rank_band(255), 1);
        assert_eq!(rank_band(256), 2);
        assert_eq!(rank_band(4095), 2);
        assert_eq!(rank_band(4096), 3);
        assert_eq!(rank_band(u32::MAX), 3);
    }
}
