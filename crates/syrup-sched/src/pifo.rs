//! The exact push-in first-out queue.
//!
//! A PIFO admits `push(item, rank)` anywhere in rank order and dequeues
//! from the head: `pop` always yields an item of minimal rank, and items of
//! equal rank leave in arrival (FIFO) order. The structure is fully
//! deterministic — the dequeue sequence is a pure function of the push/pop
//! history — which is what lets the fuzzer's PIFO-order oracle and the
//! codegen↔interpreter differential treat it as ground truth.
//!
//! Internally the queue is a `BTreeMap` keyed by `(rank, seq)` where `seq`
//! is a monotone arrival counter: the map's first entry is the head, and
//! the tie-break falls out of the key order rather than any balancing
//! heuristic. Push and pop are `O(log n)`.

use std::collections::BTreeMap;

use crate::{rank_band, QueueTelemetry, NUM_RANK_BANDS};

/// An exact PIFO: rank-ordered dequeue, FIFO within equal ranks.
#[derive(Debug, Clone)]
pub struct Pifo<T> {
    items: BTreeMap<(u32, u64), T>,
    seq: u64,
    capacity: usize,
    /// Items rejected because the queue was full.
    pub dropped: u64,
    /// Items ever admitted.
    pub enqueued: u64,
    bands: [usize; NUM_RANK_BANDS],
    telemetry: QueueTelemetry,
}

impl<T> Pifo<T> {
    /// Creates a PIFO holding at most `capacity` items; a full queue
    /// rejects new pushes (like a socket buffer, not like a drop-max
    /// PIFO — admission control belongs to the policy).
    pub fn new(capacity: usize) -> Self {
        Pifo {
            items: BTreeMap::new(),
            seq: 0,
            capacity,
            dropped: 0,
            enqueued: 0,
            bands: [0; NUM_RANK_BANDS],
            telemetry: QueueTelemetry::default(),
        }
    }

    /// A PIFO with no capacity bound.
    pub fn unbounded() -> Self {
        Pifo::new(usize::MAX)
    }

    /// Publishes `<prefix>/enqueued`, `<prefix>/dropped` counters and a
    /// `<prefix>/rank` histogram in `registry`. Until called, every
    /// telemetry touch is a single disabled-handle branch.
    pub fn attach_telemetry(&mut self, registry: &syrup_telemetry::Registry, prefix: &str) {
        self.telemetry = QueueTelemetry::attach(registry, prefix);
    }

    /// Enqueues `item` at `rank`; returns `false` (and counts a drop)
    /// when the queue is full.
    pub fn push(&mut self, item: T, rank: u32) -> bool {
        if self.items.len() >= self.capacity {
            self.dropped += 1;
            self.telemetry.dropped.inc();
            return false;
        }
        self.enqueued += 1;
        self.telemetry.enqueued.inc();
        self.telemetry.rank.record(u64::from(rank));
        self.bands[rank_band(rank)] += 1;
        let seq = self.seq;
        self.seq += 1;
        self.items.insert((rank, seq), item);
        true
    }

    /// Dequeues the head: minimal rank, earliest arrival among ties.
    pub fn pop(&mut self) -> Option<T> {
        self.pop_entry().map(|(item, _)| item)
    }

    /// [`Pifo::pop`], also reporting the dequeued item's rank.
    pub fn pop_entry(&mut self) -> Option<(T, u32)> {
        let (&(rank, seq), _) = self.items.iter().next()?;
        let item = self.items.remove(&(rank, seq)).expect("head exists");
        self.bands[rank_band(rank)] -= 1;
        Some((item, rank))
    }

    /// Peeks at the head item without removing it.
    pub fn peek(&self) -> Option<&T> {
        self.items.values().next()
    }

    /// The head item's rank, if any.
    pub fn peek_rank(&self) -> Option<u32> {
        self.items.keys().next().map(|&(rank, _)| rank)
    }

    /// Current queue depth.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Occupancy per rank band (see [`crate::rank_band`]), for pressure
    /// sampling.
    pub fn band_depths(&self) -> [usize; NUM_RANK_BANDS] {
        self.bands
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dequeues_in_rank_order() {
        let mut q = Pifo::unbounded();
        q.push("low", 30);
        q.push("urgent", 1);
        q.push("mid", 10);
        assert_eq!(q.peek(), Some(&"urgent"));
        assert_eq!(q.peek_rank(), Some(1));
        assert_eq!(q.pop(), Some("urgent"));
        assert_eq!(q.pop(), Some("mid"));
        assert_eq!(q.pop(), Some("low"));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn equal_ranks_are_fifo() {
        let mut q = Pifo::unbounded();
        for i in 0..10u32 {
            q.push(i, 7);
        }
        for i in 0..10u32 {
            assert_eq!(q.pop(), Some(i));
        }
    }

    #[test]
    fn full_queue_rejects() {
        let mut q = Pifo::new(2);
        assert!(q.push(1, 0));
        assert!(q.push(2, 0));
        assert!(!q.push(3, 0));
        assert_eq!(q.dropped, 1);
        assert_eq!(q.enqueued, 2);
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn interleaved_push_pop_is_deterministic() {
        let run = || {
            let mut q = Pifo::unbounded();
            let mut out = Vec::new();
            for step in 0..100u32 {
                q.push(step, step.wrapping_mul(2654435761) % 50);
                if step % 3 == 0 {
                    out.extend(q.pop());
                }
            }
            while let Some(v) = q.pop() {
                out.push(v);
            }
            out
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn band_occupancy_tracks_contents() {
        let mut q = Pifo::unbounded();
        q.push(0, 3); // band 0
        q.push(0, 100); // band 1
        q.push(0, 100); // band 1
        q.push(0, 1 << 20); // band 3
        assert_eq!(q.band_depths(), [1, 2, 0, 1]);
        q.pop(); // removes rank 3 (band 0)
        assert_eq!(q.band_depths(), [0, 2, 0, 1]);
    }

    #[test]
    fn telemetry_counts_pushes_and_drops() {
        let registry = syrup_telemetry::Registry::new();
        let mut q = Pifo::new(1);
        q.attach_telemetry(&registry, "pifo0");
        q.push(1, 5);
        q.push(2, 5);
        let snap = registry.snapshot();
        assert_eq!(snap.counter("pifo0/enqueued"), 1);
        assert_eq!(snap.counter("pifo0/dropped"), 1);
        assert_eq!(snap.histogram("pifo0/rank").unwrap().count(), 1);
    }
}
