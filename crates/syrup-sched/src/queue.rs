//! The executor-facing queue abstraction.
//!
//! `syrup-net` sockets/NIC rings and `syrup-ghost` run queues embed an
//! [`ExecQueue`] so rank support is a construction-time choice: the
//! default [`QueueKind::Fifo`] arm is the same `VecDeque` those executors
//! used before this crate existed (identical admission, identical order,
//! identical drop accounting at the caller), and the PIFO / bucket arms
//! slot in behind the same `push`/`pop` surface. Capacity is enforced by
//! the embedding executor (`SocketBuf` keeps its own bound), so the
//! backings here are unbounded.

use std::collections::VecDeque;

use crate::{BucketQueue, Pifo, NUM_RANK_BANDS};

/// Which backing an [`ExecQueue`] uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueueKind {
    /// Plain FIFO: ranks are ignored.
    Fifo,
    /// Exact PIFO: rank-ordered, FIFO ties.
    Pifo,
    /// Eiffel bucket queue with this window shape.
    Bucket {
        /// Number of circular buckets.
        buckets: usize,
        /// Rank width of one bucket.
        granularity: u32,
    },
}

impl QueueKind {
    /// Whether dequeue order depends on ranks.
    pub fn is_ranked(self) -> bool {
        !matches!(self, QueueKind::Fifo)
    }

    /// Stable lowercase name for CLI/JSON output.
    pub fn as_str(self) -> &'static str {
        match self {
            QueueKind::Fifo => "fifo",
            QueueKind::Pifo => "pifo",
            QueueKind::Bucket { .. } => "bucket",
        }
    }
}

/// One executor queue: FIFO, exact PIFO, or Eiffel bucket queue.
#[derive(Debug, Clone)]
pub enum ExecQueue<T> {
    /// Arrival order; `push` ranks are ignored.
    Fifo(VecDeque<T>),
    /// Exact rank order.
    Pifo(Pifo<T>),
    /// Approximate rank order (see [`BucketQueue`]).
    Bucket(BucketQueue<T>),
}

impl<T> ExecQueue<T> {
    /// Creates an empty queue of the given kind.
    pub fn new(kind: QueueKind) -> Self {
        match kind {
            QueueKind::Fifo => ExecQueue::Fifo(VecDeque::new()),
            QueueKind::Pifo => ExecQueue::Pifo(Pifo::unbounded()),
            QueueKind::Bucket {
                buckets,
                granularity,
            } => ExecQueue::Bucket(BucketQueue::unbounded(buckets, granularity)),
        }
    }

    /// The kind this queue was built as.
    pub fn kind(&self) -> QueueKind {
        match self {
            ExecQueue::Fifo(_) => QueueKind::Fifo,
            ExecQueue::Pifo(_) => QueueKind::Pifo,
            ExecQueue::Bucket(q) => QueueKind::Bucket {
                buckets: q.num_buckets(),
                granularity: q.granularity(),
            },
        }
    }

    /// Enqueues `item` at `rank` (ignored by the FIFO arm).
    pub fn push(&mut self, item: T, rank: u32) {
        match self {
            ExecQueue::Fifo(q) => q.push_back(item),
            ExecQueue::Pifo(q) => {
                q.push(item, rank);
            }
            ExecQueue::Bucket(q) => {
                q.push(item, rank);
            }
        }
    }

    /// Dequeues the head item.
    pub fn pop(&mut self) -> Option<T> {
        match self {
            ExecQueue::Fifo(q) => q.pop_front(),
            ExecQueue::Pifo(q) => q.pop(),
            ExecQueue::Bucket(q) => q.pop(),
        }
    }

    /// Peeks at the head item without removing it.
    pub fn peek(&self) -> Option<&T> {
        match self {
            ExecQueue::Fifo(q) => q.front(),
            ExecQueue::Pifo(q) => q.peek(),
            ExecQueue::Bucket(q) => q.peek(),
        }
    }

    /// The head item's rank: `0` for the FIFO arm (ranks are not stored).
    pub fn peek_rank(&self) -> Option<u32> {
        match self {
            ExecQueue::Fifo(q) => q.front().map(|_| 0),
            ExecQueue::Pifo(q) => q.peek_rank(),
            ExecQueue::Bucket(q) => q.peek_rank(),
        }
    }

    /// Current queue depth.
    pub fn len(&self) -> usize {
        match self {
            ExecQueue::Fifo(q) => q.len(),
            ExecQueue::Pifo(q) => q.len(),
            ExecQueue::Bucket(q) => q.len(),
        }
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// [`ExecQueue::push`] that mirrors the band-occupancy shift into the
    /// flight recorder (`queue` identifies this queue in the event
    /// stream). Ranked arms only — the FIFO arm stores no ranks, so its
    /// occupancy is not band-structured and nothing is recorded.
    pub fn push_recorded(
        &mut self,
        item: T,
        rank: u32,
        recorder: &syrup_blackbox::Recorder,
        queue: u16,
    ) {
        self.push(item, rank);
        if recorder.is_enabled() && self.kind().is_ranked() {
            let band = crate::rank_band(rank);
            recorder.band_shift(queue, band as u32, self.band_depths()[band] as u64, true);
        }
    }

    /// [`ExecQueue::pop`] that mirrors the band-occupancy shift into the
    /// flight recorder. Ranked arms only, like [`ExecQueue::push_recorded`].
    pub fn pop_recorded(&mut self, recorder: &syrup_blackbox::Recorder, queue: u16) -> Option<T> {
        let rank = self.peek_rank();
        let item = self.pop();
        if let (Some(rank), true) = (rank, item.is_some()) {
            if recorder.is_enabled() && self.kind().is_ranked() {
                let band = crate::rank_band(rank);
                recorder.band_shift(queue, band as u32, self.band_depths()[band] as u64, false);
            }
        }
        item
    }

    /// Occupancy per rank band. The FIFO arm reports everything in band 0
    /// (it stores no ranks).
    pub fn band_depths(&self) -> [usize; NUM_RANK_BANDS] {
        match self {
            ExecQueue::Fifo(q) => {
                let mut b = [0; NUM_RANK_BANDS];
                b[0] = q.len();
                b
            }
            ExecQueue::Pifo(q) => q.band_depths(),
            ExecQueue::Bucket(q) => q.band_depths(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_arm_ignores_ranks() {
        let mut q = ExecQueue::new(QueueKind::Fifo);
        q.push("a", 99);
        q.push("b", 1);
        assert_eq!(q.peek_rank(), Some(0));
        assert_eq!(q.pop(), Some("a"));
        assert_eq!(q.pop(), Some("b"));
        assert!(!QueueKind::Fifo.is_ranked());
    }

    #[test]
    fn ranked_arms_reorder() {
        for kind in [
            QueueKind::Pifo,
            QueueKind::Bucket {
                buckets: 64,
                granularity: 1,
            },
        ] {
            let mut q = ExecQueue::new(kind);
            assert!(kind.is_ranked());
            assert_eq!(q.kind(), kind);
            q.push("a", 50);
            q.push("b", 1);
            assert_eq!(q.peek(), Some(&"b"));
            assert_eq!(q.pop(), Some("b"));
            assert_eq!(q.pop(), Some("a"));
            assert_eq!(q.pop(), None);
        }
    }

    #[test]
    fn recorded_ops_emit_band_shifts_for_ranked_arms_only() {
        use syrup_blackbox::{EventKind, Layer, Recorder};
        let rec = Recorder::new();
        rec.set_now(50);

        let mut fifo = ExecQueue::new(QueueKind::Fifo);
        fifo.push_recorded("a", 9, &rec, 0);
        fifo.pop_recorded(&rec, 0);
        assert!(rec.events(Layer::Sched).is_empty(), "FIFO stays silent");

        let mut q = ExecQueue::new(QueueKind::Pifo);
        q.push_recorded("lo", 500, &rec, 3); // band 2 (256..=4095)
        q.push_recorded("hi", 4, &rec, 3); // band 0 (0..=15)
        assert_eq!(q.pop_recorded(&rec, 3), Some("hi"));
        let events = rec.events(Layer::Sched);
        assert_eq!(events.len(), 3);
        for e in &events {
            assert_eq!(e.kind, EventKind::BandShift);
            assert_eq!(e.id, 3);
            assert_eq!(e.at_ns, 50, "queue events take the recorder clock");
        }
        // push into band 2 (depth 1), push into band 0 (depth 1),
        // pop out of band 0 (depth 0).
        assert_eq!((events[0].aux, events[0].w0, events[0].w1), (2, 1, 1));
        assert_eq!((events[1].aux, events[1].w0, events[1].w1), (0, 1, 1));
        assert_eq!((events[2].aux, events[2].w0, events[2].w1), (0, 0, 0));
        // Disabled recorder: recorded ops degrade to plain push/pop.
        let off = Recorder::disabled();
        q.push_recorded("x", 1, &off, 3);
        assert_eq!(q.pop_recorded(&off, 3), Some("x"));
    }

    #[test]
    fn kind_names_are_stable() {
        assert_eq!(QueueKind::Fifo.as_str(), "fifo");
        assert_eq!(QueueKind::Pifo.as_str(), "pifo");
        assert_eq!(
            QueueKind::Bucket {
                buckets: 8,
                granularity: 4
            }
            .as_str(),
            "bucket"
        );
    }
}
