//! The executor-facing queue abstraction.
//!
//! `syrup-net` sockets/NIC rings and `syrup-ghost` run queues embed an
//! [`ExecQueue`] so rank support is a construction-time choice: the
//! default [`QueueKind::Fifo`] arm is the same `VecDeque` those executors
//! used before this crate existed (identical admission, identical order,
//! identical drop accounting at the caller), and the PIFO / bucket arms
//! slot in behind the same `push`/`pop` surface. Capacity is enforced by
//! the embedding executor (`SocketBuf` keeps its own bound), so the
//! backings here are unbounded.

use std::collections::VecDeque;

use crate::{BucketQueue, Pifo, NUM_RANK_BANDS};

/// Which backing an [`ExecQueue`] uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueueKind {
    /// Plain FIFO: ranks are ignored.
    Fifo,
    /// Exact PIFO: rank-ordered, FIFO ties.
    Pifo,
    /// Eiffel bucket queue with this window shape.
    Bucket {
        /// Number of circular buckets.
        buckets: usize,
        /// Rank width of one bucket.
        granularity: u32,
    },
}

impl QueueKind {
    /// Whether dequeue order depends on ranks.
    pub fn is_ranked(self) -> bool {
        !matches!(self, QueueKind::Fifo)
    }

    /// Stable lowercase name for CLI/JSON output.
    pub fn as_str(self) -> &'static str {
        match self {
            QueueKind::Fifo => "fifo",
            QueueKind::Pifo => "pifo",
            QueueKind::Bucket { .. } => "bucket",
        }
    }
}

/// One executor queue: FIFO, exact PIFO, or Eiffel bucket queue.
#[derive(Debug, Clone)]
pub enum ExecQueue<T> {
    /// Arrival order; `push` ranks are ignored.
    Fifo(VecDeque<T>),
    /// Exact rank order.
    Pifo(Pifo<T>),
    /// Approximate rank order (see [`BucketQueue`]).
    Bucket(BucketQueue<T>),
}

impl<T> ExecQueue<T> {
    /// Creates an empty queue of the given kind.
    pub fn new(kind: QueueKind) -> Self {
        match kind {
            QueueKind::Fifo => ExecQueue::Fifo(VecDeque::new()),
            QueueKind::Pifo => ExecQueue::Pifo(Pifo::unbounded()),
            QueueKind::Bucket {
                buckets,
                granularity,
            } => ExecQueue::Bucket(BucketQueue::unbounded(buckets, granularity)),
        }
    }

    /// The kind this queue was built as.
    pub fn kind(&self) -> QueueKind {
        match self {
            ExecQueue::Fifo(_) => QueueKind::Fifo,
            ExecQueue::Pifo(_) => QueueKind::Pifo,
            ExecQueue::Bucket(q) => QueueKind::Bucket {
                buckets: q.num_buckets(),
                granularity: q.granularity(),
            },
        }
    }

    /// Enqueues `item` at `rank` (ignored by the FIFO arm).
    pub fn push(&mut self, item: T, rank: u32) {
        match self {
            ExecQueue::Fifo(q) => q.push_back(item),
            ExecQueue::Pifo(q) => {
                q.push(item, rank);
            }
            ExecQueue::Bucket(q) => {
                q.push(item, rank);
            }
        }
    }

    /// Dequeues the head item.
    pub fn pop(&mut self) -> Option<T> {
        match self {
            ExecQueue::Fifo(q) => q.pop_front(),
            ExecQueue::Pifo(q) => q.pop(),
            ExecQueue::Bucket(q) => q.pop(),
        }
    }

    /// Peeks at the head item without removing it.
    pub fn peek(&self) -> Option<&T> {
        match self {
            ExecQueue::Fifo(q) => q.front(),
            ExecQueue::Pifo(q) => q.peek(),
            ExecQueue::Bucket(q) => q.peek(),
        }
    }

    /// The head item's rank: `0` for the FIFO arm (ranks are not stored).
    pub fn peek_rank(&self) -> Option<u32> {
        match self {
            ExecQueue::Fifo(q) => q.front().map(|_| 0),
            ExecQueue::Pifo(q) => q.peek_rank(),
            ExecQueue::Bucket(q) => q.peek_rank(),
        }
    }

    /// Current queue depth.
    pub fn len(&self) -> usize {
        match self {
            ExecQueue::Fifo(q) => q.len(),
            ExecQueue::Pifo(q) => q.len(),
            ExecQueue::Bucket(q) => q.len(),
        }
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Occupancy per rank band. The FIFO arm reports everything in band 0
    /// (it stores no ranks).
    pub fn band_depths(&self) -> [usize; NUM_RANK_BANDS] {
        match self {
            ExecQueue::Fifo(q) => {
                let mut b = [0; NUM_RANK_BANDS];
                b[0] = q.len();
                b
            }
            ExecQueue::Pifo(q) => q.band_depths(),
            ExecQueue::Bucket(q) => q.band_depths(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_arm_ignores_ranks() {
        let mut q = ExecQueue::new(QueueKind::Fifo);
        q.push("a", 99);
        q.push("b", 1);
        assert_eq!(q.peek_rank(), Some(0));
        assert_eq!(q.pop(), Some("a"));
        assert_eq!(q.pop(), Some("b"));
        assert!(!QueueKind::Fifo.is_ranked());
    }

    #[test]
    fn ranked_arms_reorder() {
        for kind in [
            QueueKind::Pifo,
            QueueKind::Bucket {
                buckets: 64,
                granularity: 1,
            },
        ] {
            let mut q = ExecQueue::new(kind);
            assert!(kind.is_ranked());
            assert_eq!(q.kind(), kind);
            q.push("a", 50);
            q.push("b", 1);
            assert_eq!(q.peek(), Some(&"b"));
            assert_eq!(q.pop(), Some("b"));
            assert_eq!(q.pop(), Some("a"));
            assert_eq!(q.pop(), None);
        }
    }

    #[test]
    fn kind_names_are_stable() {
        assert_eq!(QueueKind::Fifo.as_str(), "fifo");
        assert_eq!(QueueKind::Pifo.as_str(), "pifo");
        assert_eq!(
            QueueKind::Bucket {
                buckets: 8,
                granularity: 4
            }
            .as_str(),
            "bucket"
        );
    }
}
