//! The Syrup policy language: a safe subset of C compiled to bytecode.
//!
//! §3.3 of the paper: users "provide an implementation of the `schedule`
//! matching function … written in a safe subset of C", which `syrupd`
//! compiles and deploys. This crate is that compiler for the reproduction:
//! a lexer, recursive-descent parser, and code generator targeting the
//! `syrup-ebpf` ISA, whose output must then pass the static verifier like
//! any other program.
//!
//! # The subset
//!
//! * Entry point: `uint32_t schedule(void *pkt_start, void *pkt_end)`.
//!   The two parameters are bound to the packet's `data` / `data_end`
//!   pointers; every packet dereference needs a dominating bounds check
//!   against `pkt_end` or the verifier will reject the program — the same
//!   discipline §4.3 describes.
//! * Types: `uint32_t`, `uint64_t`, `int`, `void *`, `uint8_t*`…`uint64_t *`,
//!   packed `struct` declarations for header layouts, pointer casts.
//! * Statements: declarations, assignment (including `+=`, `++`, `--`),
//!   `if`/`else`, constant-bound `for` loops (unrolled at compile time, as
//!   Clang does for eBPF targets — the paper's Table 2 notes SCAN-Avoid's
//!   size comes from exactly this unrolling), `break`, `continue`,
//!   `return`.
//! * Globals (e.g. the round-robin `idx`) live in an implicit per-policy
//!   array map, mirroring how eBPF compiles C globals into a `.bss` map.
//! * Builtins: `syr_map_lookup_elem`, `syr_map_update_elem`,
//!   `syr_map_delete_elem`, `__sync_fetch_and_add`, `get_random()`,
//!   `ktime_get_ns()`, `cpu_id()`, `bpf_redirect_map`.
//! * Maps are declared in the policy file with
//!   `SYRUP_MAP(name, ARRAY|HASH, max_entries);` (values are `uint64_t`,
//!   keys `uint32_t` — the paper's §3.4 default) or bound to existing maps
//!   by `syrupd` through [`CompileOptions::external_maps`].
//! * `PASS`, `DROP`, and `NULL` are predefined; experiments inject
//!   workload constants (e.g. `NUM_THREADS`) via [`CompileOptions::define`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
pub mod codegen;
pub mod interp;
pub mod lexer;
pub mod parser;

use std::collections::HashMap;
use std::fmt;

use syrup_ebpf::maps::{MapId, MapRegistry};
use syrup_ebpf::Program;

/// Compilation parameters supplied by `syrupd` at deployment time.
#[derive(Debug, Clone, Default)]
pub struct CompileOptions {
    /// `#define`-style integer constants visible to the policy
    /// (e.g. `NUM_THREADS`, `SCAN`, `GET`).
    pub defines: HashMap<String, i64>,
    /// Pre-existing maps the policy may reference by name (executor maps,
    /// maps shared with other layers).
    pub external_maps: HashMap<String, MapId>,
}

impl CompileOptions {
    /// Creates empty options.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a compile-time constant.
    pub fn define(mut self, name: &str, value: i64) -> Self {
        self.defines.insert(name.to_string(), value);
        self
    }

    /// Binds `name` in the policy source to an existing map.
    pub fn bind_map(mut self, name: &str, id: MapId) -> Self {
        self.external_maps.insert(name.to_string(), id);
        self
    }
}

/// The result of compiling a policy file.
#[derive(Debug, Clone)]
pub struct CompiledPolicy {
    /// The generated (not yet verified) program.
    pub program: Program,
    /// Maps created for `SYRUP_MAP` declarations, by name.
    pub created_maps: HashMap<String, MapId>,
    /// The implicit globals map, if the policy used globals.
    pub globals_map: Option<MapId>,
    /// Number of non-blank, non-comment source lines — the "LoC" column of
    /// Table 2.
    pub source_loc: usize,
}

/// A compile error with a source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LangError {
    /// 1-based source line.
    pub line: usize,
    /// Human-readable message.
    pub msg: String,
}

impl LangError {
    pub(crate) fn new(line: usize, msg: impl Into<String>) -> Self {
        LangError {
            line,
            msg: msg.into(),
        }
    }
}

impl fmt::Display for LangError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for LangError {}

/// Counts the non-blank, non-comment lines of a policy (Table 2's LoC).
pub fn count_loc(source: &str) -> usize {
    source
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with("//") && !l.starts_with("/*") && *l != "*/")
        .count()
}

/// Parses `source` to an AST without generating code.
///
/// Used by the fuzz harness to feed the same AST to both [`codegen`] (via
/// [`compile`]) and the reference [`interp`]reter.
pub fn parse_source(source: &str) -> Result<ast::Unit, LangError> {
    parser::parse(lexer::lex(source)?)
}

/// Compiles `source` into a program, creating declared maps in `maps`.
pub fn compile(
    source: &str,
    opts: &CompileOptions,
    maps: &MapRegistry,
) -> Result<CompiledPolicy, LangError> {
    let tokens = lexer::lex(source)?;
    let unit = parser::parse(tokens)?;
    let mut policy = codegen::generate(&unit, opts, maps)?;
    policy.source_loc = count_loc(source);
    Ok(policy)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loc_skips_blanks_and_comments() {
        let src = "\n// comment\nuint32_t schedule() {\n  return 0;\n}\n\n";
        assert_eq!(count_loc(src), 3);
    }
}
