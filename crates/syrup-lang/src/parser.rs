//! Recursive-descent parser for the policy language.

use crate::ast::{
    BinOp, Expr, ExprKind, Function, GlobalDecl, LValue, MapDecl, MapDeclKind, Stmt, StructDef,
    Type, UnOp, Unit,
};
use crate::lexer::{Tok, Token};
use crate::LangError;

/// Parses a token stream into a [`Unit`].
pub fn parse(tokens: Vec<Token>) -> Result<Unit, LangError> {
    Parser { tokens, pos: 0 }.unit()
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.tokens[self.pos].kind
    }

    fn peek2(&self) -> &Tok {
        self.tokens
            .get(self.pos + 1)
            .map(|t| &t.kind)
            .unwrap_or(&Tok::Eof)
    }

    fn line(&self) -> usize {
        self.tokens[self.pos].line
    }

    fn bump(&mut self) -> Tok {
        let t = self.tokens[self.pos].kind.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, want: Tok, what: &str) -> Result<(), LangError> {
        if *self.peek() == want {
            self.bump();
            Ok(())
        } else {
            Err(LangError::new(
                self.line(),
                format!("expected {what}, found {:?}", self.peek()),
            ))
        }
    }

    fn expect_ident(&mut self, what: &str) -> Result<String, LangError> {
        match self.bump() {
            Tok::Ident(s) => Ok(s),
            other => Err(LangError::new(
                self.line(),
                format!("expected {what}, found {other:?}"),
            )),
        }
    }

    fn is_type_start(&self) -> bool {
        match self.peek() {
            Tok::Ident(s) => matches!(
                s.as_str(),
                "uint8_t" | "uint16_t" | "uint32_t" | "uint64_t" | "int" | "void" | "struct"
            ),
            _ => false,
        }
    }

    /// Parses a type: base keyword plus trailing `*`s.
    fn parse_type(&mut self) -> Result<Type, LangError> {
        let line = self.line();
        let base = match self.bump() {
            Tok::Ident(s) => s,
            other => {
                return Err(LangError::new(
                    line,
                    format!("expected type, found {other:?}"),
                ))
            }
        };
        let mut ty = match base.as_str() {
            "uint8_t" => Type::U8,
            "uint16_t" => Type::U16,
            "uint32_t" | "int" => Type::U32,
            "uint64_t" => Type::U64,
            "void" => {
                // `void` must be a pointer.
                self.expect(Tok::Star, "`*` after void")?;
                let mut t = Type::VoidPtr;
                while *self.peek() == Tok::Star {
                    self.bump();
                    t = Type::Ptr(Box::new(t));
                }
                return Ok(t);
            }
            "struct" => {
                let name = self.expect_ident("struct name")?;
                // A struct type in expression position must be a pointer.
                // Tolerate the paper's `struct *udphdr` spelling as well as
                // the standard `struct udphdr *`.
                if *self.peek() == Tok::Star {
                    self.bump();
                }
                return Ok(Type::StructPtr(name));
            }
            other => {
                return Err(LangError::new(line, format!("unknown type `{other}`")));
            }
        };
        while *self.peek() == Tok::Star {
            self.bump();
            ty = Type::Ptr(Box::new(ty));
        }
        Ok(ty)
    }

    fn unit(&mut self) -> Result<Unit, LangError> {
        let mut unit = Unit::default();
        loop {
            match self.peek().clone() {
                Tok::Eof => break,
                Tok::Ident(word) if word == "struct" && self.struct_is_definition() => {
                    unit.structs.push(self.struct_def()?);
                }
                Tok::Ident(word) if word == "SYRUP_MAP" => {
                    unit.maps.push(self.map_decl()?);
                }
                _ if self.is_type_start() => {
                    // Either a global or the function.
                    let start = self.pos;
                    let _ty = self.parse_type()?;
                    let name = self.expect_ident("declaration name")?;
                    if *self.peek() == Tok::LParen {
                        self.pos = start;
                        let f = self.function()?;
                        if unit.function.is_some() {
                            return Err(LangError::new(
                                self.line(),
                                "only one function (schedule) is allowed",
                            ));
                        }
                        unit.function = Some(f);
                    } else {
                        self.pos = start;
                        unit.globals.push(self.global_decl(name)?);
                    }
                }
                other => {
                    return Err(LangError::new(
                        self.line(),
                        format!("unexpected top-level token {other:?}"),
                    ));
                }
            }
        }
        Ok(unit)
    }

    /// Distinguishes `struct x { ... };` (definition) from `struct x *p`
    /// used as a type at the head of a global declaration.
    fn struct_is_definition(&self) -> bool {
        matches!(self.peek2(), Tok::Ident(_))
            && matches!(
                self.tokens.get(self.pos + 2).map(|t| &t.kind),
                Some(Tok::LBrace)
            )
    }

    fn struct_def(&mut self) -> Result<StructDef, LangError> {
        self.bump(); // struct
        let name = self.expect_ident("struct name")?;
        self.expect(Tok::LBrace, "`{`")?;
        let mut fields = Vec::new();
        while *self.peek() != Tok::RBrace {
            let ty = self.parse_type()?;
            let fname = self.expect_ident("field name")?;
            self.expect(Tok::Semi, "`;`")?;
            fields.push((fname, ty));
        }
        self.expect(Tok::RBrace, "`}`")?;
        self.expect(Tok::Semi, "`;` after struct")?;
        Ok(StructDef { name, fields })
    }

    fn map_decl(&mut self) -> Result<MapDecl, LangError> {
        let line = self.line();
        self.bump(); // SYRUP_MAP
        self.expect(Tok::LParen, "`(`")?;
        let name = self.expect_ident("map name")?;
        self.expect(Tok::Comma, "`,`")?;
        let kind_name = self.expect_ident("map kind (ARRAY or HASH)")?;
        let kind = match kind_name.as_str() {
            "ARRAY" => MapDeclKind::Array,
            "HASH" => MapDeclKind::Hash,
            other => {
                return Err(LangError::new(line, format!("unknown map kind `{other}`")));
            }
        };
        self.expect(Tok::Comma, "`,`")?;
        let max_entries = match self.bump() {
            Tok::Int(n) if n > 0 => n,
            _ => return Err(LangError::new(line, "map size must be a positive integer")),
        };
        self.expect(Tok::RParen, "`)`")?;
        self.expect(Tok::Semi, "`;`")?;
        Ok(MapDecl {
            name,
            kind,
            max_entries,
        })
    }

    fn global_decl(&mut self, _name_hint: String) -> Result<GlobalDecl, LangError> {
        let line = self.line();
        let ty = self.parse_type()?;
        if ty.is_ptr() {
            return Err(LangError::new(line, "global pointers are not supported"));
        }
        let name = self.expect_ident("global name")?;
        let init = if *self.peek() == Tok::Assign {
            self.bump();
            let neg = if *self.peek() == Tok::Minus {
                self.bump();
                true
            } else {
                false
            };
            match self.bump() {
                Tok::Int(n) => {
                    if neg {
                        -n
                    } else {
                        n
                    }
                }
                _ => {
                    return Err(LangError::new(
                        line,
                        "global initializer must be an integer constant",
                    ))
                }
            }
        } else {
            0
        };
        self.expect(Tok::Semi, "`;`")?;
        Ok(GlobalDecl { name, ty, init })
    }

    fn function(&mut self) -> Result<Function, LangError> {
        let _ret = self.parse_type()?;
        let name = self.expect_ident("function name")?;
        self.expect(Tok::LParen, "`(`")?;
        let mut params = Vec::new();
        if *self.peek() != Tok::RParen {
            loop {
                let _pty = self.parse_type()?;
                params.push(self.expect_ident("parameter name")?);
                if *self.peek() == Tok::Comma {
                    self.bump();
                } else {
                    break;
                }
            }
        }
        self.expect(Tok::RParen, "`)`")?;
        let body = self.block()?;
        Ok(Function { name, params, body })
    }

    fn block(&mut self) -> Result<Vec<Stmt>, LangError> {
        self.expect(Tok::LBrace, "`{`")?;
        let mut stmts = Vec::new();
        while *self.peek() != Tok::RBrace {
            stmts.push(self.statement()?);
        }
        self.expect(Tok::RBrace, "`}`")?;
        Ok(stmts)
    }

    fn block_or_single(&mut self) -> Result<Vec<Stmt>, LangError> {
        if *self.peek() == Tok::LBrace {
            self.block()
        } else {
            Ok(vec![self.statement()?])
        }
    }

    fn statement(&mut self) -> Result<Stmt, LangError> {
        let line = self.line();
        match self.peek().clone() {
            Tok::Ident(w) if w == "return" => {
                self.bump();
                // Ranked form: `return (q, rank);`. Try it whenever the
                // value starts with `(`; backtrack to a plain expression
                // when no comma follows (e.g. `return (a) + b;`).
                if *self.peek() == Tok::LParen {
                    let save = self.pos;
                    self.bump();
                    match self.expr() {
                        Ok(value) if *self.peek() == Tok::Comma => {
                            self.bump();
                            let rank = self.expr()?;
                            self.expect(Tok::RParen, "`)`")?;
                            self.expect(Tok::Semi, "`;`")?;
                            return Ok(Stmt::Return {
                                line,
                                value,
                                rank: Some(rank),
                            });
                        }
                        _ => self.pos = save,
                    }
                }
                let value = self.expr()?;
                self.expect(Tok::Semi, "`;`")?;
                Ok(Stmt::Return {
                    line,
                    value,
                    rank: None,
                })
            }
            Tok::Ident(w) if w == "break" => {
                self.bump();
                self.expect(Tok::Semi, "`;`")?;
                Ok(Stmt::Break { line })
            }
            Tok::Ident(w) if w == "continue" => {
                self.bump();
                self.expect(Tok::Semi, "`;`")?;
                Ok(Stmt::Continue { line })
            }
            Tok::Ident(w) if w == "if" => self.if_stmt(),
            Tok::Ident(w) if w == "for" => self.for_stmt(),
            _ if self.is_type_start() && !self.looks_like_cast() => {
                let ty = self.parse_type()?;
                let name = self.expect_ident("variable name")?;
                let init = if *self.peek() == Tok::Assign {
                    self.bump();
                    Some(self.expr()?)
                } else {
                    None
                };
                self.expect(Tok::Semi, "`;`")?;
                Ok(Stmt::Decl {
                    line,
                    ty,
                    name,
                    init,
                })
            }
            _ => self.assign_or_expr_stmt(),
        }
    }

    /// At statement head, `(type)` casts can only appear inside
    /// expressions, so a bare type keyword here is always a declaration.
    fn looks_like_cast(&self) -> bool {
        false
    }

    fn if_stmt(&mut self) -> Result<Stmt, LangError> {
        let line = self.line();
        self.bump(); // if
        self.expect(Tok::LParen, "`(`")?;
        let cond = self.expr()?;
        self.expect(Tok::RParen, "`)`")?;
        let then_body = self.block_or_single()?;
        let else_body = if matches!(self.peek(), Tok::Ident(w) if w == "else") {
            self.bump();
            if matches!(self.peek(), Tok::Ident(w) if w == "if") {
                vec![self.if_stmt()?]
            } else {
                self.block_or_single()?
            }
        } else {
            Vec::new()
        };
        Ok(Stmt::If {
            line,
            cond,
            then_body,
            else_body,
        })
    }

    /// `for (int i = START; i < END; i++) body` — the only supported shape;
    /// loops are unrolled at compile time.
    fn for_stmt(&mut self) -> Result<Stmt, LangError> {
        let line = self.line();
        self.bump(); // for
        self.expect(Tok::LParen, "`(`")?;
        if self.is_type_start() {
            let _ty = self.parse_type()?;
        }
        let var = self.expect_ident("loop variable")?;
        self.expect(Tok::Assign, "`=`")?;
        let start = self.expr()?;
        self.expect(Tok::Semi, "`;`")?;
        let cond_var = self.expect_ident("loop variable in condition")?;
        if cond_var != var {
            return Err(LangError::new(
                line,
                "for-loop condition must test the loop variable",
            ));
        }
        self.expect(Tok::Lt, "`<` (only `i < N` conditions are supported)")?;
        let end = self.expr()?;
        self.expect(Tok::Semi, "`;`")?;
        let inc_var = self.expect_ident("loop variable in increment")?;
        if inc_var != var {
            return Err(LangError::new(line, "for-loop increment must be `var++`"));
        }
        self.expect(Tok::Incr, "`++`")?;
        self.expect(Tok::RParen, "`)`")?;
        let body = self.block_or_single()?;
        Ok(Stmt::For {
            line,
            var,
            start,
            end,
            body,
        })
    }

    fn assign_or_expr_stmt(&mut self) -> Result<Stmt, LangError> {
        let line = self.line();
        let first = self.expr()?;
        let stmt = match self.peek().clone() {
            Tok::Assign => {
                self.bump();
                let value = self.expr()?;
                Stmt::Assign {
                    line,
                    target: expr_to_lvalue(first, line)?,
                    value,
                }
            }
            Tok::PlusAssign | Tok::MinusAssign => {
                let op = if self.bump() == Tok::PlusAssign {
                    BinOp::Add
                } else {
                    BinOp::Sub
                };
                let rhs = self.expr()?;
                let value = Expr {
                    line,
                    kind: ExprKind::Binary(op, Box::new(first.clone()), Box::new(rhs)),
                };
                Stmt::Assign {
                    line,
                    target: expr_to_lvalue(first, line)?,
                    value,
                }
            }
            Tok::Incr | Tok::Decr => {
                let op = if self.bump() == Tok::Incr {
                    BinOp::Add
                } else {
                    BinOp::Sub
                };
                let one = Expr {
                    line,
                    kind: ExprKind::Int(1),
                };
                let value = Expr {
                    line,
                    kind: ExprKind::Binary(op, Box::new(first.clone()), Box::new(one)),
                };
                Stmt::Assign {
                    line,
                    target: expr_to_lvalue(first, line)?,
                    value,
                }
            }
            _ => Stmt::ExprStmt { line, expr: first },
        };
        self.expect(Tok::Semi, "`;`")?;
        Ok(stmt)
    }

    // --- expressions, lowest precedence first ---

    fn expr(&mut self) -> Result<Expr, LangError> {
        self.logical_or()
    }

    fn logical_or(&mut self) -> Result<Expr, LangError> {
        let mut lhs = self.logical_and()?;
        while *self.peek() == Tok::OrOr {
            let line = self.line();
            self.bump();
            let rhs = self.logical_and()?;
            lhs = Expr {
                line,
                kind: ExprKind::Binary(BinOp::LOr, Box::new(lhs), Box::new(rhs)),
            };
        }
        Ok(lhs)
    }

    fn logical_and(&mut self) -> Result<Expr, LangError> {
        let mut lhs = self.bit_or()?;
        while *self.peek() == Tok::AndAnd {
            let line = self.line();
            self.bump();
            let rhs = self.bit_or()?;
            lhs = Expr {
                line,
                kind: ExprKind::Binary(BinOp::LAnd, Box::new(lhs), Box::new(rhs)),
            };
        }
        Ok(lhs)
    }

    fn bit_or(&mut self) -> Result<Expr, LangError> {
        let mut lhs = self.bit_xor()?;
        while *self.peek() == Tok::Pipe {
            let line = self.line();
            self.bump();
            let rhs = self.bit_xor()?;
            lhs = Expr {
                line,
                kind: ExprKind::Binary(BinOp::Or, Box::new(lhs), Box::new(rhs)),
            };
        }
        Ok(lhs)
    }

    fn bit_xor(&mut self) -> Result<Expr, LangError> {
        let mut lhs = self.bit_and()?;
        while *self.peek() == Tok::Caret {
            let line = self.line();
            self.bump();
            let rhs = self.bit_and()?;
            lhs = Expr {
                line,
                kind: ExprKind::Binary(BinOp::Xor, Box::new(lhs), Box::new(rhs)),
            };
        }
        Ok(lhs)
    }

    fn bit_and(&mut self) -> Result<Expr, LangError> {
        let mut lhs = self.equality()?;
        while *self.peek() == Tok::Amp {
            let line = self.line();
            self.bump();
            let rhs = self.equality()?;
            lhs = Expr {
                line,
                kind: ExprKind::Binary(BinOp::And, Box::new(lhs), Box::new(rhs)),
            };
        }
        Ok(lhs)
    }

    fn equality(&mut self) -> Result<Expr, LangError> {
        let mut lhs = self.relational()?;
        loop {
            let op = match self.peek() {
                Tok::EqEq => BinOp::Eq,
                Tok::Ne => BinOp::Ne,
                _ => break,
            };
            let line = self.line();
            self.bump();
            let rhs = self.relational()?;
            lhs = Expr {
                line,
                kind: ExprKind::Binary(op, Box::new(lhs), Box::new(rhs)),
            };
        }
        Ok(lhs)
    }

    fn relational(&mut self) -> Result<Expr, LangError> {
        let mut lhs = self.shift()?;
        loop {
            let op = match self.peek() {
                Tok::Lt => BinOp::Lt,
                Tok::Le => BinOp::Le,
                Tok::Gt => BinOp::Gt,
                Tok::Ge => BinOp::Ge,
                _ => break,
            };
            let line = self.line();
            self.bump();
            let rhs = self.shift()?;
            lhs = Expr {
                line,
                kind: ExprKind::Binary(op, Box::new(lhs), Box::new(rhs)),
            };
        }
        Ok(lhs)
    }

    fn shift(&mut self) -> Result<Expr, LangError> {
        let mut lhs = self.additive()?;
        loop {
            let op = match self.peek() {
                Tok::Shl => BinOp::Shl,
                Tok::Shr => BinOp::Shr,
                _ => break,
            };
            let line = self.line();
            self.bump();
            let rhs = self.additive()?;
            lhs = Expr {
                line,
                kind: ExprKind::Binary(op, Box::new(lhs), Box::new(rhs)),
            };
        }
        Ok(lhs)
    }

    fn additive(&mut self) -> Result<Expr, LangError> {
        let mut lhs = self.multiplicative()?;
        loop {
            let op = match self.peek() {
                Tok::Plus => BinOp::Add,
                Tok::Minus => BinOp::Sub,
                _ => break,
            };
            let line = self.line();
            self.bump();
            let rhs = self.multiplicative()?;
            lhs = Expr {
                line,
                kind: ExprKind::Binary(op, Box::new(lhs), Box::new(rhs)),
            };
        }
        Ok(lhs)
    }

    fn multiplicative(&mut self) -> Result<Expr, LangError> {
        let mut lhs = self.unary()?;
        loop {
            let op = match self.peek() {
                Tok::Star => BinOp::Mul,
                Tok::Slash => BinOp::Div,
                Tok::Percent => BinOp::Mod,
                _ => break,
            };
            let line = self.line();
            self.bump();
            let rhs = self.unary()?;
            lhs = Expr {
                line,
                kind: ExprKind::Binary(op, Box::new(lhs), Box::new(rhs)),
            };
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<Expr, LangError> {
        let line = self.line();
        match self.peek().clone() {
            Tok::Bang => {
                self.bump();
                let e = self.unary()?;
                Ok(Expr {
                    line,
                    kind: ExprKind::Unary(UnOp::Not, Box::new(e)),
                })
            }
            Tok::Minus => {
                self.bump();
                let e = self.unary()?;
                Ok(Expr {
                    line,
                    kind: ExprKind::Unary(UnOp::Neg, Box::new(e)),
                })
            }
            Tok::Tilde => {
                self.bump();
                let e = self.unary()?;
                Ok(Expr {
                    line,
                    kind: ExprKind::Unary(UnOp::BitNot, Box::new(e)),
                })
            }
            Tok::Star => {
                self.bump();
                let e = self.unary()?;
                Ok(Expr {
                    line,
                    kind: ExprKind::Deref(Box::new(e)),
                })
            }
            Tok::Amp => {
                self.bump();
                let name = self.expect_ident("identifier after `&`")?;
                Ok(Expr {
                    line,
                    kind: ExprKind::AddrOf(name),
                })
            }
            Tok::LParen if self.cast_ahead() => {
                self.bump(); // (
                let ty = self.parse_type()?;
                self.expect(Tok::RParen, "`)` after cast type")?;
                let e = self.unary()?;
                Ok(Expr {
                    line,
                    kind: ExprKind::Cast(ty, Box::new(e)),
                })
            }
            _ => self.postfix(),
        }
    }

    /// Whether `(` starts a cast: the next token is a type keyword.
    fn cast_ahead(&self) -> bool {
        match self.peek2() {
            Tok::Ident(s) => matches!(
                s.as_str(),
                "uint8_t" | "uint16_t" | "uint32_t" | "uint64_t" | "int" | "void" | "struct"
            ),
            _ => false,
        }
    }

    fn postfix(&mut self) -> Result<Expr, LangError> {
        let mut e = self.primary()?;
        #[allow(clippy::while_let_loop)] // Future postfix forms extend this match.
        loop {
            match self.peek() {
                Tok::Arrow => {
                    let line = self.line();
                    self.bump();
                    let field = self.expect_ident("field name")?;
                    e = Expr {
                        line,
                        kind: ExprKind::Member(Box::new(e), field),
                    };
                }
                _ => break,
            }
        }
        Ok(e)
    }

    fn primary(&mut self) -> Result<Expr, LangError> {
        let line = self.line();
        match self.bump() {
            Tok::Int(n) => Ok(Expr {
                line,
                kind: ExprKind::Int(n),
            }),
            Tok::LParen => {
                let e = self.expr()?;
                self.expect(Tok::RParen, "`)`")?;
                Ok(e)
            }
            Tok::Ident(name) if name == "sizeof" => {
                self.expect(Tok::LParen, "`(`")?;
                let kind = if matches!(self.peek(), Tok::Ident(w) if w == "struct") {
                    self.bump();
                    let sname = self.expect_ident("struct name")?;
                    ExprKind::SizeOfStruct(sname)
                } else {
                    let ty = self.parse_type()?;
                    ExprKind::SizeOf(ty)
                };
                self.expect(Tok::RParen, "`)`")?;
                Ok(Expr { line, kind })
            }
            Tok::Ident(name) => {
                if *self.peek() == Tok::LParen {
                    self.bump();
                    let mut args = Vec::new();
                    if *self.peek() != Tok::RParen {
                        loop {
                            args.push(self.expr()?);
                            if *self.peek() == Tok::Comma {
                                self.bump();
                            } else {
                                break;
                            }
                        }
                    }
                    self.expect(Tok::RParen, "`)`")?;
                    Ok(Expr {
                        line,
                        kind: ExprKind::Call(name, args),
                    })
                } else {
                    Ok(Expr {
                        line,
                        kind: ExprKind::Ident(name),
                    })
                }
            }
            other => Err(LangError::new(line, format!("unexpected token {other:?}"))),
        }
    }
}

fn expr_to_lvalue(e: Expr, line: usize) -> Result<LValue, LangError> {
    match e.kind {
        ExprKind::Ident(name) => Ok(LValue::Var(name)),
        ExprKind::Deref(inner) => Ok(LValue::Deref(*inner)),
        ExprKind::Member(base, field) => Ok(LValue::Member(*base, field)),
        _ => Err(LangError::new(line, "invalid assignment target")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse_src(src: &str) -> Unit {
        parse(lex(src).unwrap()).unwrap()
    }

    #[test]
    fn parses_round_robin_policy() {
        let unit = parse_src(
            "uint32_t idx = 0;
             uint32_t schedule(void *pkt_start, void *pkt_end) {
                 idx++;
                 return idx % NUM_THREADS;
             }",
        );
        assert_eq!(unit.globals.len(), 1);
        assert_eq!(unit.globals[0].name, "idx");
        let f = unit.function.unwrap();
        assert_eq!(f.name, "schedule");
        assert_eq!(f.params, vec!["pkt_start", "pkt_end"]);
        assert_eq!(f.body.len(), 2);
    }

    #[test]
    fn parses_ranked_return() {
        let unit = parse_src(
            "uint32_t schedule(void *a, void *b) {
                 return (1 + 2, a - b);
             }",
        );
        let f = unit.function.unwrap();
        match &f.body[0] {
            Stmt::Return {
                rank: Some(rank),
                value,
                ..
            } => {
                assert!(matches!(value.kind, ExprKind::Binary(BinOp::Add, _, _)));
                assert!(matches!(rank.kind, ExprKind::Binary(BinOp::Sub, _, _)));
            }
            other => panic!("expected ranked return, got {other:?}"),
        }
    }

    #[test]
    fn parenthesized_return_is_not_ranked() {
        // `return (x);` and `return (x) + 1;` keep their classic meaning.
        let unit = parse_src(
            "uint32_t schedule(void *a, void *b) {
                 return (4) + 1;
             }",
        );
        let f = unit.function.unwrap();
        match &f.body[0] {
            Stmt::Return {
                rank: None, value, ..
            } => {
                assert!(matches!(value.kind, ExprKind::Binary(BinOp::Add, _, _)));
            }
            other => panic!("expected plain return, got {other:?}"),
        }
    }

    #[test]
    fn parses_struct_and_member_access() {
        let unit = parse_src(
            "struct app_hdr { uint32_t user_id; uint32_t pad; };
             uint32_t schedule(void *pkt_start, void *pkt_end) {
                 struct app_hdr *hdr = (struct app_hdr *)(pkt_start + 8);
                 return hdr->user_id;
             }",
        );
        assert_eq!(unit.structs.len(), 1);
        assert_eq!(unit.structs[0].fields.len(), 2);
        let f = unit.function.unwrap();
        assert!(matches!(f.body[0], Stmt::Decl { .. }));
    }

    #[test]
    fn parses_map_decl_and_for_loop() {
        let unit = parse_src(
            "SYRUP_MAP(scan_map, ARRAY, 64);
             uint32_t schedule(void *pkt_start, void *pkt_end) {
                 for (int i = 0; i < 6; i++) {
                     if (i == 3) break;
                 }
                 return 0;
             }",
        );
        assert_eq!(unit.maps.len(), 1);
        assert_eq!(unit.maps[0].kind, MapDeclKind::Array);
        let f = unit.function.unwrap();
        assert!(matches!(f.body[0], Stmt::For { .. }));
    }

    #[test]
    fn desugars_compound_assignment() {
        let unit =
            parse_src("uint32_t schedule(void *a, void *b) { uint32_t x = 1; x += 2; return x; }");
        let f = unit.function.unwrap();
        match &f.body[1] {
            Stmt::Assign { value, .. } => {
                assert!(matches!(value.kind, ExprKind::Binary(BinOp::Add, _, _)));
            }
            other => panic!("expected assign, got {other:?}"),
        }
    }

    #[test]
    fn parses_deref_assignment_and_addr_of() {
        let unit = parse_src(
            "uint32_t schedule(void *a, void *b) {
                 uint64_t *p = syr_map_lookup_elem(&m, &k);
                 *p = 7;
                 return 0;
             }",
        );
        let f = unit.function.unwrap();
        assert!(matches!(
            &f.body[1],
            Stmt::Assign {
                target: LValue::Deref(_),
                ..
            }
        ));
    }

    #[test]
    fn parses_paper_style_struct_pointer_cast() {
        // The paper writes `(struct *udphdr)`; we accept it.
        let unit = parse_src(
            "uint32_t schedule(void *a, void *b) {
                 uint64_t v = *(uint64_t *)(a + 8);
                 return v;
             }",
        );
        assert!(unit.function.is_some());
    }

    #[test]
    fn rejects_malformed_for() {
        let toks =
            lex("uint32_t schedule(void *a, void *b) { for (int i = 0; j < 6; i++) {} return 0; }")
                .unwrap();
        assert!(parse(toks).is_err());
    }

    #[test]
    fn rejects_two_functions() {
        let toks = lex("uint32_t schedule(void *a, void *b) { return 0; }
             uint32_t other(void *a, void *b) { return 1; }")
        .unwrap();
        assert!(parse(toks).is_err());
    }

    #[test]
    fn parses_logical_operators_with_precedence() {
        let unit = parse_src(
            "uint32_t schedule(void *a, void *b) {
                 if (1 < 2 && 3 == 3 || 0) { return 1; }
                 return 0;
             }",
        );
        let f = unit.function.unwrap();
        match &f.body[0] {
            Stmt::If { cond, .. } => {
                // `||` binds loosest.
                assert!(matches!(cond.kind, ExprKind::Binary(BinOp::LOr, _, _)));
            }
            other => panic!("expected if, got {other:?}"),
        }
    }

    #[test]
    fn parses_sizeof() {
        let unit = parse_src(
            "struct udphdr { uint16_t sport; uint16_t dport; uint16_t len; uint16_t check; };
             uint32_t schedule(void *a, void *b) {
                 return sizeof(struct udphdr) + sizeof(uint32_t);
             }",
        );
        assert!(unit.function.is_some());
    }
}
