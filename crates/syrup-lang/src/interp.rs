//! A direct AST interpreter for the policy language.
//!
//! This is the *reference semantics* used by the differential oracle in
//! `syrup-fuzz`: a policy source is compiled through [`crate::codegen`] and
//! run on the `syrup-ebpf` VM, and independently executed here straight off
//! the AST. Any divergence in the scheduling verdict is a bug in one of the
//! two implementations.
//!
//! The interpreter deliberately mirrors the *compiler as implemented*, not
//! an idealized C semantics — e.g. scalar locals always occupy a full
//! 64-bit slot regardless of their declared width, `return` truncates to
//! `uint32_t`, packet stores through `void *` write a single byte, and a
//! pointer local whose initializer is packet-derived loses its declared
//! pointee width. Where the compiler rejects a construct the interpreter
//! may also reject it (only programs that compile *and* verify are ever
//! compared).

use std::collections::HashMap;

use syrup_ebpf::maps::{MapDef, MapId, MapRef, MapRegistry, UpdateFlag};
use syrup_ebpf::ret;
use syrup_ebpf::vm::RunEnv;

use crate::ast::{BinOp, Expr, ExprKind, LValue, MapDeclKind, Stmt, StructDef, Type, UnOp, Unit};
use crate::{CompileOptions, LangError};

/// Pointer provenance, mirroring the VM's `Region` tagging.
#[derive(Debug, Clone)]
enum Base {
    /// Into the packet; `data_end` is `Pkt(len)`. The offset may be
    /// negative or past the end — dereferencing checks bounds.
    Pkt(i64),
    /// Into a map value slot.
    Map { map: MapRef, slot: u32, off: i64 },
    /// A failed lookup: the VM models this as `Scalar(0)`.
    Null,
}

/// Static pointer kind, mirroring codegen's `VKind` (pointer cases only).
#[derive(Debug, Clone, PartialEq, Eq)]
enum PKind {
    /// Packet pointer (byte-granular, width recovered from casts).
    Pkt,
    /// The `data_end` sentinel.
    PktEnd,
    /// Map value pointer with pointee width.
    MapVal(u32),
    /// Struct pointer.
    Struct(String),
}

#[derive(Debug, Clone)]
struct PtrVal {
    base: Base,
    kind: PKind,
}

impl PtrVal {
    /// The numeric value the VM would compare: packet pointers compare by
    /// offset (same region), a null lookup result is the scalar 0.
    fn is_null(&self) -> bool {
        matches!(self.base, Base::Null)
    }
}

/// A name binding, mirroring codegen's `Binding`.
#[derive(Clone)]
enum Cell {
    /// Compile-time constant (defines, `PASS`/`DROP`/`NULL`, loop vars).
    Const(i64),
    /// Scalar local: always a full 64-bit stack slot.
    Scalar(u64),
    /// Pointer local or parameter.
    Ptr(PtrVal),
    /// Global: (slot index in the globals map, declared width).
    Global(u32, u32),
    /// A declared or externally bound map.
    Map(MapRef),
}

/// Statement-level control flow.
enum Flow {
    Normal,
    Break,
    Continue,
    Return(u64),
}

/// The verdict of one interpreted run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InterpOutcome {
    /// The `schedule` return value, truncated to `uint32_t` like codegen.
    pub ret: u64,
    /// The last `bpf_redirect_map` call, if any.
    pub redirect: Option<(MapId, u32)>,
}

/// A prepared policy: maps created, globals initialized, ready to run.
///
/// Mirrors [`crate::codegen::generate`]'s deploy-time work so that a policy
/// prepared against a fresh registry has bit-identical map state to one
/// compiled against another fresh registry.
pub struct Policy {
    unit: Unit,
    structs: HashMap<String, StructDef>,
    base: HashMap<String, Cell>,
    globals: Option<MapRef>,
    /// Maps created for `SYRUP_MAP` declarations, by name.
    pub created_maps: HashMap<String, MapId>,
    /// The implicit globals map, if the policy declares globals.
    pub globals_map: Option<MapId>,
}

/// Validates the unit and performs deploy-time setup (map creation, global
/// initialization) exactly as codegen does.
pub fn prepare(
    unit: &Unit,
    opts: &CompileOptions,
    maps: &MapRegistry,
) -> Result<Policy, LangError> {
    let func = unit
        .function
        .as_ref()
        .ok_or_else(|| LangError::new(1, "policy must define a `schedule` function"))?;
    if func.name != "schedule" {
        return Err(LangError::new(
            1,
            "the entry function must be named `schedule`",
        ));
    }
    if !(func.params.is_empty() || func.params.len() == 2) {
        return Err(LangError::new(
            1,
            "schedule must take (void *pkt_start, void *pkt_end) or no parameters",
        ));
    }

    let mut base = HashMap::new();
    base.insert("PASS".to_string(), Cell::Const(ret::PASS as i64));
    base.insert("DROP".to_string(), Cell::Const(ret::DROP as i64));
    base.insert("NULL".to_string(), Cell::Const(0));
    for (name, value) in &opts.defines {
        base.insert(name.clone(), Cell::Const(*value));
    }

    let mut created_maps = HashMap::new();
    for decl in &unit.maps {
        let def = match decl.kind {
            MapDeclKind::Array => MapDef::u64_array(decl.max_entries as u32),
            MapDeclKind::Hash => MapDef::u64_hash(decl.max_entries as u32),
        };
        let id = maps.create(def);
        created_maps.insert(decl.name.clone(), id);
        let mref = maps.get(id).expect("map just created");
        base.insert(decl.name.clone(), Cell::Map(mref));
    }
    for (name, id) in &opts.external_maps {
        let mref = maps
            .get(*id)
            .ok_or_else(|| LangError::new(1, format!("external map `{name}` does not exist")))?;
        base.insert(name.clone(), Cell::Map(mref));
    }

    let mut globals = None;
    let mut globals_map = None;
    if !unit.globals.is_empty() {
        let gmap = maps.create(MapDef::u64_array(unit.globals.len() as u32));
        let gref = maps.get(gmap).expect("map just created");
        for (i, g) in unit.globals.iter().enumerate() {
            gref.update_u64(i as u32, g.init as u64)
                .expect("in-range global slot");
            base.insert(g.name.clone(), Cell::Global(i as u32, g.ty.size()));
        }
        globals = Some(gref);
        globals_map = Some(gmap);
    }

    Ok(Policy {
        unit: unit.clone(),
        structs: unit
            .structs
            .iter()
            .map(|s| (s.name.clone(), s.clone()))
            .collect(),
        base,
        globals,
        created_maps,
        globals_map,
    })
}

impl Policy {
    /// Interprets one `schedule` invocation over `pkt`.
    ///
    /// `env` supplies the same helper inputs the VM's [`RunEnv`] does
    /// (`ktime_get_ns`, `cpu_id`, the `get_random` stream); pass an
    /// identically seeded value on both sides of a differential run.
    pub fn run(&self, pkt: &mut [u8], env: &mut RunEnv) -> Result<InterpOutcome, LangError> {
        let func = self.unit.function.as_ref().expect("checked in prepare");
        let mut scopes = vec![self.base.clone()];
        if func.params.len() == 2 {
            let mut params = HashMap::new();
            params.insert(
                func.params[0].clone(),
                Cell::Ptr(PtrVal {
                    base: Base::Pkt(0),
                    kind: PKind::Pkt,
                }),
            );
            params.insert(
                func.params[1].clone(),
                Cell::Ptr(PtrVal {
                    base: Base::Pkt(pkt.len() as i64),
                    kind: PKind::PktEnd,
                }),
            );
            scopes.push(params);
        }
        let mut run = Run {
            pol: self,
            pkt,
            env,
            scopes,
            redirect: None,
        };
        let ret = match run.exec_block(&func.body)? {
            Flow::Return(v) => v,
            // Implicit `return PASS` at the end of the body. Codegen emits
            // `mov64 r0, PASS as i32` with no uint32_t truncation, so the
            // value is the sign-extended -1, not 0xFFFF_FFFF.
            _ => i64::from(ret::PASS as i32) as u64,
        };
        Ok(InterpOutcome {
            ret,
            redirect: run.redirect,
        })
    }
}

struct Run<'a> {
    pol: &'a Policy,
    pkt: &'a mut [u8],
    env: &'a mut RunEnv,
    scopes: Vec<HashMap<String, Cell>>,
    redirect: Option<(MapId, u32)>,
}

fn err(line: usize, msg: impl Into<String>) -> LangError {
    LangError::new(line, msg)
}

impl Run<'_> {
    fn lookup(&self, name: &str) -> Option<&Cell> {
        self.scopes.iter().rev().find_map(|s| s.get(name))
    }

    fn set(&mut self, name: &str, cell: Cell) {
        for scope in self.scopes.iter_mut().rev() {
            if let Some(slot) = scope.get_mut(name) {
                *slot = cell;
                return;
            }
        }
    }

    fn exec_block(&mut self, stmts: &[Stmt]) -> Result<Flow, LangError> {
        self.scopes.push(HashMap::new());
        let mut flow = Flow::Normal;
        for stmt in stmts {
            flow = self.exec_stmt(stmt)?;
            if !matches!(flow, Flow::Normal) {
                break;
            }
        }
        self.scopes.pop();
        Ok(flow)
    }

    fn exec_stmt(&mut self, stmt: &Stmt) -> Result<Flow, LangError> {
        match stmt {
            Stmt::Decl {
                line,
                ty,
                name,
                init,
            } => {
                if ty.is_ptr() {
                    let init = init.as_ref().ok_or_else(|| {
                        err(*line, "pointer locals must be initialized at declaration")
                    })?;
                    let actual = self.eval_ptr(*line, init)?;
                    let declared = self.pkind_of_type(*line, ty)?;
                    // The declared pointee width wins for plain scalar
                    // pointers; packet provenance wins otherwise — same
                    // merge as codegen's `decl`.
                    let kind = match (&declared, actual.kind.clone()) {
                        (PKind::MapVal(w), PKind::MapVal(_)) => PKind::MapVal(*w),
                        (PKind::Struct(s), PKind::Pkt) => PKind::Struct(s.clone()),
                        (_, k) => k,
                    };
                    self.scopes.last_mut().expect("scope").insert(
                        name.clone(),
                        Cell::Ptr(PtrVal {
                            base: actual.base,
                            kind,
                        }),
                    );
                } else {
                    let v = match init {
                        Some(e) => self.eval_scalar(*line, e)?,
                        None => 0,
                    };
                    self.scopes
                        .last_mut()
                        .expect("scope")
                        .insert(name.clone(), Cell::Scalar(v));
                }
                Ok(Flow::Normal)
            }
            Stmt::Assign {
                line,
                target,
                value,
            } => {
                self.assign(*line, target, value)?;
                Ok(Flow::Normal)
            }
            Stmt::If {
                line,
                cond,
                then_body,
                else_body,
            } => {
                if self.eval_cond(*line, cond)? {
                    self.exec_block(then_body)
                } else {
                    self.exec_block(else_body)
                }
            }
            Stmt::For {
                line,
                var,
                start,
                end,
                body,
            } => {
                let start_c = self
                    .const_fold(start)
                    .ok_or_else(|| err(*line, "for-loop start must be a compile-time constant"))?;
                let end_c = self
                    .const_fold(end)
                    .ok_or_else(|| err(*line, "for-loop bound must be a compile-time constant"))?;
                if end_c.checked_sub(start_c).is_none_or(|d| d > 64) {
                    return Err(err(*line, "for-loop unrolls to more than 64 iterations"));
                }
                for i in start_c..end_c {
                    let mut scope = HashMap::new();
                    scope.insert(var.clone(), Cell::Const(i));
                    self.scopes.push(scope);
                    let flow = self.exec_block(body);
                    self.scopes.pop();
                    match flow? {
                        Flow::Break => break,
                        Flow::Return(v) => return Ok(Flow::Return(v)),
                        Flow::Normal | Flow::Continue => {}
                    }
                }
                Ok(Flow::Normal)
            }
            Stmt::Break { .. } => Ok(Flow::Break),
            Stmt::Continue { .. } => Ok(Flow::Continue),
            Stmt::Return { line, value, rank } => {
                match rank {
                    None => {
                        let v = self.eval_scalar(*line, value)?;
                        // Truncate to the uint32_t return type, like
                        // codegen's `alu32 mov r0, r0`.
                        Ok(Flow::Return(v & 0xFFFF_FFFF))
                    }
                    Some(rank) => {
                        // Ranked return: evaluate the rank first (codegen
                        // does, and evaluation order is observable through
                        // map helpers), truncate both halves, and encode
                        // (rank << 32) | q.
                        let r = self.eval_scalar(*line, rank)? & 0xFFFF_FFFF;
                        let q = self.eval_scalar(*line, value)? & 0xFFFF_FFFF;
                        Ok(Flow::Return((r << 32) | q))
                    }
                }
            }
            Stmt::ExprStmt { line, expr } => {
                match &expr.kind {
                    ExprKind::Call(name, args) => {
                        self.eval_call(*line, name, args)?;
                    }
                    _ => {
                        self.eval_scalar(*line, expr)?;
                    }
                }
                Ok(Flow::Normal)
            }
        }
    }

    fn assign(&mut self, line: usize, target: &LValue, value: &Expr) -> Result<(), LangError> {
        match target {
            LValue::Var(name) => match self.lookup(name).cloned() {
                Some(Cell::Scalar(_)) => {
                    let v = self.eval_scalar(line, value)?;
                    self.set(name, Cell::Scalar(v));
                    Ok(())
                }
                Some(Cell::Ptr(old)) => {
                    let new = self.eval_ptr(line, value)?;
                    let kind = match (&old.kind, new.kind.clone()) {
                        (PKind::MapVal(w), PKind::MapVal(_)) => PKind::MapVal(*w),
                        (PKind::Struct(s), PKind::Pkt) => PKind::Struct(s.clone()),
                        (_, k) => k,
                    };
                    self.set(
                        name,
                        Cell::Ptr(PtrVal {
                            base: new.base,
                            kind,
                        }),
                    );
                    Ok(())
                }
                Some(Cell::Global(index, _)) => {
                    // Codegen stores the full 64-bit value regardless of
                    // the declared width.
                    let v = self.eval_scalar(line, value)?;
                    let gmap = self.pol.globals.as_ref().expect("globals map exists");
                    gmap.write_value(index, 0, 8, v)
                        .map_err(|e| err(line, format!("global store: {e:?}")))?;
                    Ok(())
                }
                Some(Cell::Const(_)) => {
                    Err(err(line, format!("cannot assign to constant `{name}`")))
                }
                Some(Cell::Map(_)) => Err(err(line, format!("cannot assign to map `{name}`"))),
                None => Err(err(line, format!("unknown variable `{name}`"))),
            },
            LValue::Deref(pe) => {
                // Value before address, mirroring codegen (which parks the
                // value on the stack so address materialization cannot
                // clobber it).
                let v = self.eval_scalar(line, value)?;
                let p = self.eval_ptr(line, pe)?;
                let width = match &p.kind {
                    PKind::MapVal(w) => *w,
                    // Codegen stores a single byte through untyped packet
                    // pointers.
                    PKind::Pkt => 1,
                    _ => return Err(err(line, "cannot store through this pointer")),
                };
                self.store(line, &p, 0, width, v)
            }
            LValue::Member(base, field) => {
                let v = self.eval_scalar(line, value)?;
                let p = self.eval_ptr(line, base)?;
                let PKind::Struct(sname) = &p.kind else {
                    return Err(err(line, "`->` requires a struct pointer"));
                };
                let sdef = self
                    .pol
                    .structs
                    .get(sname)
                    .cloned()
                    .ok_or_else(|| err(line, format!("unknown struct `{sname}`")))?;
                let (off, fty) = sdef
                    .offset_of(field)
                    .ok_or_else(|| err(line, format!("no field `{field}` in `{sname}`")))?;
                let width = fty.size();
                self.store(line, &p, i64::from(off), width, v)
            }
        }
    }

    /// Loads `width` bytes (little-endian) at `ptr + extra_off`.
    fn load(&self, line: usize, p: &PtrVal, extra_off: i64, width: u32) -> Result<u64, LangError> {
        match &p.base {
            Base::Null => Err(err(line, "null pointer dereference")),
            Base::Pkt(off) => {
                let off = off.wrapping_add(extra_off);
                let end = off.wrapping_add(i64::from(width));
                if off < 0 || end < off || end > self.pkt.len() as i64 {
                    return Err(err(
                        line,
                        format!("packet read out of bounds: off {off} width {width}"),
                    ));
                }
                let bytes = &self.pkt[off as usize..end as usize];
                let mut v = 0u64;
                for (i, b) in bytes.iter().enumerate() {
                    v |= u64::from(*b) << (8 * i);
                }
                Ok(v)
            }
            Base::Map { map, slot, off } => {
                let off = off.wrapping_add(extra_off);
                let off = u32::try_from(off).map_err(|_| err(line, "negative map value offset"))?;
                map.read_value(*slot, off, width)
                    .map_err(|e| err(line, format!("map value read: {e:?}")))
            }
        }
    }

    /// Stores the low `width` bytes of `v` (little-endian) at
    /// `ptr + extra_off`.
    fn store(
        &mut self,
        line: usize,
        p: &PtrVal,
        extra_off: i64,
        width: u32,
        v: u64,
    ) -> Result<(), LangError> {
        match &p.base {
            Base::Null => Err(err(line, "null pointer store")),
            Base::Pkt(off) => {
                let off = off.wrapping_add(extra_off);
                let end = off.wrapping_add(i64::from(width));
                if off < 0 || end < off || end > self.pkt.len() as i64 {
                    return Err(err(
                        line,
                        format!("packet write out of bounds: off {off} width {width}"),
                    ));
                }
                for i in 0..width as usize {
                    self.pkt[off as usize + i] = (v >> (8 * i)) as u8;
                }
                Ok(())
            }
            Base::Map { map, slot, off } => {
                let off = off.wrapping_add(extra_off);
                let off = u32::try_from(off).map_err(|_| err(line, "negative map value offset"))?;
                map.write_value(*slot, off, width, v)
                    .map_err(|e| err(line, format!("map value write: {e:?}")))
            }
        }
    }

    fn pkind_of_type(&self, line: usize, ty: &Type) -> Result<PKind, LangError> {
        Ok(match ty {
            Type::VoidPtr => PKind::Pkt,
            Type::Ptr(inner) => PKind::MapVal(inner.size()),
            Type::StructPtr(name) => {
                if !self.pol.structs.contains_key(name) {
                    return Err(err(line, format!("unknown struct `{name}`")));
                }
                PKind::Struct(name.clone())
            }
            _ => return Err(err(line, "expected a pointer type")),
        })
    }

    /// Mirrors codegen's `const_fold` exactly (i64 wrapping arithmetic,
    /// unsigned division/shifts/comparisons).
    fn const_fold(&self, e: &Expr) -> Option<i64> {
        match &e.kind {
            ExprKind::Int(n) => Some(*n),
            ExprKind::Ident(name) => match self.lookup(name) {
                Some(Cell::Const(k)) => Some(*k),
                _ => None,
            },
            ExprKind::SizeOf(ty) => Some(i64::from(ty.size())),
            ExprKind::SizeOfStruct(name) => self.pol.structs.get(name).map(|s| i64::from(s.size())),
            ExprKind::Unary(UnOp::Neg, inner) => Some(self.const_fold(inner)?.wrapping_neg()),
            ExprKind::Unary(UnOp::BitNot, inner) => Some(!self.const_fold(inner)?),
            ExprKind::Unary(UnOp::Not, inner) => Some(i64::from(self.const_fold(inner)? == 0)),
            ExprKind::Binary(op, a, b) => {
                let a = self.const_fold(a)?;
                let b = self.const_fold(b)?;
                Some(match op {
                    BinOp::Add => a.wrapping_add(b),
                    BinOp::Sub => a.wrapping_sub(b),
                    BinOp::Mul => a.wrapping_mul(b),
                    BinOp::Div => {
                        if b == 0 {
                            0
                        } else {
                            ((a as u64) / (b as u64)) as i64
                        }
                    }
                    BinOp::Mod => {
                        if b == 0 {
                            a
                        } else {
                            ((a as u64) % (b as u64)) as i64
                        }
                    }
                    BinOp::And => a & b,
                    BinOp::Or => a | b,
                    BinOp::Xor => a ^ b,
                    BinOp::Shl => ((a as u64) << (b as u64 & 63)) as i64,
                    BinOp::Shr => ((a as u64) >> (b as u64 & 63)) as i64,
                    BinOp::Eq => i64::from(a == b),
                    BinOp::Ne => i64::from(a != b),
                    BinOp::Lt => i64::from((a as u64) < (b as u64)),
                    BinOp::Le => i64::from(a as u64 <= b as u64),
                    BinOp::Gt => i64::from(a as u64 > b as u64),
                    BinOp::Ge => i64::from(a as u64 >= b as u64),
                    BinOp::LAnd => i64::from(a != 0 && b != 0),
                    BinOp::LOr => i64::from(a != 0 || b != 0),
                })
            }
            _ => None,
        }
    }

    fn eval_scalar(&mut self, line: usize, e: &Expr) -> Result<u64, LangError> {
        if let Some(k) = self.const_fold(e) {
            return Ok(k as u64);
        }
        let line = if e.line != 0 { e.line } else { line };
        match &e.kind {
            ExprKind::Ident(name) => match self.lookup(name).cloned() {
                Some(Cell::Scalar(v)) => Ok(v),
                Some(Cell::Global(index, w)) => {
                    // Codegen reads globals back at their declared width.
                    let gmap = self.pol.globals.as_ref().expect("globals map exists");
                    gmap.read_value(index, 0, w)
                        .map_err(|e| err(line, format!("global read: {e:?}")))
                }
                Some(Cell::Ptr(_)) => Err(err(
                    line,
                    format!("`{name}` is a pointer; dereference or compare it instead"),
                )),
                _ => Err(err(line, format!("unknown variable `{name}`"))),
            },
            ExprKind::Deref(inner) => {
                // Width comes from the pointer's static kind for map
                // values, and from the *syntactic* cast (default 8) for
                // packet/struct pointers — codegen-as-implemented.
                let cast_width = deref_width(inner).unwrap_or(8);
                let p = self.eval_ptr(line, inner)?;
                let width = match &p.kind {
                    PKind::MapVal(w) => *w,
                    PKind::Pkt | PKind::Struct(_) => cast_width,
                    PKind::PktEnd => return Err(err(line, "cannot dereference this value")),
                };
                self.load(line, &p, 0, width)
            }
            ExprKind::Member(base, field) => {
                let p = self.eval_ptr(line, base)?;
                let PKind::Struct(sname) = &p.kind else {
                    return Err(err(line, "`->` requires a struct pointer"));
                };
                let sdef = self
                    .pol
                    .structs
                    .get(sname)
                    .cloned()
                    .ok_or_else(|| err(line, format!("unknown struct `{sname}`")))?;
                let (off, fty) = sdef
                    .offset_of(field)
                    .ok_or_else(|| err(line, format!("no field `{field}` in `{sname}`")))?;
                self.load(line, &p, i64::from(off), fty.size())
            }
            ExprKind::Cast(ty, inner) => {
                if ty.is_ptr() {
                    return Err(err(line, "pointer casts are only valid in pointer context"));
                }
                let v = self.eval_scalar(line, inner)?;
                Ok(match ty.size() {
                    8 => v,
                    4 => v & 0xFFFF_FFFF,
                    w => v & ((1u64 << (w * 8)) - 1),
                })
            }
            ExprKind::Unary(UnOp::Neg, inner) => Ok(self.eval_scalar(line, inner)?.wrapping_neg()),
            ExprKind::Unary(UnOp::BitNot, inner) => Ok(!self.eval_scalar(line, inner)?),
            ExprKind::Unary(UnOp::Not, _)
            | ExprKind::Binary(
                BinOp::Eq
                | BinOp::Ne
                | BinOp::Lt
                | BinOp::Le
                | BinOp::Gt
                | BinOp::Ge
                | BinOp::LAnd
                | BinOp::LOr,
                ..,
            ) => Ok(u64::from(self.eval_cond(line, e)?)),
            ExprKind::Binary(op, a, b) => {
                let va = self.eval_scalar(line, a)?;
                let vb = self.eval_scalar(line, b)?;
                Ok(match op {
                    BinOp::Add => va.wrapping_add(vb),
                    BinOp::Sub => va.wrapping_sub(vb),
                    BinOp::Mul => va.wrapping_mul(vb),
                    BinOp::Div => va.checked_div(vb).unwrap_or(0),
                    BinOp::Mod => {
                        if vb == 0 {
                            va
                        } else {
                            va % vb
                        }
                    }
                    BinOp::And => va & vb,
                    BinOp::Or => va | vb,
                    BinOp::Xor => va ^ vb,
                    BinOp::Shl => va.wrapping_shl((vb & 63) as u32),
                    BinOp::Shr => va.wrapping_shr((vb & 63) as u32),
                    _ => unreachable!("comparisons handled above"),
                })
            }
            ExprKind::Call(name, args) => match self.eval_call(line, name, args)? {
                Cell::Scalar(v) => Ok(v),
                _ => Err(err(
                    line,
                    format!("`{name}` returns a pointer; assign it to a pointer local"),
                )),
            },
            ExprKind::AddrOf(_) => Err(err(
                line,
                "`&` expressions may only appear as helper-call arguments",
            )),
            // Unfoldable sizeof of an unknown struct, etc.
            _ => Err(err(line, "expected a scalar expression")),
        }
    }

    fn eval_ptr(&mut self, line: usize, e: &Expr) -> Result<PtrVal, LangError> {
        let line = if e.line != 0 { e.line } else { line };
        match &e.kind {
            ExprKind::Ident(name) => match self.lookup(name).cloned() {
                Some(Cell::Ptr(p)) => Ok(p),
                _ => Err(err(line, format!("`{name}` is not a pointer"))),
            },
            ExprKind::Cast(ty, inner) => {
                let p = self.eval_ptr(line, inner)?;
                let declared = self.pkind_of_type(line, ty)?;
                // Codegen's cast-kind matrix: declared widths win between
                // map pointers, packet provenance survives scalar-pointer
                // casts (the deref width is then recovered syntactically).
                let kind = match (declared, p.kind) {
                    (PKind::MapVal(w), PKind::MapVal(_)) => PKind::MapVal(w),
                    (PKind::Struct(s), PKind::Pkt) => PKind::Struct(s),
                    (PKind::Struct(s), PKind::Struct(_)) => PKind::Struct(s),
                    (PKind::Pkt, PKind::Pkt | PKind::Struct(_)) => PKind::Pkt,
                    (PKind::MapVal(_), PKind::Pkt | PKind::Struct(_)) => PKind::Pkt,
                    (d, _) => d,
                };
                Ok(PtrVal { base: p.base, kind })
            }
            ExprKind::Binary(op @ (BinOp::Add | BinOp::Sub), a, b) => {
                let p = self.eval_ptr(line, a)?;
                // Constant offsets go through a 32-bit immediate in
                // codegen; mirror the truncation.
                let delta = match self.const_fold(b) {
                    Some(k) => i64::from(k as i32),
                    None => self.eval_scalar(line, b)? as i64,
                };
                let delta = if matches!(op, BinOp::Sub) {
                    delta.wrapping_neg()
                } else {
                    delta
                };
                let base = match p.base {
                    Base::Pkt(off) => Base::Pkt(off.wrapping_add(delta)),
                    Base::Map { map, slot, off } => Base::Map {
                        map,
                        slot,
                        off: off.wrapping_add(delta),
                    },
                    Base::Null => Base::Null,
                };
                Ok(PtrVal { base, kind: p.kind })
            }
            ExprKind::Call(name, args) => match self.eval_call(line, name, args)? {
                Cell::Ptr(p) => Ok(p),
                _ => Err(err(line, format!("`{name}` does not return a pointer"))),
            },
            ExprKind::AddrOf(_) => Err(err(
                line,
                "`&` expressions may only appear as helper-call arguments",
            )),
            _ => Err(err(line, "expected a pointer-valued expression")),
        }
    }

    fn eval_cond(&mut self, line: usize, e: &Expr) -> Result<bool, LangError> {
        let line = if e.line != 0 { e.line } else { line };
        match &e.kind {
            ExprKind::Binary(BinOp::LAnd, a, b) => {
                if !self.eval_cond(line, a)? {
                    Ok(false)
                } else {
                    self.eval_cond(line, b)
                }
            }
            ExprKind::Binary(BinOp::LOr, a, b) => {
                if self.eval_cond(line, a)? {
                    Ok(true)
                } else {
                    self.eval_cond(line, b)
                }
            }
            ExprKind::Unary(UnOp::Not, inner) => Ok(!self.eval_cond(line, inner)?),
            ExprKind::Binary(op, a, b) if is_cmp(*op) => self.eval_cmp(line, *op, a, b),
            _ => {
                // Truthiness: pointer locals test against NULL (a live
                // pointer is never null, exactly like the VM's compare),
                // scalars against zero.
                if let ExprKind::Ident(name) = &e.kind {
                    if let Some(Cell::Ptr(p)) = self.lookup(name) {
                        return Ok(!p.is_null());
                    }
                }
                Ok(self.eval_scalar(line, e)? != 0)
            }
        }
    }

    fn eval_cmp(&mut self, line: usize, op: BinOp, a: &Expr, b: &Expr) -> Result<bool, LangError> {
        // `(pkt_end - pkt_start) < K` strength reduction:
        // `pkt_start + K > pkt_end`, with the comparison flipped.
        if let ExprKind::Binary(BinOp::Sub, hi, lo) = &a.kind {
            if self.is_pkt_end(hi) && self.is_pkt_ptr(lo) {
                if let Some(k) = self.const_fold(b) {
                    let flipped = match op {
                        BinOp::Lt => BinOp::Gt,
                        BinOp::Le => BinOp::Ge,
                        BinOp::Gt => BinOp::Lt,
                        BinOp::Ge => BinOp::Le,
                        other => other,
                    };
                    let lo_p = self.eval_ptr(line, lo)?;
                    let hi_p = self.eval_ptr(line, hi)?;
                    let (Base::Pkt(lo_off), Base::Pkt(hi_off)) = (&lo_p.base, &hi_p.base) else {
                        return Err(err(line, "pointer comparison across regions"));
                    };
                    // The +K goes through a 32-bit immediate add.
                    let lhs = (*lo_off as u64).wrapping_add(i64::from(k as i32) as u64);
                    return Ok(cmp_u64(flipped, lhs, *hi_off as u64));
                }
            }
        }

        let a_ptr = self.expr_is_ptr(a);
        let b_ptr = self.expr_is_ptr(b);
        if a_ptr && b_ptr {
            let pa = self.eval_ptr(line, a)?;
            let pb = self.eval_ptr(line, b)?;
            return self.cmp_ptrs(line, op, &pa, &pb);
        }
        if a_ptr {
            // Pointer vs constant: only NULL comparisons make sense.
            let k = self
                .const_fold(b)
                .ok_or_else(|| err(line, "pointers can only be compared to NULL or pointers"))?;
            let pa = self.eval_ptr(line, a)?;
            // The immediate operand is sign-extended from 32 bits.
            let kv = i64::from(k as i32) as u64;
            if pa.is_null() {
                // A failed lookup is the scalar 0 at runtime.
                return Ok(cmp_u64(op, 0, kv));
            }
            // A live pointer is never NULL; any other comparison against a
            // scalar traps in the VM.
            return match op {
                BinOp::Eq if kv == 0 => Ok(false),
                BinOp::Ne if kv == 0 => Ok(true),
                _ => Err(err(line, "pointer compared against a non-null scalar")),
            };
        }
        if b_ptr {
            return Err(err(
                line,
                "pointers can only appear on the left of a comparison",
            ));
        }
        let va = self.eval_scalar(line, a)?;
        let vb = self.eval_scalar(line, b)?;
        Ok(cmp_u64(op, va, vb))
    }

    /// Mirrors the VM's pointer-vs-pointer compare: same region compares
    /// by offset, a null operand is the scalar 0 (which only the
    /// left-hand `Ptr vs 0` special case tolerates).
    fn cmp_ptrs(
        &self,
        line: usize,
        op: BinOp,
        pa: &PtrVal,
        pb: &PtrVal,
    ) -> Result<bool, LangError> {
        match (&pa.base, &pb.base) {
            (Base::Null, Base::Null) => Ok(cmp_u64(op, 0, 0)),
            (_, Base::Null) => match op {
                BinOp::Eq => Ok(false),
                BinOp::Ne => Ok(true),
                _ => Err(err(line, "pointer compared against a non-pointer")),
            },
            (Base::Null, _) => Err(err(line, "pointer compared against a non-pointer")),
            (Base::Pkt(oa), Base::Pkt(ob)) => Ok(cmp_u64(op, *oa as u64, *ob as u64)),
            (
                Base::Map {
                    map: ma,
                    slot: sa,
                    off: oa,
                },
                Base::Map {
                    map: mb,
                    slot: sb,
                    off: ob,
                },
            ) if ma.id() == mb.id() && sa == sb => Ok(cmp_u64(op, *oa as u64, *ob as u64)),
            _ => Err(err(line, "pointer comparison across regions")),
        }
    }

    fn is_pkt_ptr(&self, e: &Expr) -> bool {
        match &e.kind {
            ExprKind::Ident(name) => matches!(
                self.lookup(name),
                Some(Cell::Ptr(PtrVal {
                    kind: PKind::Pkt | PKind::Struct(_),
                    ..
                }))
            ),
            ExprKind::Cast(_, inner) => self.is_pkt_ptr(inner),
            ExprKind::Binary(BinOp::Add | BinOp::Sub, a, _) => self.is_pkt_ptr(a),
            _ => false,
        }
    }

    fn is_pkt_end(&self, e: &Expr) -> bool {
        match &e.kind {
            ExprKind::Ident(name) => matches!(
                self.lookup(name),
                Some(Cell::Ptr(PtrVal {
                    kind: PKind::PktEnd,
                    ..
                }))
            ),
            _ => false,
        }
    }

    fn expr_is_ptr(&self, e: &Expr) -> bool {
        match &e.kind {
            ExprKind::Ident(name) => matches!(self.lookup(name), Some(Cell::Ptr(_))),
            ExprKind::Cast(ty, inner) => ty.is_ptr() && self.expr_is_ptr(inner),
            ExprKind::Binary(BinOp::Add | BinOp::Sub, a, b) => {
                self.expr_is_ptr(a) && self.const_fold(b).is_some()
                    || self.expr_is_ptr(a) && !self.expr_is_ptr(b)
            }
            _ => false,
        }
    }

    fn map_ref_arg(&self, line: usize, e: &Expr) -> Result<MapRef, LangError> {
        let name = match &e.kind {
            ExprKind::AddrOf(n) | ExprKind::Ident(n) => n,
            _ => return Err(err(line, "expected `&map_name`")),
        };
        match self.lookup(name) {
            Some(Cell::Map(m)) => Ok(m.clone()),
            _ => Err(err(line, format!("`{name}` is not a map"))),
        }
    }

    /// Evaluates a key argument to the 4-byte key the VM would read.
    fn key_arg(&mut self, line: usize, e: &Expr) -> Result<u32, LangError> {
        if let ExprKind::AddrOf(name) = &e.kind {
            return match self.lookup(name).cloned() {
                // `&local`: keys are the low 4 bytes of the 8-byte slot.
                Some(Cell::Scalar(v)) => Ok(v as u32),
                Some(Cell::Const(k)) => Ok(k as u32),
                _ => Err(err(line, format!("`&{name}` is not addressable as a key"))),
            };
        }
        Ok(self.eval_scalar(line, e)? as u32)
    }

    /// Evaluates a value argument to the full 64-bit value.
    fn value_arg(&mut self, line: usize, e: &Expr) -> Result<u64, LangError> {
        if let ExprKind::AddrOf(name) = &e.kind {
            if let Some(Cell::Scalar(v)) = self.lookup(name).cloned() {
                return Ok(v);
            }
        }
        self.eval_scalar(line, e)
    }

    fn expect_args(
        &self,
        line: usize,
        name: &str,
        args: &[Expr],
        n: usize,
    ) -> Result<(), LangError> {
        if args.len() != n {
            return Err(err(
                line,
                format!("`{name}` takes {n} argument(s), got {}", args.len()),
            ));
        }
        Ok(())
    }

    fn eval_call(&mut self, line: usize, name: &str, args: &[Expr]) -> Result<Cell, LangError> {
        match name {
            "get_random" => {
                self.expect_args(line, name, args, 0)?;
                Ok(Cell::Scalar(u64::from(self.env.next_prandom())))
            }
            "ktime_get_ns" => {
                self.expect_args(line, name, args, 0)?;
                Ok(Cell::Scalar(self.env.now_ns))
            }
            "cpu_id" => {
                self.expect_args(line, name, args, 0)?;
                Ok(Cell::Scalar(u64::from(self.env.cpu_id)))
            }
            "syr_map_lookup_elem" | "map_lookup" => {
                self.expect_args(line, name, args, 2)?;
                let map = self.map_ref_arg(line, &args[0])?;
                let key = self.key_arg(line, &args[1])?;
                match map.slot_for_key(&key.to_le_bytes()) {
                    Ok(Some(slot)) => Ok(Cell::Ptr(PtrVal {
                        base: Base::Map { map, slot, off: 0 },
                        kind: PKind::MapVal(8),
                    })),
                    Ok(None) => Ok(Cell::Ptr(PtrVal {
                        base: Base::Null,
                        kind: PKind::MapVal(8),
                    })),
                    Err(e) => Err(err(line, format!("map lookup: {e:?}"))),
                }
            }
            "syr_map_update_elem" | "map_update" => {
                self.expect_args(line, name, args, 3)?;
                let map = self.map_ref_arg(line, &args[0])?;
                // Codegen evaluates the value first (it may contain
                // calls), then the key.
                let value = self.value_arg(line, &args[2])?;
                let key = self.key_arg(line, &args[1])?;
                let ret =
                    match map.update(&key.to_le_bytes(), &value.to_le_bytes(), UpdateFlag::Any) {
                        Ok(()) => 0u64,
                        Err(_) => u64::MAX,
                    };
                Ok(Cell::Scalar(ret))
            }
            "syr_map_delete_elem" | "map_delete" => {
                self.expect_args(line, name, args, 2)?;
                let map = self.map_ref_arg(line, &args[0])?;
                let key = self.key_arg(line, &args[1])?;
                let ret = match map.delete(&key.to_le_bytes()) {
                    Ok(()) => 0u64,
                    Err(_) => u64::MAX,
                };
                Ok(Cell::Scalar(ret))
            }
            "__sync_fetch_and_add" => {
                self.expect_args(line, name, args, 2)?;
                let p = self.eval_ptr(line, &args[0])?;
                if !matches!(p.kind, PKind::MapVal(_)) {
                    return Err(err(
                        line,
                        "__sync_fetch_and_add requires a map value pointer",
                    ));
                }
                let v = self.eval_scalar(line, &args[1])?;
                let Base::Map { map, slot, off } = &p.base else {
                    return Err(err(line, "atomic add on a null or non-map pointer"));
                };
                let off =
                    u32::try_from(*off).map_err(|_| err(line, "negative map value offset"))?;
                let old = map
                    .fetch_add_value(*slot, off, 8, v)
                    .map_err(|e| err(line, format!("atomic add: {e:?}")))?;
                Ok(Cell::Scalar(old))
            }
            "bpf_redirect_map" | "redirect_map" => {
                self.expect_args(line, name, args, 2)?;
                let map = self.map_ref_arg(line, &args[0])?;
                let index = self.eval_scalar(line, &args[1])? as u32;
                self.redirect = Some((map.id(), index));
                // XDP_REDIRECT == 4; execution continues with that return
                // value, exactly like the VM.
                Ok(Cell::Scalar(4))
            }
            other => Err(err(line, format!("unknown function `{other}`"))),
        }
    }
}

fn is_cmp(op: BinOp) -> bool {
    matches!(
        op,
        BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge
    )
}

fn cmp_u64(op: BinOp, a: u64, b: u64) -> bool {
    match op {
        BinOp::Eq => a == b,
        BinOp::Ne => a != b,
        BinOp::Lt => a < b,
        BinOp::Le => a <= b,
        BinOp::Gt => a > b,
        BinOp::Ge => a >= b,
        _ => unreachable!("not a comparison"),
    }
}

/// Pointee width of a deref target, derived from casts (codegen's rule:
/// only a syntactic cast on the dereferenced expression carries a width).
fn deref_width(e: &Expr) -> Option<u32> {
    match &e.kind {
        ExprKind::Cast(Type::Ptr(inner), _) => Some(inner.size()),
        ExprKind::Cast(Type::VoidPtr, _) => Some(1),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{compile, parse_source};
    use syrup_ebpf::verify;
    use syrup_ebpf::vm::{PacketCtx, Vm};

    /// Runs `source` both ways — codegen + VM and the AST interpreter,
    /// each against its own freshly prepared registry — over `packets`,
    /// and asserts identical verdicts (and identical map state evolution,
    /// observed through the verdicts of later packets).
    fn assert_differential(source: &str, opts: &CompileOptions, packets: &[Vec<u8>]) {
        // Side A: compile, verify, run on the VM.
        let maps_a = MapRegistry::new();
        let compiled = compile(source, opts, &maps_a).expect("compile");
        verify(&compiled.program, &maps_a)
            .unwrap_or_else(|e| panic!("verify: {e}\n{}", compiled.program.disasm()));
        let mut vm = Vm::new(maps_a);
        let slot = vm.load_unverified(compiled.program.clone());
        let mut env_a = RunEnv::default();

        // Side B: parse, prepare, interpret.
        let maps_b = MapRegistry::new();
        let unit = parse_source(source).expect("parse");
        let policy = prepare(&unit, opts, &maps_b).expect("prepare");
        let mut env_b = RunEnv::default();

        for (i, pkt) in packets.iter().enumerate() {
            let mut bytes_a = pkt.clone();
            let mut ctx = PacketCtx::new(&mut bytes_a);
            let out_a = vm
                .run(slot, &mut ctx, &mut env_a)
                .unwrap_or_else(|e| panic!("vm trap on packet {i}: {e}"));
            let mut bytes_b = pkt.clone();
            let out_b = policy
                .run(&mut bytes_b, &mut env_b)
                .unwrap_or_else(|e| panic!("interp error on packet {i}: {e}"));
            assert_eq!(
                out_a.ret,
                out_b.ret,
                "verdict diverged on packet {i}: vm={} interp={}\n{}",
                out_a.ret,
                out_b.ret,
                compiled.program.disasm()
            );
            assert_eq!(bytes_a, bytes_b, "packet bytes diverged on packet {i}");
        }
    }

    fn packets_with_type(n: usize, mk: impl Fn(usize) -> Vec<u8>) -> Vec<Vec<u8>> {
        (0..n).map(mk).collect()
    }

    #[test]
    fn ranked_returns_match_vm() {
        // The (q, rank) encoding is part of the differential contract:
        // both sides must produce the identical full-width u64.
        let src = "\
uint32_t idx = 0;
uint32_t schedule(void *pkt_start, void *pkt_end) {
    if (pkt_end - pkt_start < 8)
        return (PASS, 0);
    uint32_t svc = *(uint32_t *)(pkt_start + 0);
    idx++;
    return (idx % NUM_THREADS, svc);
}
";
        let opts = CompileOptions::new().define("NUM_THREADS", 4);
        let pkts = packets_with_type(10, |i| {
            let mut p = vec![0u8; 16];
            p[0] = (i * 37 % 251) as u8;
            p[1] = (i % 3) as u8;
            p
        });
        assert_differential(src, &opts, &pkts);
    }

    #[test]
    fn round_robin_matches_vm() {
        let src = "\
uint32_t idx = 0;
uint32_t schedule(void *pkt_start, void *pkt_end) {
    idx++;
    return idx % NUM_THREADS;
}
";
        let opts = CompileOptions::new().define("NUM_THREADS", 6);
        let pkts = packets_with_type(12, |_| vec![0u8; 32]);
        assert_differential(src, &opts, &pkts);
    }

    #[test]
    fn sita_matches_vm_including_short_packets() {
        let src = "\
uint32_t idx = 0;
uint32_t schedule(void *pkt_start, void *pkt_end) {
    if (pkt_end - pkt_start < 16)
        return PASS;
    uint64_t type = *(uint64_t *)(pkt_start + 8);
    if (type == SCAN)
        return 0;
    idx++;
    return (idx % (NUM_THREADS - 1)) + 1;
}
";
        let opts = CompileOptions::new()
            .define("NUM_THREADS", 6)
            .define("SCAN", 2);
        let pkts = packets_with_type(20, |i| {
            if i % 5 == 4 {
                vec![0u8; 7] // Too short: must PASS on both sides.
            } else {
                let mut p = vec![0u8; 24];
                let ty: u64 = if i % 3 == 0 { 2 } else { 1 };
                p[8..16].copy_from_slice(&ty.to_le_bytes());
                p
            }
        });
        assert_differential(src, &opts, &pkts);
    }

    #[test]
    fn token_based_matches_vm_with_struct_access_and_atomics() {
        let src = "\
SYRUP_MAP(token_map, ARRAY, 16);
uint32_t idx = 0;
struct app_hdr {
    uint64_t req_type;
    uint32_t user_id;
};
uint32_t schedule(void *pkt_start, void *pkt_end) {
    if (pkt_end - pkt_start < 20)
        return DROP;
    void *data = pkt_start + 8;
    struct app_hdr *hdr = (struct app_hdr *)data;
    uint32_t user_id = hdr->user_id;
    uint64_t *tokens = syr_map_lookup_elem(&token_map, &user_id);
    if (!tokens)
        return DROP;
    if (*tokens == 0)
        return DROP;
    __sync_fetch_and_add(tokens, -1);
    idx++;
    return idx % NUM_THREADS;
}
";
        let opts = CompileOptions::new().define("NUM_THREADS", 4);
        // Seed both token maps identically through each side's own
        // registry: user 1 gets 3 tokens, user 2 gets none.
        let seed = |maps: &MapRegistry, id: MapId| {
            let m = maps.get(id).unwrap();
            m.update_u64(1, 3).unwrap();
            m.update_u64(2, 0).unwrap();
        };
        let maps_a = MapRegistry::new();
        let compiled = compile(src, &opts, &maps_a).expect("compile");
        verify(&compiled.program, &maps_a).expect("verify");
        seed(&maps_a, compiled.created_maps["token_map"]);
        let mut vm = Vm::new(maps_a);
        let slot = vm.load_unverified(compiled.program);

        let maps_b = MapRegistry::new();
        let unit = parse_source(src).expect("parse");
        let policy = prepare(&unit, &opts, &maps_b).expect("prepare");
        seed(&maps_b, policy.created_maps["token_map"]);

        let mut env_a = RunEnv::default();
        let mut env_b = RunEnv::default();
        for i in 0..10u64 {
            let mut pkt = vec![0u8; 24];
            let user: u32 = if i % 2 == 0 { 1 } else { 2 };
            pkt[16..20].copy_from_slice(&user.to_le_bytes());
            let mut a = pkt.clone();
            let mut ctx = PacketCtx::new(&mut a);
            let ra = vm.run(slot, &mut ctx, &mut env_a).expect("run").ret;
            let rb = policy
                .run(&mut pkt.clone(), &mut env_b)
                .expect("interp")
                .ret;
            assert_eq!(ra, rb, "diverged on request {i}");
        }
    }

    #[test]
    fn scan_avoid_consumes_identical_random_stream() {
        let src = "\
SYRUP_MAP(scan_map, ARRAY, 64);
uint32_t schedule(void *pkt_start, void *pkt_end) {
    uint32_t cur_idx = 0;
    for (int i = 0; i < NUM_THREADS; i++) {
        cur_idx = get_random() % NUM_THREADS;
        uint64_t *scan = syr_map_lookup_elem(&scan_map, &cur_idx);
        if (!scan)
            return PASS;
        if (*scan == GET)
            break;
    }
    return cur_idx;
}
";
        let opts = CompileOptions::new()
            .define("NUM_THREADS", 6)
            .define("GET", 1);
        let pkts = packets_with_type(16, |_| vec![0u8; 16]);
        assert_differential(src, &opts, &pkts);
    }

    #[test]
    fn packet_writes_match_vm() {
        // Codegen stores exactly one byte through `void *` pointers; the
        // interpreter must reproduce that quirk, not idealized C.
        let src = "\
uint32_t schedule(void *pkt_start, void *pkt_end) {
    if (pkt_end - pkt_start < 4)
        return PASS;
    uint8_t *p = (uint8_t *)(pkt_start + 1);
    *p = 258;
    return *(uint32_t *)(pkt_start + 0);
}
";
        let opts = CompileOptions::new();
        let pkts = packets_with_type(4, |i| vec![i as u8; 8]);
        assert_differential(src, &opts, &pkts);
    }

    #[test]
    fn packet_store_address_survives_rhs_packet_load() {
        // Regression (found by syrup-fuzz's differential oracle): codegen
        // materialized the store address into the pointer scratch register
        // `r5` *before* evaluating the right-hand side, so a packet load
        // inside the RHS re-used `r5` and the store went to the load's
        // offset instead of its own.
        let src = "\
uint32_t schedule(void *pkt_start, void *pkt_end) {
    if (pkt_end - pkt_start < 10)
        return PASS;
    *(uint8_t *)(pkt_start + 7) = ((*(uint8_t *)(pkt_start + 5)) | 64);
    return 0;
}
";
        let opts = CompileOptions::new();

        // Direct VM check: byte 7 must change, byte 5 must not.
        let maps = MapRegistry::new();
        let compiled = compile(src, &opts, &maps).expect("compile");
        verify(&compiled.program, &maps).expect("verify");
        let mut vm = Vm::new(maps);
        let slot = vm.load_unverified(compiled.program);
        let mut bytes: Vec<u8> = (0..12u8).collect();
        let mut ctx = PacketCtx::new(&mut bytes);
        let mut env = RunEnv::default();
        vm.run(slot, &mut ctx, &mut env).expect("run");
        assert_eq!(bytes[5], 5, "load offset must be untouched");
        assert_eq!(bytes[7], 5 | 64, "store must land on offset 7");

        // And the interpreter must agree byte-for-byte.
        let pkts = packets_with_type(3, |i| (0..12).map(|b| (b + i) as u8).collect());
        assert_differential(src, &opts, &pkts);
    }

    #[test]
    fn nested_comparison_operands_survive_materialization() {
        // Regression (found by syrup-fuzz's differential oracle): codegen
        // held a comparison's left operand in the fixed scratch register
        // `r3` while evaluating the right operand; if that operand was
        // itself a comparison, its boolean materialization reused `r3`
        // and overwrote the in-flight value. Both operands being
        // comparisons exercises the spill on each side.
        let src = "\
uint64_t g = 4;
uint32_t schedule(void *pkt_start, void *pkt_end) {
    uint64_t v = 3;
    uint64_t both = ((g < v) != (0 >= v));
    uint64_t sum = (1 + (v > 2));
    return ((both << 1) | sum);
}
";
        let opts = CompileOptions::new();

        // g=4, v=3: (g < v) = 0, (0 >= v) = 0, so both = (0 != 0) = 0.
        // sum = 1 + (3 > 2) = 2. Return (0 << 1) | 2 = 2. The broken
        // codegen computed both = 1 (clobbered lhs) and returned 3.
        let maps = MapRegistry::new();
        let compiled = compile(src, &opts, &maps).expect("compile");
        verify(&compiled.program, &maps).expect("verify");
        let mut vm = Vm::new(maps);
        let slot = vm.load_unverified(compiled.program);
        let mut bytes = vec![0u8; 8];
        let mut ctx = PacketCtx::new(&mut bytes);
        let mut env = RunEnv::default();
        let out = vm.run(slot, &mut ctx, &mut env).expect("run");
        assert_eq!(out.ret, 2, "nested comparison clobbered an operand");

        // Interpreter agreement, including the global mutating across
        // packets via a second source that feeds the comparisons.
        let pkts = packets_with_type(4, |_| vec![0u8; 8]);
        assert_differential(src, &opts, &pkts);
        let src2 = "\
uint64_t g = 0;
uint32_t schedule(void *pkt_start, void *pkt_end) {
    g = (g + 3);
    return (((1073741824 & g) < 2) != ((61 >> 29) >= 2));
}
";
        assert_differential(src2, &opts, &pkts);
    }

    #[test]
    fn implicit_return_and_globals_match_vm() {
        let src = "\
uint64_t counter = 7;
uint32_t schedule(void *pkt_start, void *pkt_end) {
    counter = counter + 3;
    if (counter > 100) {
        return 1;
    }
}
";
        let opts = CompileOptions::new();
        let pkts = packets_with_type(40, |_| vec![0u8; 8]);
        assert_differential(src, &opts, &pkts);
    }
}
