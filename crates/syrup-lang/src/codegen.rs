//! Code generation: AST → `syrup-ebpf` bytecode.
//!
//! The generator is deliberately verifier-aware; its conventions exist so
//! that the emitted code passes the static verifier's provenance rules:
//!
//! * `pkt_start` and `pkt_end` live in the callee-saved `r6`/`r7` for the
//!   whole program (helpers clobber `r1`–`r5`, and pointers may not be
//!   spilled to the stack).
//! * Pointer-typed locals (map-value pointers from `syr_map_lookup_elem`,
//!   struct pointers into the packet) are allocated to `r8`/`r9`; a policy
//!   may have at most two live pointer locals, which covers every policy
//!   in the paper.
//! * Scalar locals and expression temporaries live in stack slots.
//! * `for` loops are unrolled at compile time (their bounds must fold to
//!   constants), exactly as Clang unrolls loops for the eBPF target — the
//!   paper's Table 2 attributes SCAN-Avoid's instruction count to this.
//! * Globals are compiled to slots of an implicit array map (eBPF's `.bss`
//!   treatment); reads insert the null-check-or-`PASS` guard the paper
//!   says it omits from listings "for brevity".
//! * `pkt_end - pkt_start < K` comparisons are strength-reduced to the
//!   `pkt_start + K > pkt_end` form whose branch the verifier uses as a
//!   packet bounds proof.

use std::collections::HashMap;

use syrup_ebpf::asm::Asm;
use syrup_ebpf::insn::{AluOp, CmpOp, MemSize, Operand, Reg};
use syrup_ebpf::maps::{MapDef, MapId, MapRegistry};
use syrup_ebpf::{ret, HelperId};

use crate::ast::{BinOp, Expr, ExprKind, LValue, MapDeclKind, Stmt, StructDef, Type, UnOp, Unit};
use crate::{CompileOptions, CompiledPolicy, LangError};

/// Scratch registers available for expression evaluation.
const SCRATCH: [Reg; 5] = [Reg::R0, Reg::R1, Reg::R2, Reg::R3, Reg::R4];
/// Registers for pointer-typed locals.
const PTR_REGS: [Reg; 2] = [Reg::R8, Reg::R9];

/// What kind of value a variable or expression denotes.
#[derive(Debug, Clone, PartialEq, Eq)]
enum VKind {
    /// A scalar of the given byte width (1/2/4/8).
    Scalar(u32),
    /// The packet start pointer (or derived packet pointers).
    PktPtr,
    /// The packet end pointer.
    PktEnd,
    /// A possibly-null `uint64_t*`-style map value pointer with pointee
    /// width in bytes.
    MapVal(u32),
    /// A struct pointer into the packet.
    Struct(String),
}

impl VKind {
    fn is_ptr(&self) -> bool {
        !matches!(self, VKind::Scalar(_))
    }
}

#[derive(Debug, Clone)]
#[allow(dead_code)] // The stack-slot width is kept for future sub-word loads.
enum Binding {
    /// Parameter or pointer local pinned to a register.
    Reg(Reg, VKind),
    /// Scalar local in a stack slot (offset from `r10`, negative).
    Stack(i16, VKind),
    /// A packet-derived pointer local equal to `pkt_start + off`; costs no
    /// register because it is rematerialized at each use, the way a real
    /// compiler treats cheap recomputable addresses.
    PktDerived(i64, VKind),
    /// A global: index into the globals map.
    Global(u32, VKind),
    /// A map declared in the file or bound externally.
    Map(MapId),
    /// A compile-time constant.
    Const(i64),
}

struct Cg<'a> {
    asm: Asm,
    #[allow(dead_code)] // Retained for future option-sensitive lowering.
    opts: &'a CompileOptions,
    structs: HashMap<String, StructDef>,
    bindings: HashMap<String, Binding>,
    globals_map: Option<MapId>,
    next_label: u32,
    /// Next free stack byte (grows downward from 0 toward -512).
    frame: i16,
    /// Reserved slot for map keys built on the fly.
    key_slot: i16,
    /// Reserved slot for values passed by address to `map_update`.
    val_slot: i16,
    /// Reserved slot spilling the rank across the value evaluation in
    /// ranked returns (`return (q, rank);`).
    rank_slot: i16,
    /// Stack of (break_label, continue_label) for unrolled loops.
    loops: Vec<(String, String)>,
    ptr_regs_used: usize,
}

/// Generates a program for `unit`.
pub fn generate(
    unit: &Unit,
    opts: &CompileOptions,
    maps: &MapRegistry,
) -> Result<CompiledPolicy, LangError> {
    let func = unit
        .function
        .as_ref()
        .ok_or_else(|| LangError::new(1, "policy must define a `schedule` function"))?;
    if func.name != "schedule" {
        return Err(LangError::new(
            1,
            "the entry function must be named `schedule`",
        ));
    }
    if !(func.params.is_empty() || func.params.len() == 2) {
        return Err(LangError::new(
            1,
            "schedule must take (void *pkt_start, void *pkt_end) or no parameters",
        ));
    }

    let mut cg = Cg {
        asm: Asm::new(),
        opts,
        structs: unit
            .structs
            .iter()
            .map(|s| (s.name.clone(), s.clone()))
            .collect(),
        bindings: HashMap::new(),
        globals_map: None,
        next_label: 0,
        frame: 0,
        key_slot: 0,
        val_slot: 0,
        rank_slot: 0,
        loops: Vec::new(),
        ptr_regs_used: 0,
    };

    // Reserved temp slots.
    cg.key_slot = cg.alloc_slot();
    cg.val_slot = cg.alloc_slot();
    cg.rank_slot = cg.alloc_slot();

    // Compile-time constants: PASS/DROP/NULL plus experiment defines.
    cg.bindings
        .insert("PASS".into(), Binding::Const(ret::PASS as i64));
    cg.bindings
        .insert("DROP".into(), Binding::Const(ret::DROP as i64));
    cg.bindings.insert("NULL".into(), Binding::Const(0));
    for (name, value) in &opts.defines {
        cg.bindings.insert(name.clone(), Binding::Const(*value));
    }

    // Declared maps.
    let mut created_maps = HashMap::new();
    for decl in &unit.maps {
        let def = match decl.kind {
            MapDeclKind::Array => MapDef::u64_array(decl.max_entries as u32),
            MapDeclKind::Hash => MapDef::u64_hash(decl.max_entries as u32),
        };
        let id = maps.create(def);
        created_maps.insert(decl.name.clone(), id);
        cg.bindings.insert(decl.name.clone(), Binding::Map(id));
    }
    for (name, id) in &opts.external_maps {
        if maps.get(*id).is_none() {
            return Err(LangError::new(
                1,
                format!("external map `{name}` does not exist"),
            ));
        }
        cg.bindings.insert(name.clone(), Binding::Map(*id));
    }

    // Globals: one u64 slot each in an implicit array map, initialized at
    // deploy (compile) time.
    if !unit.globals.is_empty() {
        let gmap = maps.create(MapDef::u64_array(unit.globals.len() as u32));
        let gref = maps.get(gmap).expect("map just created");
        for (i, g) in unit.globals.iter().enumerate() {
            gref.update_u64(i as u32, g.init as u64)
                .expect("in-range global slot");
            let width = g.ty.size();
            cg.bindings.insert(
                g.name.clone(),
                Binding::Global(i as u32, VKind::Scalar(width)),
            );
        }
        cg.globals_map = Some(gmap);
    }

    // Parameters.
    if func.params.len() == 2 {
        cg.bindings
            .insert(func.params[0].clone(), Binding::Reg(Reg::R6, VKind::PktPtr));
        cg.bindings
            .insert(func.params[1].clone(), Binding::Reg(Reg::R7, VKind::PktEnd));
        // Prologue: r6 = ctx->data, r7 = ctx->data_end.
        cg.asm = std::mem::take(&mut cg.asm)
            .ldx_dw(Reg::R7, Reg::R1, 8)
            .ldx_dw(Reg::R6, Reg::R1, 0);
    }

    cg.body(&func.body)?;

    // Implicit `return PASS` if control reaches the end.
    cg.asm = std::mem::take(&mut cg.asm)
        .mov64_imm(Reg::R0, ret::PASS as i32)
        .exit();

    let program = cg
        .asm
        .build("schedule")
        .map_err(|e| LangError::new(1, format!("assembly error: {e}")))?;
    Ok(CompiledPolicy {
        program,
        created_maps,
        globals_map: cg.globals_map,
        source_loc: 0,
    })
}

impl Cg<'_> {
    fn alloc_slot(&mut self) -> i16 {
        self.frame -= 8;
        self.frame
    }

    fn fresh_label(&mut self, tag: &str) -> String {
        self.next_label += 1;
        format!("__{tag}_{}", self.next_label)
    }

    fn with_asm(&mut self, f: impl FnOnce(Asm) -> Asm) {
        let asm = std::mem::take(&mut self.asm);
        self.asm = f(asm);
    }

    /// Emits a block with C scoping: locals declared inside (and their
    /// stack slots and pointer registers) are released at block end, which
    /// is what lets unrolled loop bodies re-declare their locals.
    fn body(&mut self, stmts: &[Stmt]) -> Result<(), LangError> {
        let ptr_save = self.ptr_regs_used;
        let frame_save = self.frame;
        let mut undo: Vec<(String, Option<Binding>)> = Vec::new();
        for stmt in stmts {
            if let Stmt::Decl { name, .. } = stmt {
                undo.push((name.clone(), self.bindings.get(name).cloned()));
            }
            self.stmt(stmt)?;
        }
        for (name, old) in undo.into_iter().rev() {
            match old {
                Some(b) => {
                    self.bindings.insert(name, b);
                }
                None => {
                    self.bindings.remove(&name);
                }
            }
        }
        self.ptr_regs_used = ptr_save;
        self.frame = frame_save;
        Ok(())
    }

    fn stmt(&mut self, stmt: &Stmt) -> Result<(), LangError> {
        match stmt {
            Stmt::Decl {
                line,
                ty,
                name,
                init,
            } => self.decl(*line, ty, name, init.as_ref()),
            Stmt::Assign {
                line,
                target,
                value,
            } => self.assign(*line, target, value),
            Stmt::If {
                line,
                cond,
                then_body,
                else_body,
            } => {
                let else_l = self.fresh_label("else");
                let end_l = self.fresh_label("endif");
                self.branch_if_false(*line, cond, &else_l)?;
                self.body(then_body)?;
                if else_body.is_empty() {
                    self.with_asm(|a| a.label(&else_l));
                } else {
                    self.with_asm(|a| a.jmp(&end_l).label(&else_l));
                    self.body(else_body)?;
                    self.with_asm(|a| a.label(&end_l));
                }
                Ok(())
            }
            Stmt::For {
                line,
                var,
                start,
                end,
                body,
            } => {
                let start_c = self.const_fold(start).ok_or_else(|| {
                    LangError::new(*line, "for-loop start must be a compile-time constant")
                })?;
                let end_c = self.const_fold(end).ok_or_else(|| {
                    LangError::new(*line, "for-loop bound must be a compile-time constant")
                })?;
                if end_c - start_c > 64 {
                    return Err(LangError::new(
                        *line,
                        "for-loop unrolls to more than 64 iterations",
                    ));
                }
                let break_l = self.fresh_label("for_end");
                for i in start_c..end_c {
                    let cont_l = self.fresh_label("for_next");
                    self.loops.push((break_l.clone(), cont_l.clone()));
                    let saved = self.bindings.insert(var.clone(), Binding::Const(i));
                    self.body(body)?;
                    match saved {
                        Some(b) => {
                            self.bindings.insert(var.clone(), b);
                        }
                        None => {
                            self.bindings.remove(var);
                        }
                    }
                    self.loops.pop();
                    self.with_asm(|a| a.label(&cont_l));
                }
                self.with_asm(|a| a.label(&break_l));
                Ok(())
            }
            Stmt::Break { line } => {
                let (break_l, _) = self
                    .loops
                    .last()
                    .cloned()
                    .ok_or_else(|| LangError::new(*line, "break outside a loop"))?;
                self.with_asm(|a| a.jmp(&break_l));
                Ok(())
            }
            Stmt::Continue { line } => {
                let (_, cont_l) = self
                    .loops
                    .last()
                    .cloned()
                    .ok_or_else(|| LangError::new(*line, "continue outside a loop"))?;
                self.with_asm(|a| a.jmp(&cont_l));
                Ok(())
            }
            Stmt::Return { line, value, rank } => {
                match rank {
                    None => {
                        self.scalar_expr(*line, value, Reg::R0, 1)?;
                        // Truncate to the uint32_t return type.
                        self.with_asm(|a| {
                            a.alu32(AluOp::Mov, Reg::R0, Operand::Reg(Reg::R0)).exit()
                        });
                    }
                    Some(rank) => {
                        // `return (q, rank);` encodes (rank << 32) | q.
                        // Both halves are truncated to uint32_t first; the
                        // rank is spilled across the value evaluation
                        // (helpers clobber R1-R5, the stack survives).
                        let rank_slot = self.rank_slot;
                        self.scalar_expr(*line, rank, Reg::R0, 1)?;
                        self.with_asm(|a| {
                            a.alu32(AluOp::Mov, Reg::R0, Operand::Reg(Reg::R0)).stx_dw(
                                Reg::R10,
                                rank_slot,
                                Reg::R0,
                            )
                        });
                        self.scalar_expr(*line, value, Reg::R0, 1)?;
                        self.with_asm(|a| {
                            a.alu32(AluOp::Mov, Reg::R0, Operand::Reg(Reg::R0))
                                .ldx_dw(Reg::R1, Reg::R10, rank_slot)
                                .lsh64_imm(Reg::R1, 32)
                                .alu64(AluOp::Or, Reg::R0, Operand::Reg(Reg::R1))
                                .exit()
                        });
                    }
                }
                Ok(())
            }
            Stmt::ExprStmt { line, expr } => {
                // Effects only: calls and atomics.
                match &expr.kind {
                    ExprKind::Call(..) => {
                        self.scalar_or_call(*line, expr, Reg::R0)?;
                        Ok(())
                    }
                    _ => {
                        self.scalar_expr(*line, expr, Reg::R0, 1)?;
                        Ok(())
                    }
                }
            }
        }
    }

    fn decl(
        &mut self,
        line: usize,
        ty: &Type,
        name: &str,
        init: Option<&Expr>,
    ) -> Result<(), LangError> {
        if self.bindings.contains_key(name) {
            return Err(LangError::new(line, format!("`{name}` is already defined")));
        }
        if ty.is_ptr() {
            let init = init.ok_or_else(|| {
                LangError::new(line, "pointer locals must be initialized at declaration")
            })?;
            // Packet-derived pointers (`pkt_start + const`) cost no
            // register: remember the offset and rematerialize at each use.
            if let Some(off) = self.fold_pkt_offset(init) {
                let declared = self.vkind_of_type(line, ty)?;
                let kind = match declared {
                    VKind::Struct(s) => VKind::Struct(s),
                    _ => VKind::PktPtr,
                };
                self.bindings
                    .insert(name.to_string(), Binding::PktDerived(off, kind));
                return Ok(());
            }
            if self.ptr_regs_used >= PTR_REGS.len() {
                return Err(LangError::new(
                    line,
                    "too many pointer locals (at most two are supported)",
                ));
            }
            let reg = PTR_REGS[self.ptr_regs_used];
            self.ptr_regs_used += 1;
            let kind = self.ptr_expr(line, init, Reg::R0)?;
            let declared = self.vkind_of_type(line, ty)?;
            // The declared pointee width wins for plain scalar pointers.
            let kind = match (&declared, kind) {
                (VKind::MapVal(w), VKind::MapVal(_)) => VKind::MapVal(*w),
                (VKind::Struct(s), VKind::PktPtr) => VKind::Struct(s.clone()),
                (_, k) => k,
            };
            self.with_asm(|a| a.mov64_reg(reg, Reg::R0));
            self.bindings
                .insert(name.to_string(), Binding::Reg(reg, kind));
            Ok(())
        } else {
            let slot = self.alloc_slot();
            if -(i64::from(slot.unsigned_abs())) < -(512i64) {
                return Err(LangError::new(line, "stack frame exceeds 512 bytes"));
            }
            let width = ty.size();
            if let Some(init) = init {
                self.scalar_expr(line, init, Reg::R0, 1)?;
                self.with_asm(|a| a.stx_dw(Reg::R10, slot, Reg::R0));
            } else {
                self.with_asm(|a| a.st_dw(Reg::R10, slot, 0));
            }
            self.bindings
                .insert(name.to_string(), Binding::Stack(slot, VKind::Scalar(width)));
            Ok(())
        }
    }

    fn vkind_of_type(&self, line: usize, ty: &Type) -> Result<VKind, LangError> {
        Ok(match ty {
            Type::U8 => VKind::Scalar(1),
            Type::U16 => VKind::Scalar(2),
            Type::U32 => VKind::Scalar(4),
            Type::U64 => VKind::Scalar(8),
            Type::VoidPtr => VKind::PktPtr,
            Type::Ptr(inner) => VKind::MapVal(inner.size()),
            Type::StructPtr(name) => {
                if !self.structs.contains_key(name) {
                    return Err(LangError::new(line, format!("unknown struct `{name}`")));
                }
                VKind::Struct(name.clone())
            }
        })
    }

    /// Folds an expression of the shape `pkt_start (+/- const)*`, possibly
    /// under pointer casts, to its constant packet offset.
    fn fold_pkt_offset(&self, e: &Expr) -> Option<i64> {
        match &e.kind {
            ExprKind::Ident(name) => match self.bindings.get(name) {
                Some(Binding::Reg(reg, VKind::PktPtr)) if *reg == Reg::R6 => Some(0),
                Some(Binding::PktDerived(off, _)) => Some(*off),
                _ => None,
            },
            ExprKind::Cast(ty, inner) if ty.is_ptr() => self.fold_pkt_offset(inner),
            ExprKind::Binary(BinOp::Add, a, b) => {
                Some(self.fold_pkt_offset(a)? + self.const_fold(b)?)
            }
            ExprKind::Binary(BinOp::Sub, a, b) => {
                Some(self.fold_pkt_offset(a)? - self.const_fold(b)?)
            }
            _ => None,
        }
    }

    fn assign(&mut self, line: usize, target: &LValue, value: &Expr) -> Result<(), LangError> {
        match target {
            LValue::Var(name) => match self.bindings.get(name).cloned() {
                Some(Binding::Stack(slot, _)) => {
                    self.scalar_expr(line, value, Reg::R0, 1)?;
                    self.with_asm(|a| a.stx_dw(Reg::R10, slot, Reg::R0));
                    Ok(())
                }
                Some(Binding::Reg(reg, kind)) if kind.is_ptr() => {
                    let new_kind = self.ptr_expr(line, value, Reg::R0)?;
                    let kind = match (&kind, new_kind) {
                        (VKind::MapVal(w), VKind::MapVal(_)) => VKind::MapVal(*w),
                        (VKind::Struct(s), VKind::PktPtr) => VKind::Struct(s.clone()),
                        (_, k) => k,
                    };
                    self.with_asm(|a| a.mov64_reg(reg, Reg::R0));
                    self.bindings.insert(name.clone(), Binding::Reg(reg, kind));
                    Ok(())
                }
                Some(Binding::Reg(..)) => Err(LangError::new(line, "cannot assign to a parameter")),
                Some(Binding::Global(index, _)) => {
                    // Evaluate, park in the value slot across the lookup
                    // call, then store through the checked pointer.
                    self.scalar_expr(line, value, Reg::R0, 1)?;
                    let vslot = self.val_slot;
                    self.with_asm(|a| a.stx_dw(Reg::R10, vslot, Reg::R0));
                    self.global_ptr(index)?;
                    self.with_asm(|a| {
                        a.ldx_dw(Reg::R1, Reg::R10, vslot)
                            .stx_dw(Reg::R0, 0, Reg::R1)
                    });
                    Ok(())
                }
                Some(Binding::PktDerived(..)) => Err(LangError::new(
                    line,
                    format!("`{name}` is a packet-derived pointer and cannot be reassigned"),
                )),
                Some(Binding::Const(_)) => Err(LangError::new(
                    line,
                    format!("cannot assign to constant `{name}`"),
                )),
                Some(Binding::Map(_)) => Err(LangError::new(
                    line,
                    format!("cannot assign to map `{name}`"),
                )),
                None => Err(LangError::new(line, format!("unknown variable `{name}`"))),
            },
            LValue::Deref(ptr_expr) => {
                // Value first, parked in the value slot: materializing the
                // address shares the pointer scratch register (`r5`) with
                // expression evaluation, so computing the address before
                // the value would let a packet or struct load inside
                // `value` clobber it (found by syrup-fuzz's differential
                // oracle).
                self.scalar_expr(line, value, Reg::R0, 1)?;
                let vslot = self.val_slot;
                self.with_asm(|a| a.stx_dw(Reg::R10, vslot, Reg::R0));
                let (reg, kind) = self.resolve_ptr_reg(line, ptr_expr)?;
                let size = match kind {
                    VKind::MapVal(w) => mem_size(w),
                    VKind::PktPtr => MemSize::B,
                    _ => return Err(LangError::new(line, "cannot store through this pointer")),
                };
                self.with_asm(|a| {
                    a.ldx_dw(Reg::R1, Reg::R10, vslot)
                        .raw(syrup_ebpf::Insn::StoreMem {
                            size,
                            base: reg,
                            off: 0,
                            src: Reg::R1,
                        })
                });
                Ok(())
            }
            LValue::Member(base, field) => {
                // Value first for the same scratch-clobber reason as the
                // `Deref` arm above.
                self.scalar_expr(line, value, Reg::R0, 1)?;
                let vslot = self.val_slot;
                self.with_asm(|a| a.stx_dw(Reg::R10, vslot, Reg::R0));
                let (reg, kind) = self.resolve_ptr_reg(line, base)?;
                let VKind::Struct(sname) = kind else {
                    return Err(LangError::new(line, "`->` requires a struct pointer"));
                };
                let sdef = self
                    .structs
                    .get(&sname)
                    .cloned()
                    .ok_or_else(|| LangError::new(line, format!("unknown struct `{sname}`")))?;
                let (off, fty) = sdef.offset_of(field).ok_or_else(|| {
                    LangError::new(line, format!("no field `{field}` in `{sname}`"))
                })?;
                let size = mem_size(fty.size());
                self.with_asm(|a| {
                    a.ldx_dw(Reg::R1, Reg::R10, vslot)
                        .raw(syrup_ebpf::Insn::StoreMem {
                            size,
                            base: reg,
                            off: off as i16,
                            src: Reg::R1,
                        })
                });
                Ok(())
            }
        }
    }

    /// Emits a pointer-valued expression into `dst` and reports its kind.
    fn ptr_expr(&mut self, line: usize, e: &Expr, dst: Reg) -> Result<VKind, LangError> {
        match &e.kind {
            ExprKind::Ident(name) => match self.bindings.get(name).cloned() {
                Some(Binding::Reg(reg, kind)) if kind.is_ptr() => {
                    self.with_asm(|a| a.mov64_reg(dst, reg));
                    Ok(kind)
                }
                Some(Binding::PktDerived(off, kind)) => {
                    self.with_asm(|a| {
                        let a = a.mov64_reg(dst, Reg::R6);
                        if off != 0 {
                            a.add64_imm(dst, off as i32)
                        } else {
                            a
                        }
                    });
                    Ok(kind)
                }
                _ => Err(LangError::new(line, format!("`{name}` is not a pointer"))),
            },
            ExprKind::Cast(ty, inner) => {
                let kind = self.ptr_expr(line, inner, dst)?;
                let declared = self.vkind_of_type(line, ty)?;
                Ok(match (declared, kind) {
                    (VKind::MapVal(w), VKind::MapVal(_)) => VKind::MapVal(w),
                    (VKind::Struct(s), VKind::PktPtr) => VKind::Struct(s),
                    (VKind::Struct(s), VKind::Struct(_)) => VKind::Struct(s),
                    (VKind::PktPtr, k @ (VKind::PktPtr | VKind::Struct(_))) => {
                        if matches!(k, VKind::Struct(_)) {
                            VKind::PktPtr
                        } else {
                            k
                        }
                    }
                    // Reinterpreting a packet pointer as a scalar pointer
                    // keeps packet provenance; deref width comes from the
                    // cast.
                    (VKind::MapVal(w), VKind::PktPtr | VKind::Struct(_)) => {
                        // `*(uint64_t *)(pkt + 8)` stays a packet pointer;
                        // remember the width via a PktScalar trick below.
                        // We encode it as Struct-free PktPtr and let Deref
                        // consult the cast; handled in scalar_expr.
                        let _ = w;
                        VKind::PktPtr
                    }
                    (d, _) => d,
                })
            }
            ExprKind::Binary(BinOp::Add | BinOp::Sub, a, b) => {
                let op = match &e.kind {
                    ExprKind::Binary(BinOp::Add, ..) => AluOp::Add,
                    _ => AluOp::Sub,
                };
                let kind = self.ptr_expr(line, a, dst)?;
                if let Some(k) = self.const_fold(b) {
                    self.with_asm(|a| a.alu64(op, dst, Operand::Imm(k as i32)));
                } else {
                    let scratch = next_scratch(line, dst)?;
                    self.scalar_expr(line, b, scratch, scratch_idx(scratch) + 1)?;
                    self.with_asm(|a| a.alu64(op, dst, Operand::Reg(scratch)));
                }
                Ok(kind)
            }
            ExprKind::Call(name, args) => {
                let ret_kind = self.call(line, name, args, dst)?;
                if !ret_kind.is_ptr() {
                    return Err(LangError::new(
                        line,
                        format!("`{name}` does not return a pointer"),
                    ));
                }
                Ok(ret_kind)
            }
            ExprKind::AddrOf(_) => Err(LangError::new(
                line,
                "`&` expressions may only appear as helper-call arguments",
            )),
            _ => Err(LangError::new(line, "expected a pointer-valued expression")),
        }
    }

    /// Resolves a pointer expression to the register already holding it
    /// (for register-resident locals) or materializes it into `r5`.
    fn resolve_ptr_reg(&mut self, line: usize, e: &Expr) -> Result<(Reg, VKind), LangError> {
        if let ExprKind::Ident(name) = &e.kind {
            if let Some(Binding::Reg(reg, kind)) = self.bindings.get(name).cloned() {
                if kind.is_ptr() {
                    return Ok((reg, kind));
                }
            }
        }
        let kind = self.ptr_expr(line, e, Reg::R5)?;
        Ok((Reg::R5, kind))
    }

    /// Emits the null-checked pointer to global slot `index` into `r0`.
    fn global_ptr(&mut self, index: u32) -> Result<(), LangError> {
        let gmap = self
            .globals_map
            .expect("globals map exists if globals bound");
        let key_slot = self.key_slot;
        let ok = self.fresh_label("gok");
        self.with_asm(|a| {
            a.st_w(Reg::R10, key_slot, index as i32)
                .load_map_fd(Reg::R1, gmap)
                .mov64_reg(Reg::R2, Reg::R10)
                .add64_imm(Reg::R2, i32::from(key_slot))
                .call(HelperId::MapLookupElem)
                .jne_imm(Reg::R0, 0, &ok)
                // Unreachable in practice: globals are array-backed; PASS
                // keeps the policy safe if the map is resized.
                .mov64_imm(Reg::R0, ret::PASS as i32)
                .exit()
                .label(&ok)
        });
        Ok(())
    }

    /// Tries to fold `e` to a compile-time integer.
    fn const_fold(&self, e: &Expr) -> Option<i64> {
        match &e.kind {
            ExprKind::Int(n) => Some(*n),
            ExprKind::Ident(name) => match self.bindings.get(name) {
                Some(Binding::Const(k)) => Some(*k),
                _ => None,
            },
            ExprKind::SizeOf(ty) => Some(i64::from(ty.size())),
            ExprKind::SizeOfStruct(name) => self.structs.get(name).map(|s| i64::from(s.size())),
            ExprKind::Unary(UnOp::Neg, inner) => Some(self.const_fold(inner)?.wrapping_neg()),
            ExprKind::Unary(UnOp::BitNot, inner) => Some(!self.const_fold(inner)?),
            ExprKind::Unary(UnOp::Not, inner) => Some(i64::from(self.const_fold(inner)? == 0)),
            ExprKind::Binary(op, a, b) => {
                let a = self.const_fold(a)?;
                let b = self.const_fold(b)?;
                Some(match op {
                    BinOp::Add => a.wrapping_add(b),
                    BinOp::Sub => a.wrapping_sub(b),
                    BinOp::Mul => a.wrapping_mul(b),
                    BinOp::Div => {
                        if b == 0 {
                            0
                        } else {
                            ((a as u64) / (b as u64)) as i64
                        }
                    }
                    BinOp::Mod => {
                        if b == 0 {
                            a
                        } else {
                            ((a as u64) % (b as u64)) as i64
                        }
                    }
                    BinOp::And => a & b,
                    BinOp::Or => a | b,
                    BinOp::Xor => a ^ b,
                    BinOp::Shl => ((a as u64) << (b as u64 & 63)) as i64,
                    BinOp::Shr => ((a as u64) >> (b as u64 & 63)) as i64,
                    BinOp::Eq => i64::from(a == b),
                    BinOp::Ne => i64::from(a != b),
                    BinOp::Lt => i64::from((a as u64) < (b as u64)),
                    BinOp::Le => i64::from(a as u64 <= b as u64),
                    BinOp::Gt => i64::from(a as u64 > b as u64),
                    BinOp::Ge => i64::from(a as u64 >= b as u64),
                    BinOp::LAnd => i64::from(a != 0 && b != 0),
                    BinOp::LOr => i64::from(a != 0 || b != 0),
                })
            }
            _ => None,
        }
    }

    /// Whether evaluating `e` involves a helper call (which clobbers
    /// `r1`–`r5`).
    fn contains_call(&self, e: &Expr) -> bool {
        match &e.kind {
            ExprKind::Call(..) => true,
            ExprKind::Unary(_, x) | ExprKind::Deref(x) | ExprKind::Cast(_, x) => {
                self.contains_call(x)
            }
            ExprKind::Member(x, _) => self.contains_call(x),
            ExprKind::Binary(_, a, b) => self.contains_call(a) || self.contains_call(b),
            ExprKind::Ident(name) => {
                // Global reads compile to a lookup call.
                matches!(self.bindings.get(name), Some(Binding::Global(..)))
            }
            _ => false,
        }
    }

    /// Whether evaluating `e` materializes a boolean via branches
    /// (`branch_if_true`), which uses the fixed scratch registers
    /// `r0`/`r3`/`r4` and so clobbers any operand an enclosing
    /// expression is holding there.
    fn contains_bool(&self, e: &Expr) -> bool {
        match &e.kind {
            ExprKind::Unary(UnOp::Not, _) => true,
            ExprKind::Binary(
                BinOp::Eq
                | BinOp::Ne
                | BinOp::Lt
                | BinOp::Le
                | BinOp::Gt
                | BinOp::Ge
                | BinOp::LAnd
                | BinOp::LOr,
                ..,
            ) => true,
            ExprKind::Unary(_, x) | ExprKind::Deref(x) | ExprKind::Cast(_, x) => {
                self.contains_bool(x)
            }
            ExprKind::Member(x, _) => self.contains_bool(x),
            ExprKind::Binary(_, a, b) => self.contains_bool(a) || self.contains_bool(b),
            _ => false,
        }
    }

    /// Emits a scalar (or call) expression into `dst`. `min_scratch` is the
    /// first free scratch index after `dst`.
    #[allow(clippy::only_used_in_recursion)] // Kept for future spill heuristics.
    fn scalar_expr(
        &mut self,
        line: usize,
        e: &Expr,
        dst: Reg,
        min_scratch: usize,
    ) -> Result<(), LangError> {
        if let Some(k) = self.const_fold(e) {
            if i32::try_from(k).is_ok() {
                self.with_asm(|a| a.mov64_imm(dst, k as i32));
            } else {
                self.with_asm(|a| a.load_imm64(dst, k));
            }
            return Ok(());
        }
        match &e.kind {
            ExprKind::Int(_) | ExprKind::SizeOf(_) | ExprKind::SizeOfStruct(_) => {
                unreachable!("constants folded above")
            }
            ExprKind::Ident(name) => match self.bindings.get(name).cloned() {
                Some(Binding::Stack(slot, _)) => {
                    self.with_asm(|a| a.ldx_dw(dst, Reg::R10, slot));
                    Ok(())
                }
                Some(Binding::Global(index, VKind::Scalar(w))) => {
                    self.global_ptr(index)?;
                    self.with_asm(|a| {
                        a.raw(syrup_ebpf::Insn::LoadMem {
                            size: mem_size(w),
                            dst,
                            base: Reg::R0,
                            off: 0,
                        })
                    });
                    Ok(())
                }
                Some(Binding::Reg(reg, VKind::Scalar(_))) => {
                    self.with_asm(|a| a.mov64_reg(dst, reg));
                    Ok(())
                }
                Some(Binding::Reg(..)) => Err(LangError::new(
                    line,
                    format!("`{name}` is a pointer; dereference or compare it instead"),
                )),
                _ => Err(LangError::new(line, format!("unknown variable `{name}`"))),
            },
            ExprKind::Deref(inner) => {
                let width = deref_width(inner).unwrap_or(8);
                let (reg, kind) = self.resolve_ptr_reg(line, inner)?;
                let size = match kind {
                    VKind::MapVal(w) => mem_size(w),
                    VKind::PktPtr | VKind::Struct(_) => mem_size(width),
                    _ => return Err(LangError::new(line, "cannot dereference this value")),
                };
                self.with_asm(|a| {
                    a.raw(syrup_ebpf::Insn::LoadMem {
                        size,
                        dst,
                        base: reg,
                        off: 0,
                    })
                });
                Ok(())
            }
            ExprKind::Member(base, field) => {
                let (reg, kind) = self.resolve_ptr_reg(line, base)?;
                let VKind::Struct(sname) = kind else {
                    return Err(LangError::new(line, "`->` requires a struct pointer"));
                };
                let sdef = self
                    .structs
                    .get(&sname)
                    .cloned()
                    .ok_or_else(|| LangError::new(line, format!("unknown struct `{sname}`")))?;
                let (off, fty) = sdef.offset_of(field).ok_or_else(|| {
                    LangError::new(line, format!("no field `{field}` in `{sname}`"))
                })?;
                let size = mem_size(fty.size());
                self.with_asm(|a| {
                    a.raw(syrup_ebpf::Insn::LoadMem {
                        size,
                        dst,
                        base: reg,
                        off: off as i16,
                    })
                });
                Ok(())
            }
            ExprKind::Cast(ty, inner) => {
                if ty.is_ptr() {
                    return Err(LangError::new(
                        line,
                        "pointer casts are only valid in pointer context",
                    ));
                }
                self.scalar_expr(line, inner, dst, min_scratch)?;
                // Truncate to the target width.
                match ty.size() {
                    8 => {}
                    4 => self.with_asm(|a| a.alu32(AluOp::Mov, dst, Operand::Reg(dst))),
                    w => {
                        let mask = (1i64 << (w * 8)) - 1;
                        self.with_asm(|a| a.alu64(AluOp::And, dst, Operand::Imm(mask as i32)));
                    }
                }
                Ok(())
            }
            ExprKind::Unary(UnOp::Neg, inner) => {
                self.scalar_expr(line, inner, dst, min_scratch)?;
                self.with_asm(|a| {
                    a.raw(syrup_ebpf::Insn::Neg {
                        w: syrup_ebpf::Width::W64,
                        dst,
                    })
                });
                Ok(())
            }
            ExprKind::Unary(UnOp::BitNot, inner) => {
                self.scalar_expr(line, inner, dst, min_scratch)?;
                let scratch = next_scratch(line, dst)?;
                self.with_asm(|a| a.load_imm64(scratch, -1).xor64_reg(dst, scratch));
                Ok(())
            }
            ExprKind::Unary(UnOp::Not, _)
            | ExprKind::Binary(
                BinOp::Eq
                | BinOp::Ne
                | BinOp::Lt
                | BinOp::Le
                | BinOp::Gt
                | BinOp::Ge
                | BinOp::LAnd
                | BinOp::LOr,
                ..,
            ) => {
                // Materialize a boolean via branches.
                let true_l = self.fresh_label("btrue");
                let end_l = self.fresh_label("bend");
                self.branch_if_true(line, e, &true_l)?;
                self.with_asm(|a| {
                    a.mov64_imm(dst, 0)
                        .jmp(&end_l)
                        .label(&true_l)
                        .mov64_imm(dst, 1)
                        .label(&end_l)
                });
                Ok(())
            }
            ExprKind::Binary(op, a, b) => {
                let alu = match op {
                    BinOp::Add => AluOp::Add,
                    BinOp::Sub => AluOp::Sub,
                    BinOp::Mul => AluOp::Mul,
                    BinOp::Div => AluOp::Div,
                    BinOp::Mod => AluOp::Mod,
                    BinOp::And => AluOp::And,
                    BinOp::Or => AluOp::Or,
                    BinOp::Xor => AluOp::Xor,
                    BinOp::Shl => AluOp::Lsh,
                    BinOp::Shr => AluOp::Rsh,
                    _ => unreachable!("comparisons handled above"),
                };
                if let Some(k) = self.const_fold(b) {
                    self.scalar_expr(line, a, dst, min_scratch)?;
                    if i32::try_from(k).is_ok() {
                        self.with_asm(|x| x.alu64(alu, dst, Operand::Imm(k as i32)));
                    } else {
                        let scratch = next_scratch(line, dst)?;
                        self.with_asm(|x| {
                            x.load_imm64(scratch, k)
                                .alu64(alu, dst, Operand::Reg(scratch))
                        });
                    }
                    return Ok(());
                }
                if self.contains_call(b) || self.contains_bool(b) {
                    // Park the left side in a stack slot: a call clobbers
                    // `r1`–`r5`, and a boolean materialization clobbers
                    // `r0`/`r3`/`r4` (found by syrup-fuzz's differential
                    // oracle).
                    self.scalar_expr(line, a, dst, min_scratch)?;
                    let slot = self.alloc_slot();
                    self.with_asm(|x| x.stx_dw(Reg::R10, slot, dst));
                    self.scalar_expr(line, b, Reg::R0, 1)?;
                    let scratch = if dst == Reg::R1 {
                        next_scratch(line, Reg::R1)?
                    } else {
                        next_scratch(line, Reg::R0)?
                    };
                    self.with_asm(|x| {
                        x.mov64_reg(scratch, Reg::R0)
                            .ldx_dw(dst, Reg::R10, slot)
                            .alu64(alu, dst, Operand::Reg(scratch))
                    });
                    return Ok(());
                }
                self.scalar_expr(line, a, dst, min_scratch)?;
                let scratch = next_scratch(line, dst)?;
                self.scalar_expr(line, b, scratch, scratch_idx(scratch) + 1)?;
                self.with_asm(|x| x.alu64(alu, dst, Operand::Reg(scratch)));
                Ok(())
            }
            ExprKind::Call(name, args) => {
                let kind = self.call(line, name, args, dst)?;
                if kind.is_ptr() {
                    return Err(LangError::new(
                        line,
                        format!("`{name}` returns a pointer; assign it to a pointer local"),
                    ));
                }
                Ok(())
            }
            ExprKind::AddrOf(_) => Err(LangError::new(
                line,
                "`&` expressions may only appear as helper-call arguments",
            )),
        }
    }

    fn scalar_or_call(&mut self, line: usize, e: &Expr, dst: Reg) -> Result<(), LangError> {
        if let ExprKind::Call(name, args) = &e.kind {
            self.call(line, name, args, dst)?;
            Ok(())
        } else {
            self.scalar_expr(line, e, dst, 1)
        }
    }

    /// Emits a builtin call, leaving the result in `dst`; reports the
    /// result kind.
    fn call(
        &mut self,
        line: usize,
        name: &str,
        args: &[Expr],
        dst: Reg,
    ) -> Result<VKind, LangError> {
        match name {
            "get_random" => {
                self.expect_args(line, name, args, 0)?;
                self.with_asm(|a| a.call(HelperId::GetPrandomU32));
                self.move_ret(dst);
                Ok(VKind::Scalar(4))
            }
            "ktime_get_ns" => {
                self.expect_args(line, name, args, 0)?;
                self.with_asm(|a| a.call(HelperId::KtimeGetNs));
                self.move_ret(dst);
                Ok(VKind::Scalar(8))
            }
            "cpu_id" => {
                self.expect_args(line, name, args, 0)?;
                self.with_asm(|a| a.call(HelperId::GetSmpProcessorId));
                self.move_ret(dst);
                Ok(VKind::Scalar(4))
            }
            "syr_map_lookup_elem" | "map_lookup" => {
                self.expect_args(line, name, args, 2)?;
                let map = self.map_ref_arg(line, &args[0])?;
                self.key_arg(line, &args[1], Reg::R2)?;
                self.with_asm(|a| a.load_map_fd(Reg::R1, map).call(HelperId::MapLookupElem));
                self.move_ret(dst);
                Ok(VKind::MapVal(8))
            }
            "syr_map_update_elem" | "map_update" => {
                self.expect_args(line, name, args, 3)?;
                let map = self.map_ref_arg(line, &args[0])?;
                // Evaluate the value first (it may contain calls), park it
                // in the value slot, then build the key.
                self.value_arg(line, &args[2])?;
                self.key_arg(line, &args[1], Reg::R2)?;
                let vslot = self.val_slot;
                self.with_asm(|a| {
                    a.load_map_fd(Reg::R1, map)
                        .mov64_reg(Reg::R3, Reg::R10)
                        .add64_imm(Reg::R3, i32::from(vslot))
                        .mov64_imm(Reg::R4, 0)
                        .call(HelperId::MapUpdateElem)
                });
                self.move_ret(dst);
                Ok(VKind::Scalar(8))
            }
            "syr_map_delete_elem" | "map_delete" => {
                self.expect_args(line, name, args, 2)?;
                let map = self.map_ref_arg(line, &args[0])?;
                self.key_arg(line, &args[1], Reg::R2)?;
                self.with_asm(|a| a.load_map_fd(Reg::R1, map).call(HelperId::MapDeleteElem));
                self.move_ret(dst);
                Ok(VKind::Scalar(8))
            }
            "__sync_fetch_and_add" => {
                self.expect_args(line, name, args, 2)?;
                let (reg, kind) = self.resolve_ptr_reg(line, &args[0])?;
                if !matches!(kind, VKind::MapVal(_)) {
                    return Err(LangError::new(
                        line,
                        "__sync_fetch_and_add requires a map value pointer",
                    ));
                }
                self.scalar_expr(line, &args[1], Reg::R0, 1)?;
                self.with_asm(|a| a.atomic_fetch_add_dw(reg, 0, Reg::R0));
                self.move_ret(dst);
                Ok(VKind::Scalar(8))
            }
            "bpf_redirect_map" | "redirect_map" => {
                self.expect_args(line, name, args, 2)?;
                let map = self.map_ref_arg(line, &args[0])?;
                self.scalar_expr(line, &args[1], Reg::R2, 3)?;
                self.with_asm(|a| {
                    a.load_map_fd(Reg::R1, map)
                        .mov64_imm(Reg::R3, 0)
                        .call(HelperId::RedirectMap)
                });
                self.move_ret(dst);
                Ok(VKind::Scalar(8))
            }
            other => Err(LangError::new(line, format!("unknown function `{other}`"))),
        }
    }

    fn move_ret(&mut self, dst: Reg) {
        if dst != Reg::R0 {
            self.with_asm(|a| a.mov64_reg(dst, Reg::R0));
        }
    }

    fn expect_args(
        &self,
        line: usize,
        name: &str,
        args: &[Expr],
        n: usize,
    ) -> Result<(), LangError> {
        if args.len() != n {
            return Err(LangError::new(
                line,
                format!("`{name}` takes {n} argument(s), got {}", args.len()),
            ));
        }
        Ok(())
    }

    fn map_ref_arg(&self, line: usize, e: &Expr) -> Result<MapId, LangError> {
        let name = match &e.kind {
            ExprKind::AddrOf(n) | ExprKind::Ident(n) => n,
            _ => return Err(LangError::new(line, "expected `&map_name`")),
        };
        match self.bindings.get(name) {
            Some(Binding::Map(id)) => Ok(*id),
            _ => Err(LangError::new(line, format!("`{name}` is not a map"))),
        }
    }

    /// Emits the address of a 4-byte key into `key_reg`.
    fn key_arg(&mut self, line: usize, e: &Expr, key_reg: Reg) -> Result<(), LangError> {
        let key_slot = self.key_slot;
        match &e.kind {
            // `&local` — keys are the low 4 bytes of the 8-byte slot.
            ExprKind::AddrOf(name) => match self.bindings.get(name).cloned() {
                Some(Binding::Stack(slot, _)) => {
                    self.with_asm(|a| {
                        a.mov64_reg(key_reg, Reg::R10)
                            .add64_imm(key_reg, i32::from(slot))
                    });
                    Ok(())
                }
                Some(Binding::Const(k)) => {
                    self.with_asm(|a| {
                        a.st_w(Reg::R10, key_slot, k as i32)
                            .mov64_reg(key_reg, Reg::R10)
                            .add64_imm(key_reg, i32::from(key_slot))
                    });
                    Ok(())
                }
                _ => Err(LangError::new(
                    line,
                    format!("`&{name}` is not addressable as a key"),
                )),
            },
            // A scalar expression used directly as the key value.
            _ => {
                self.scalar_expr(line, e, Reg::R0, 1)?;
                self.with_asm(|a| {
                    a.stx_w(Reg::R10, key_slot, Reg::R0)
                        .mov64_reg(key_reg, Reg::R10)
                        .add64_imm(key_reg, i32::from(key_slot))
                });
                Ok(())
            }
        }
    }

    /// Evaluates a value argument into the reserved value slot.
    fn value_arg(&mut self, line: usize, e: &Expr) -> Result<(), LangError> {
        let vslot = self.val_slot;
        if let ExprKind::AddrOf(name) = &e.kind {
            if let Some(Binding::Stack(slot, _)) = self.bindings.get(name).cloned() {
                self.with_asm(|a| {
                    a.ldx_dw(Reg::R0, Reg::R10, slot)
                        .stx_dw(Reg::R10, vslot, Reg::R0)
                });
                return Ok(());
            }
        }
        self.scalar_expr(line, e, Reg::R0, 1)?;
        self.with_asm(|a| a.stx_dw(Reg::R10, vslot, Reg::R0));
        Ok(())
    }

    /// Emits `if (cond) goto label` with short-circuit handling.
    fn branch_if_true(&mut self, line: usize, cond: &Expr, label: &str) -> Result<(), LangError> {
        match &cond.kind {
            ExprKind::Binary(BinOp::LAnd, a, b) => {
                let fail = self.fresh_label("and_fail");
                self.branch_if_false(line, a, &fail)?;
                self.branch_if_true(line, b, label)?;
                self.with_asm(|x| x.label(&fail));
                Ok(())
            }
            ExprKind::Binary(BinOp::LOr, a, b) => {
                self.branch_if_true(line, a, label)?;
                self.branch_if_true(line, b, label)?;
                Ok(())
            }
            ExprKind::Unary(UnOp::Not, inner) => self.branch_if_false(line, inner, label),
            ExprKind::Binary(op, a, b) if is_cmp(*op) => self.cmp_branch(line, *op, a, b, label),
            _ => {
                // Truthiness: pointer locals compare against NULL; scalars
                // against zero.
                if let Some((reg, kind)) = self.try_ptr_local(cond) {
                    if kind.is_ptr() {
                        self.with_asm(|x| x.jne_imm(reg, 0, label));
                        return Ok(());
                    }
                }
                self.scalar_expr(line, cond, Reg::R0, 1)?;
                self.with_asm(|x| x.jne_imm(Reg::R0, 0, label));
                Ok(())
            }
        }
    }

    /// Emits `if (!cond) goto label`.
    fn branch_if_false(&mut self, line: usize, cond: &Expr, label: &str) -> Result<(), LangError> {
        match &cond.kind {
            ExprKind::Binary(BinOp::LAnd, a, b) => {
                self.branch_if_false(line, a, label)?;
                self.branch_if_false(line, b, label)?;
                Ok(())
            }
            ExprKind::Binary(BinOp::LOr, a, b) => {
                let ok = self.fresh_label("or_ok");
                self.branch_if_true(line, a, &ok)?;
                self.branch_if_false(line, b, label)?;
                self.with_asm(|x| x.label(&ok));
                Ok(())
            }
            ExprKind::Unary(UnOp::Not, inner) => self.branch_if_true(line, inner, label),
            ExprKind::Binary(op, a, b) if is_cmp(*op) => {
                self.cmp_branch(line, negate_cmp(*op), a, b, label)
            }
            _ => {
                if let Some((reg, kind)) = self.try_ptr_local(cond) {
                    if kind.is_ptr() {
                        self.with_asm(|x| x.jeq_imm(reg, 0, label));
                        return Ok(());
                    }
                }
                self.scalar_expr(line, cond, Reg::R0, 1)?;
                self.with_asm(|x| x.jeq_imm(Reg::R0, 0, label));
                Ok(())
            }
        }
    }

    fn try_ptr_local(&self, e: &Expr) -> Option<(Reg, VKind)> {
        if let ExprKind::Ident(name) = &e.kind {
            if let Some(Binding::Reg(reg, kind)) = self.bindings.get(name) {
                return Some((*reg, kind.clone()));
            }
        }
        None
    }

    /// Emits a comparison branch, handling the pointer-vs-pointer bounds
    /// idiom and the `pkt_end - pkt_start <op> K` strength reduction.
    fn cmp_branch(
        &mut self,
        line: usize,
        op: BinOp,
        a: &Expr,
        b: &Expr,
        label: &str,
    ) -> Result<(), LangError> {
        let cmp = cmp_op(op);

        // `(pkt_end - pkt_start) < K`  ⇒  `pkt_start + K > pkt_end`.
        if let ExprKind::Binary(BinOp::Sub, hi, lo) = &a.kind {
            if self.is_pkt_end(hi) && self.is_pkt_ptr(lo) {
                if let Some(k) = self.const_fold(b) {
                    let flipped = match cmp {
                        // len < K  ⇔  start + K > end.
                        CmpOp::Lt => CmpOp::Gt,
                        // len <= K ⇔  start + K >= end.
                        CmpOp::Le => CmpOp::Ge,
                        // len > K  ⇔  start + K < end.
                        CmpOp::Gt => CmpOp::Lt,
                        // len >= K ⇔  start + K <= end.
                        CmpOp::Ge => CmpOp::Le,
                        other => other,
                    };
                    let kind = self.ptr_expr(line, lo, Reg::R3)?;
                    debug_assert!(matches!(kind, VKind::PktPtr | VKind::Struct(_)));
                    self.ptr_expr(line, hi, Reg::R4)?;
                    self.with_asm(|x| {
                        x.add64_imm(Reg::R3, k as i32).branch(
                            flipped,
                            Reg::R3,
                            Operand::Reg(Reg::R4),
                            label,
                        )
                    });
                    return Ok(());
                }
            }
        }

        // Pointer comparisons (bounds checks, null checks against literals).
        let a_ptr = self.expr_is_ptr(a);
        let b_ptr = self.expr_is_ptr(b);
        if a_ptr && b_ptr {
            self.ptr_expr(line, a, Reg::R3)?;
            self.ptr_expr(line, b, Reg::R4)?;
            self.with_asm(|x| x.branch(cmp, Reg::R3, Operand::Reg(Reg::R4), label));
            return Ok(());
        }
        if a_ptr {
            // Pointer vs constant: only NULL comparisons make sense.
            let k = self.const_fold(b).ok_or_else(|| {
                LangError::new(line, "pointers can only be compared to NULL or pointers")
            })?;
            let (reg, _) = self.resolve_ptr_reg(line, a)?;
            self.with_asm(|x| x.branch(cmp, reg, Operand::Imm(k as i32), label));
            return Ok(());
        }

        // Scalar comparison.
        if let Some(k) = self.const_fold(b) {
            self.scalar_expr(line, a, Reg::R3, 4)?;
            if i32::try_from(k).is_ok() {
                self.with_asm(|x| x.branch(cmp, Reg::R3, Operand::Imm(k as i32), label));
            } else {
                self.with_asm(|x| {
                    x.load_imm64(Reg::R4, k)
                        .branch(cmp, Reg::R3, Operand::Reg(Reg::R4), label)
                });
            }
            return Ok(());
        }
        if self.contains_call(b) || self.contains_bool(b) {
            // Evaluating `b` would clobber the left operand parked in
            // `r3`: calls trash `r1`–`r5`, and a nested comparison's
            // boolean materialization reuses `r3`/`r4` (found by
            // syrup-fuzz's differential oracle). Spill across it.
            self.scalar_expr(line, a, Reg::R0, 1)?;
            let slot = self.alloc_slot();
            self.with_asm(|x| x.stx_dw(Reg::R10, slot, Reg::R0));
            self.scalar_expr(line, b, Reg::R0, 1)?;
            self.with_asm(|x| {
                x.mov64_reg(Reg::R4, Reg::R0)
                    .ldx_dw(Reg::R3, Reg::R10, slot)
                    .branch(cmp, Reg::R3, Operand::Reg(Reg::R4), label)
            });
            return Ok(());
        }
        self.scalar_expr(line, a, Reg::R3, 4)?;
        self.scalar_expr(line, b, Reg::R4, 5)?;
        self.with_asm(|x| x.branch(cmp, Reg::R3, Operand::Reg(Reg::R4), label));
        Ok(())
    }

    fn is_pkt_ptr(&self, e: &Expr) -> bool {
        match &e.kind {
            ExprKind::Ident(name) => matches!(
                self.bindings.get(name),
                Some(Binding::Reg(_, VKind::PktPtr | VKind::Struct(_)))
                    | Some(Binding::PktDerived(..))
            ),
            ExprKind::Cast(_, inner) => self.is_pkt_ptr(inner),
            ExprKind::Binary(BinOp::Add | BinOp::Sub, a, _) => self.is_pkt_ptr(a),
            _ => false,
        }
    }

    fn is_pkt_end(&self, e: &Expr) -> bool {
        match &e.kind {
            ExprKind::Ident(name) => {
                matches!(
                    self.bindings.get(name),
                    Some(Binding::Reg(_, VKind::PktEnd))
                )
            }
            _ => false,
        }
    }

    fn expr_is_ptr(&self, e: &Expr) -> bool {
        match &e.kind {
            ExprKind::Ident(name) => match self.bindings.get(name) {
                Some(Binding::Reg(_, k)) => k.is_ptr(),
                Some(Binding::PktDerived(..)) => true,
                _ => false,
            },
            ExprKind::Cast(ty, inner) => ty.is_ptr() && self.expr_is_ptr(inner),
            ExprKind::Binary(BinOp::Add | BinOp::Sub, a, b) => {
                self.expr_is_ptr(a) && self.const_fold(b).is_some()
                    || self.expr_is_ptr(a) && !self.expr_is_ptr(b)
            }
            _ => false,
        }
    }
}

fn is_cmp(op: BinOp) -> bool {
    matches!(
        op,
        BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge
    )
}

fn cmp_op(op: BinOp) -> CmpOp {
    match op {
        BinOp::Eq => CmpOp::Eq,
        BinOp::Ne => CmpOp::Ne,
        BinOp::Lt => CmpOp::Lt,
        BinOp::Le => CmpOp::Le,
        BinOp::Gt => CmpOp::Gt,
        BinOp::Ge => CmpOp::Ge,
        _ => unreachable!("not a comparison"),
    }
}

fn negate_cmp(op: BinOp) -> BinOp {
    match op {
        BinOp::Eq => BinOp::Ne,
        BinOp::Ne => BinOp::Eq,
        BinOp::Lt => BinOp::Ge,
        BinOp::Le => BinOp::Gt,
        BinOp::Gt => BinOp::Le,
        BinOp::Ge => BinOp::Lt,
        _ => unreachable!("not a comparison"),
    }
}

fn mem_size(width: u32) -> MemSize {
    match width {
        1 => MemSize::B,
        2 => MemSize::H,
        4 => MemSize::W,
        _ => MemSize::DW,
    }
}

/// Pointee width of a deref target, derived from casts.
fn deref_width(e: &Expr) -> Option<u32> {
    match &e.kind {
        ExprKind::Cast(Type::Ptr(inner), _) => Some(inner.size()),
        ExprKind::Cast(Type::VoidPtr, _) => Some(1),
        _ => None,
    }
}

fn scratch_idx(r: Reg) -> usize {
    r.index()
}

fn next_scratch(line: usize, after: Reg) -> Result<Reg, LangError> {
    let idx = after.index() + 1;
    if idx >= SCRATCH.len() {
        return Err(LangError::new(
            line,
            "expression too complex (scratch registers exhausted)",
        ));
    }
    Ok(SCRATCH[idx])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{compile, CompileOptions};
    use syrup_ebpf::vm::{PacketCtx, RunEnv};
    use syrup_ebpf::{verify, Vm};

    fn build(src: &str, opts: CompileOptions) -> (Vm, syrup_ebpf::maps::ProgSlot, CompiledPolicy) {
        let maps = MapRegistry::new();
        let policy = compile(src, &opts, &maps).expect("compile");
        verify(&policy.program, &maps)
            .unwrap_or_else(|e| panic!("verify: {e}\n{}", policy.program.disasm()));
        let mut vm = Vm::new(maps);
        let slot = vm.load_unverified(policy.program.clone());
        (vm, slot, policy)
    }

    fn run(vm: &Vm, slot: syrup_ebpf::maps::ProgSlot, pkt: &mut [u8]) -> u64 {
        let mut ctx = PacketCtx::new(pkt);
        vm.run(slot, &mut ctx, &mut RunEnv::default())
            .expect("run")
            .ret
    }

    #[test]
    fn compiles_constant_return() {
        let (vm, slot, _) = build(
            "uint32_t schedule(void *pkt_start, void *pkt_end) { return 7; }",
            CompileOptions::new(),
        );
        assert_eq!(run(&vm, slot, &mut [0u8; 16]), 7);
    }

    #[test]
    fn ranked_return_encodes_rank_in_high_bits() {
        let (vm, slot, _) = build(
            "uint32_t schedule(void *pkt_start, void *pkt_end) { return (3, 42); }",
            CompileOptions::new(),
        );
        let ret = run(&vm, slot, &mut [0u8; 16]);
        assert_eq!(ret, (42u64 << 32) | 3);
        assert_eq!(syrup_ebpf::ret::executor_of(ret), 3);
        assert_eq!(syrup_ebpf::ret::rank_of(ret), 42);
    }

    #[test]
    fn ranked_return_truncates_both_halves_to_u32() {
        // q and rank are uint32_t like the classic return value: 64-bit
        // expressions truncate before encoding.
        let src = "
            uint32_t schedule(void *pkt_start, void *pkt_end) {
                uint64_t big = 4294967296 + 5;   /* 2^32 + 5 */
                return (big, big + 1);
            }";
        let (vm, slot, _) = build(src, CompileOptions::new());
        let ret = run(&vm, slot, &mut [0u8; 16]);
        assert_eq!(syrup_ebpf::ret::executor_of(ret), 5);
        assert_eq!(syrup_ebpf::ret::rank_of(ret), 6);
    }

    #[test]
    fn ranked_return_survives_helper_calls_in_value() {
        // The rank is spilled to the stack across the value evaluation;
        // a map-helper call in the value expression must not clobber it.
        let src = "
            SYRUP_MAP(counts, ARRAY, 4);
            uint32_t schedule(void *pkt_start, void *pkt_end) {
                uint32_t zero = 0;
                uint64_t *c = syr_map_lookup_elem(&counts, &zero);
                if (!c)
                    return PASS;
                *c += 1;
                return (*c % 4, 1000 + *c);
            }";
        let (vm, slot, _) = build(src, CompileOptions::new());
        let ret = run(&vm, slot, &mut [0u8; 16]);
        assert_eq!(syrup_ebpf::ret::executor_of(ret), 1);
        assert_eq!(syrup_ebpf::ret::rank_of(ret), 1001);
    }

    #[test]
    fn parenthesized_plain_return_still_works() {
        let (vm, slot, _) = build(
            "uint32_t schedule(void *pkt_start, void *pkt_end) { return (4) + 1; }",
            CompileOptions::new(),
        );
        assert_eq!(run(&vm, slot, &mut [0u8; 16]), 5);
    }

    #[test]
    fn round_robin_policy_from_paper() {
        // Figure 5a, verbatim shape.
        let src = "
            uint32_t idx = 0;
            uint32_t schedule(void *pkt_start, void *pkt_end) {
                idx++;
                return idx % NUM_THREADS;
            }";
        let (vm, slot, _) = build(src, CompileOptions::new().define("NUM_THREADS", 6));
        let mut pkt = [0u8; 16];
        let picks: Vec<u64> = (0..8).map(|_| run(&vm, slot, &mut pkt)).collect();
        assert_eq!(picks, vec![1, 2, 3, 4, 5, 0, 1, 2]);
    }

    #[test]
    fn sita_policy_from_paper() {
        // Figure 5d: bounds check, peek type at offset 8, split SCANs to
        // socket 0, round-robin GETs over the rest.
        let src = "
            uint32_t idx = 0;
            uint32_t schedule(void *pkt_start, void *pkt_end) {
                if (pkt_end - pkt_start < 16)
                    return PASS;
                uint64_t type = *(uint64_t *)(pkt_start + 8);
                if (type == SCAN)
                    return 0;
                idx++;
                return (idx % (NUM_THREADS - 1)) + 1;
            }";
        let opts = CompileOptions::new()
            .define("NUM_THREADS", 6)
            .define("SCAN", 2);
        let (vm, slot, _) = build(src, opts);

        // SCAN packet → socket 0.
        let mut pkt = [0u8; 16];
        pkt[8] = 2;
        assert_eq!(run(&vm, slot, &mut pkt), 0);

        // GET packets round-robin over 1..=5.
        let mut pkt = [0u8; 16];
        pkt[8] = 1;
        let picks: Vec<u64> = (0..6).map(|_| run(&vm, slot, &mut pkt)).collect();
        assert_eq!(picks, vec![2, 3, 4, 5, 1, 2]);

        // Short packet → PASS.
        let mut small = [0u8; 8];
        assert_eq!(run(&vm, slot, &mut small), ret::PASS);
    }

    #[test]
    fn scan_avoid_policy_from_paper() {
        // Figure 5c: probe random sockets, skip ones serving a SCAN.
        let src = "
            SYRUP_MAP(scan_map, ARRAY, 64);
            uint32_t schedule(void *pkt_start, void *pkt_end) {
                uint32_t cur_idx = 0;
                for (int i = 0; i < NUM_THREADS; i++) {
                    cur_idx = get_random() % NUM_THREADS;
                    uint64_t *scan = syr_map_lookup_elem(&scan_map, &cur_idx);
                    if (!scan)
                        return PASS;
                    if (*scan == GET)
                        break;
                }
                return cur_idx;
            }";
        let opts = CompileOptions::new()
            .define("NUM_THREADS", 6)
            .define("GET", 1);
        let maps = MapRegistry::new();
        let policy = compile(src, &opts, &maps).expect("compile");
        verify(&policy.program, &maps)
            .unwrap_or_else(|e| panic!("verify: {e}\n{}", policy.program.disasm()));
        let scan_map = maps.get(policy.created_maps["scan_map"]).unwrap();
        // Mark sockets 0..5 as GET except 3 (SCAN).
        for i in 0..6u32 {
            scan_map.update_u64(i, if i == 3 { 2 } else { 1 }).unwrap();
        }
        let mut vm = Vm::new(maps);
        let slot = vm.load_unverified(policy.program.clone());
        let mut pkt = [0u8; 16];
        let mut env = RunEnv {
            prandom_state: 42,
            ..RunEnv::default()
        };
        for _ in 0..64 {
            let mut ctx = PacketCtx::new(&mut pkt);
            let pick = vm.run(slot, &mut ctx, &mut env).unwrap().ret;
            assert!(pick < 6);
            assert_ne!(pick, 3, "SCAN-serving socket must be avoided");
        }
    }

    #[test]
    fn token_policy_from_paper() {
        // §3.4: parse user id, consume a token or drop.
        let src = "
            SYRUP_MAP(token_map, HASH, 1024);
            struct app_hdr {
                uint32_t user_id;
            };
            uint32_t schedule(void *pkt_start, void *pkt_end) {
                if (pkt_end - pkt_start < 12)
                    return DROP;
                struct app_hdr *hdr = (struct app_hdr *)(pkt_start + 8);
                uint32_t user_id = hdr->user_id;
                uint64_t *tokens = syr_map_lookup_elem(&token_map, &user_id);
                if (!tokens)
                    return DROP;
                if (*tokens == 0)
                    return DROP;
                __sync_fetch_and_add(tokens, -1);
                return PASS;
            }";
        let maps = MapRegistry::new();
        let policy = compile(src, &CompileOptions::new(), &maps).expect("compile");
        verify(&policy.program, &maps)
            .unwrap_or_else(|e| panic!("verify: {e}\n{}", policy.program.disasm()));
        let token_map = maps.get(policy.created_maps["token_map"]).unwrap();
        token_map.update_u64(5, 2).unwrap(); // user 5 has 2 tokens
        let mut vm = Vm::new(maps);
        let slot = vm.load_unverified(policy.program.clone());
        let mut pkt = [0u8; 12];
        pkt[8..12].copy_from_slice(&5u32.to_le_bytes());
        assert_eq!(run(&vm, slot, &mut pkt), ret::PASS);
        assert_eq!(run(&vm, slot, &mut pkt), ret::PASS);
        assert_eq!(run(&vm, slot, &mut pkt), ret::DROP, "tokens exhausted");
        // Unknown user drops.
        let mut other = [0u8; 12];
        other[8..12].copy_from_slice(&9u32.to_le_bytes());
        assert_eq!(run(&vm, slot, &mut other), ret::DROP);
        // Userspace replenishes (Figure: generate_tokens).
        let token_map = vm.maps().get(policy.created_maps["token_map"]).unwrap();
        token_map.update_u64(5, 1).unwrap();
        assert_eq!(run(&vm, slot, &mut pkt), ret::PASS);
    }

    #[test]
    fn hash_policy_with_external_executor_count() {
        // §3.3's hash example: read a field, modulo a map-provided count.
        let src = "
            uint32_t schedule(void *pkt_start, void *pkt_end) {
                if (pkt_end - pkt_start < 4)
                    return PASS;
                uint32_t hash = *(uint32_t *)(pkt_start + 0);
                uint32_t zero = 0;
                uint64_t *num_cores = syr_map_lookup_elem(&core_map, &zero);
                if (!num_cores)
                    return PASS;
                return hash % *num_cores;
            }";
        let maps = MapRegistry::new();
        let core_map_id = maps.create(MapDef::u64_array(1));
        maps.get(core_map_id).unwrap().update_u64(0, 4).unwrap();
        let opts = CompileOptions::new().bind_map("core_map", core_map_id);
        let policy = compile(src, &opts, &maps).expect("compile");
        verify(&policy.program, &maps)
            .unwrap_or_else(|e| panic!("verify: {e}\n{}", policy.program.disasm()));
        let mut vm = Vm::new(maps);
        let slot = vm.load_unverified(policy.program);
        let mut pkt = [0u8; 8];
        pkt[..4].copy_from_slice(&10u32.to_le_bytes());
        assert_eq!(run(&vm, slot, &mut pkt), 10 % 4);
    }

    #[test]
    fn if_else_chains_and_logic_ops() {
        let src = "
            uint32_t schedule(void *pkt_start, void *pkt_end) {
                uint32_t x = 5;
                if (x > 3 && x < 10) {
                    return 1;
                } else if (x == 3 || x == 2) {
                    return 2;
                } else {
                    return 3;
                }
            }";
        let (vm, slot, _) = build(src, CompileOptions::new());
        assert_eq!(run(&vm, slot, &mut [0u8; 4]), 1);
    }

    #[test]
    fn break_exits_unrolled_loop() {
        let src = "
            uint32_t schedule(void *pkt_start, void *pkt_end) {
                uint32_t acc = 0;
                for (int i = 0; i < 10; i++) {
                    acc += i;
                    if (i == 3)
                        break;
                }
                return acc;
            }";
        let (vm, slot, _) = build(src, CompileOptions::new());
        assert_eq!(run(&vm, slot, &mut [0u8; 4]), 1 + 2 + 3);
    }

    #[test]
    fn continue_skips_iteration() {
        let src = "
            uint32_t schedule(void *pkt_start, void *pkt_end) {
                uint32_t acc = 0;
                for (int i = 0; i < 5; i++) {
                    if (i == 2)
                        continue;
                    acc += i;
                }
                return acc;
            }";
        let (vm, slot, _) = build(src, CompileOptions::new());
        assert_eq!(run(&vm, slot, &mut [0u8; 4]), 1 + 3 + 4);
    }

    #[test]
    fn globals_persist_across_invocations_and_seed_from_init() {
        let src = "
            uint64_t counter = 100;
            uint32_t schedule(void *pkt_start, void *pkt_end) {
                counter += 2;
                return counter;
            }";
        let (vm, slot, policy) = build(src, CompileOptions::new());
        assert_eq!(run(&vm, slot, &mut [0u8; 4]), 102);
        assert_eq!(run(&vm, slot, &mut [0u8; 4]), 104);
        // The globals map is observable by userspace (cross-layer!).
        let gmap = vm.maps().get(policy.globals_map.unwrap()).unwrap();
        assert_eq!(gmap.lookup_u64(0).unwrap(), Some(104));
    }

    #[test]
    fn rejects_unknown_variable_and_function() {
        let maps = MapRegistry::new();
        let err = compile(
            "uint32_t schedule(void *a, void *b) { return nope; }",
            &CompileOptions::new(),
            &maps,
        )
        .unwrap_err();
        assert!(err.msg.contains("unknown variable"));

        let err = compile(
            "uint32_t schedule(void *a, void *b) { return nope(); }",
            &CompileOptions::new(),
            &maps,
        )
        .unwrap_err();
        assert!(err.msg.contains("unknown function"));
    }

    #[test]
    fn rejects_unbounded_loop_and_too_many_ptr_locals() {
        let maps = MapRegistry::new();
        let err = compile(
            "uint32_t schedule(void *a, void *b) {
                 for (int i = 0; i < N; i++) { }
                 return 0;
             }",
            &CompileOptions::new(),
            &maps,
        )
        .unwrap_err();
        assert!(err.msg.contains("constant"));

        let err = compile(
            "SYRUP_MAP(m, ARRAY, 4);
             uint32_t schedule(void *a, void *b) {
                 uint32_t k = 0;
                 uint64_t *p1 = syr_map_lookup_elem(&m, &k);
                 uint64_t *p2 = syr_map_lookup_elem(&m, &k);
                 uint64_t *p3 = syr_map_lookup_elem(&m, &k);
                 return 0;
             }",
            &CompileOptions::new(),
            &maps,
        )
        .unwrap_err();
        assert!(err.msg.contains("pointer locals"));
    }

    #[test]
    fn generated_code_fails_verification_without_bounds_check() {
        // The compiler emits what the user wrote; the *verifier* is the
        // safety net, exactly as in the real stack.
        let maps = MapRegistry::new();
        let policy = compile(
            "uint32_t schedule(void *pkt_start, void *pkt_end) {
                 return *(uint32_t *)(pkt_start + 0);
             }",
            &CompileOptions::new(),
            &maps,
        )
        .expect("compiles fine");
        assert!(verify(&policy.program, &maps).is_err());
    }

    #[test]
    fn update_and_delete_helpers() {
        let src = "
            SYRUP_MAP(state, HASH, 16);
            uint32_t schedule(void *pkt_start, void *pkt_end) {
                uint32_t k = 3;
                syr_map_update_elem(&state, &k, 77);
                return 0;
            }";
        let (vm, slot, policy) = build(src, CompileOptions::new());
        run(&vm, slot, &mut [0u8; 4]);
        let m = vm.maps().get(policy.created_maps["state"]).unwrap();
        assert_eq!(m.lookup_u64(3).unwrap(), Some(77));
    }
}
