//! Abstract syntax for the policy language.

/// A scalar or pointer type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Type {
    /// 32-bit unsigned (`uint32_t`, `int` is treated as `uint32_t`).
    U32,
    /// 64-bit unsigned (`uint64_t`).
    U64,
    /// 8-bit unsigned.
    U8,
    /// 16-bit unsigned.
    U16,
    /// Untyped pointer (`void *`): byte-granular arithmetic.
    VoidPtr,
    /// Pointer to a scalar (`uint64_t *`), dereferenced at that width.
    Ptr(Box<Type>),
    /// Pointer to a declared struct, accessed with `->`.
    StructPtr(String),
}

impl Type {
    /// Size in bytes when stored in a packet/struct (pointers are 8).
    pub fn size(&self) -> u32 {
        match self {
            Type::U8 => 1,
            Type::U16 => 2,
            Type::U32 => 4,
            Type::U64 => 8,
            Type::VoidPtr | Type::Ptr(_) | Type::StructPtr(_) => 8,
        }
    }

    /// Whether this is any pointer type.
    pub fn is_ptr(&self) -> bool {
        matches!(self, Type::VoidPtr | Type::Ptr(_) | Type::StructPtr(_))
    }
}

/// A struct declaration: packed layout (no padding), matching on-the-wire
/// header structs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StructDef {
    /// Struct tag.
    pub name: String,
    /// Fields in declaration order.
    pub fields: Vec<(String, Type)>,
}

impl StructDef {
    /// Byte offset of `field`, or `None` if absent.
    pub fn offset_of(&self, field: &str) -> Option<(u32, &Type)> {
        let mut off = 0;
        for (name, ty) in &self.fields {
            if name == field {
                return Some((off, ty));
            }
            off += ty.size();
        }
        None
    }

    /// Total packed size in bytes.
    pub fn size(&self) -> u32 {
        self.fields.iter().map(|(_, t)| t.size()).sum()
    }
}

/// Map kinds nameable in `SYRUP_MAP` declarations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MapDeclKind {
    /// `ARRAY`: u32 → u64, zero-initialized.
    Array,
    /// `HASH`: u32 → u64.
    Hash,
}

/// A `SYRUP_MAP(name, KIND, entries);` declaration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MapDecl {
    /// Map name referenced as `&name` in helper calls.
    pub name: String,
    /// Array or hash.
    pub kind: MapDeclKind,
    /// Capacity.
    pub max_entries: i64,
}

/// A global variable declaration (backed by the implicit globals map).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GlobalDecl {
    /// Variable name.
    pub name: String,
    /// Declared type (scalars only).
    pub ty: Type,
    /// Optional constant initializer (defaults to 0, like C statics).
    pub init: i64,
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Mod,
    /// `&`
    And,
    /// `|`
    Or,
    /// `^`
    Xor,
    /// `<<`
    Shl,
    /// `>>`
    Shr,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `&&` (short-circuit)
    LAnd,
    /// `||` (short-circuit)
    LOr,
}

/// An expression, tagged with its source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Expr {
    /// Source line for diagnostics.
    pub line: usize,
    /// The expression variant.
    pub kind: ExprKind,
}

/// Expression variants.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExprKind {
    /// Integer literal.
    Int(i64),
    /// Variable (local, parameter, global, or define).
    Ident(String),
    /// `&name` — address of a local (stack pointer) or a map reference.
    AddrOf(String),
    /// `*expr` — dereference a pointer at its pointee width.
    Deref(Box<Expr>),
    /// `expr->field` on a struct pointer.
    Member(Box<Expr>, String),
    /// `(type) expr` cast.
    Cast(Type, Box<Expr>),
    /// Unary `!`, `-`, `~`.
    Unary(UnOp, Box<Expr>),
    /// Binary operation.
    Binary(BinOp, Box<Expr>, Box<Expr>),
    /// Builtin call.
    Call(String, Vec<Expr>),
    /// `sizeof(struct x)` / `sizeof(type)`, folded by the parser where
    /// possible and by codegen otherwise.
    SizeOf(Type),
    /// `sizeof(struct name)` for a user struct.
    SizeOfStruct(String),
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnOp {
    /// Logical not (`!`), yields 0/1.
    Not,
    /// Arithmetic negation.
    Neg,
    /// Bitwise complement.
    BitNot,
}

/// A statement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Stmt {
    /// `type name = expr;` — a local declaration.
    Decl {
        /// Source line.
        line: usize,
        /// Declared type.
        ty: Type,
        /// Variable name.
        name: String,
        /// Initializer (required for pointers).
        init: Option<Expr>,
    },
    /// `lvalue = expr;` or compound assignment desugared by the parser.
    Assign {
        /// Source line.
        line: usize,
        /// Assignment target.
        target: LValue,
        /// New value.
        value: Expr,
    },
    /// `if (cond) { .. } else { .. }`.
    If {
        /// Source line.
        line: usize,
        /// Condition (nonzero = true).
        cond: Expr,
        /// Then-branch.
        then_body: Vec<Stmt>,
        /// Else-branch (possibly empty).
        else_body: Vec<Stmt>,
    },
    /// Constant-bound `for` loop; unrolled by codegen.
    For {
        /// Source line.
        line: usize,
        /// Loop variable name.
        var: String,
        /// Inclusive start (must fold to a constant at codegen).
        start: Expr,
        /// Exclusive end (must fold to a constant at codegen, possibly via
        /// a `define` like `NUM_THREADS`).
        end: Expr,
        /// Body.
        body: Vec<Stmt>,
    },
    /// `break;` (inside an unrolled loop).
    Break {
        /// Source line.
        line: usize,
    },
    /// `continue;` (inside an unrolled loop).
    Continue {
        /// Source line.
        line: usize,
    },
    /// `return expr;` or the ranked form `return (expr, rank);`.
    Return {
        /// Source line.
        line: usize,
        /// Return value (executor index or PASS/DROP sentinel).
        value: Expr,
        /// Queue rank for the ranked form: encoded into the high 32 bits
        /// of the return value (`(rank << 32) | value`). `None` for the
        /// classic scalar return, whose value is truncated to `uint32_t`.
        rank: Option<Expr>,
    },
    /// An expression evaluated for effect (helper calls, atomics).
    ExprStmt {
        /// Source line.
        line: usize,
        /// The expression.
        expr: Expr,
    },
}

/// Assignment targets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LValue {
    /// A named variable (local or global).
    Var(String),
    /// `*ptr`.
    Deref(Expr),
    /// `ptr->field`.
    Member(Expr, String),
}

/// The `schedule` entry function.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Function {
    /// Function name (must be `schedule`).
    pub name: String,
    /// Parameter names: `(pkt_start, pkt_end)` or empty.
    pub params: Vec<String>,
    /// Body statements.
    pub body: Vec<Stmt>,
}

/// A parsed policy file.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Unit {
    /// Struct layout declarations.
    pub structs: Vec<StructDef>,
    /// `SYRUP_MAP` declarations.
    pub maps: Vec<MapDecl>,
    /// Globals.
    pub globals: Vec<GlobalDecl>,
    /// The entry function.
    pub function: Option<Function>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn struct_layout_is_packed() {
        let s = StructDef {
            name: "app_hdr".into(),
            fields: vec![
                ("user_id".into(), Type::U32),
                ("op".into(), Type::U16),
                ("key".into(), Type::U64),
            ],
        };
        assert_eq!(s.offset_of("user_id"), Some((0, &Type::U32)));
        assert_eq!(s.offset_of("op"), Some((4, &Type::U16)));
        assert_eq!(s.offset_of("key"), Some((6, &Type::U64)));
        assert_eq!(s.size(), 14);
        assert_eq!(s.offset_of("missing"), None);
    }

    #[test]
    fn type_sizes() {
        assert_eq!(Type::U8.size(), 1);
        assert_eq!(Type::U64.size(), 8);
        assert_eq!(Type::VoidPtr.size(), 8);
        assert!(Type::Ptr(Box::new(Type::U64)).is_ptr());
        assert!(!Type::U32.is_ptr());
    }
}
