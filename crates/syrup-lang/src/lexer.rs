//! Tokenizer for the policy language.

use crate::LangError;

/// A lexical token with its source line (for diagnostics).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// The token kind and payload.
    pub kind: Tok,
    /// 1-based source line.
    pub line: usize,
}

/// Token kinds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// Identifier or keyword (keywords are distinguished by the parser).
    Ident(String),
    /// Integer literal (decimal or `0x` hex), pre-negated by the parser
    /// when needed.
    Int(i64),
    /// `(`.
    LParen,
    /// `)`.
    RParen,
    /// `{`.
    LBrace,
    /// `}`.
    RBrace,
    /// `;`.
    Semi,
    /// `,`.
    Comma,
    /// `*`.
    Star,
    /// `/`.
    Slash,
    /// `%`.
    Percent,
    /// `+`.
    Plus,
    /// `-`.
    Minus,
    /// `&`.
    Amp,
    /// `|`.
    Pipe,
    /// `^`.
    Caret,
    /// `~`.
    Tilde,
    /// `!`.
    Bang,
    /// `<<`.
    Shl,
    /// `>>`.
    Shr,
    /// `<`.
    Lt,
    /// `<=`.
    Le,
    /// `>`.
    Gt,
    /// `>=`.
    Ge,
    /// `==`.
    EqEq,
    /// `!=`.
    Ne,
    /// `&&`.
    AndAnd,
    /// `||`.
    OrOr,
    /// `=`.
    Assign,
    /// `+=`.
    PlusAssign,
    /// `-=`.
    MinusAssign,
    /// `++`.
    Incr,
    /// `--`.
    Decr,
    /// `->`.
    Arrow,
    /// End of input.
    Eof,
}

/// Tokenizes `source`, stripping `//` and `/* */` comments.
pub fn lex(source: &str) -> Result<Vec<Token>, LangError> {
    let mut tokens = Vec::new();
    let chars: Vec<char> = source.chars().collect();
    let mut i = 0;
    let mut line = 1;

    while i < chars.len() {
        let c = chars[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '/' if chars.get(i + 1) == Some(&'/') => {
                while i < chars.len() && chars[i] != '\n' {
                    i += 1;
                }
            }
            '/' if chars.get(i + 1) == Some(&'*') => {
                i += 2;
                loop {
                    if i + 1 >= chars.len() {
                        return Err(LangError::new(line, "unterminated block comment"));
                    }
                    if chars[i] == '\n' {
                        line += 1;
                    }
                    if chars[i] == '*' && chars[i + 1] == '/' {
                        i += 2;
                        break;
                    }
                    i += 1;
                }
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < chars.len() && (chars[i].is_ascii_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                let word: String = chars[start..i].iter().collect();
                tokens.push(Token {
                    kind: Tok::Ident(word),
                    line,
                });
            }
            c if c.is_ascii_digit() => {
                let start = i;
                let hex = c == '0' && matches!(chars.get(i + 1), Some('x') | Some('X'));
                if hex {
                    i += 2;
                    while i < chars.len() && chars[i].is_ascii_hexdigit() {
                        i += 1;
                    }
                    let text: String = chars[start + 2..i].iter().collect();
                    let value = i64::from_str_radix(&text, 16)
                        .map_err(|_| LangError::new(line, "invalid hex literal"))?;
                    tokens.push(Token {
                        kind: Tok::Int(value),
                        line,
                    });
                } else {
                    while i < chars.len() && chars[i].is_ascii_digit() {
                        i += 1;
                    }
                    let text: String = chars[start..i].iter().collect();
                    let value = text
                        .parse::<i64>()
                        .map_err(|_| LangError::new(line, "invalid integer literal"))?;
                    tokens.push(Token {
                        kind: Tok::Int(value),
                        line,
                    });
                }
                // Swallow C integer suffixes (e.g. `0u`, `1UL`).
                while i < chars.len() && matches!(chars[i], 'u' | 'U' | 'l' | 'L') {
                    i += 1;
                }
            }
            _ => {
                let two: String = chars[i..(i + 2).min(chars.len())].iter().collect();
                let (kind, adv) = match two.as_str() {
                    "<<" => (Tok::Shl, 2),
                    ">>" => (Tok::Shr, 2),
                    "<=" => (Tok::Le, 2),
                    ">=" => (Tok::Ge, 2),
                    "==" => (Tok::EqEq, 2),
                    "!=" => (Tok::Ne, 2),
                    "&&" => (Tok::AndAnd, 2),
                    "||" => (Tok::OrOr, 2),
                    "+=" => (Tok::PlusAssign, 2),
                    "-=" => (Tok::MinusAssign, 2),
                    "++" => (Tok::Incr, 2),
                    "--" => (Tok::Decr, 2),
                    "->" => (Tok::Arrow, 2),
                    _ => match c {
                        '(' => (Tok::LParen, 1),
                        ')' => (Tok::RParen, 1),
                        '{' => (Tok::LBrace, 1),
                        '}' => (Tok::RBrace, 1),
                        ';' => (Tok::Semi, 1),
                        ',' => (Tok::Comma, 1),
                        '*' => (Tok::Star, 1),
                        '/' => (Tok::Slash, 1),
                        '%' => (Tok::Percent, 1),
                        '+' => (Tok::Plus, 1),
                        '-' => (Tok::Minus, 1),
                        '&' => (Tok::Amp, 1),
                        '|' => (Tok::Pipe, 1),
                        '^' => (Tok::Caret, 1),
                        '~' => (Tok::Tilde, 1),
                        '!' => (Tok::Bang, 1),
                        '<' => (Tok::Lt, 1),
                        '>' => (Tok::Gt, 1),
                        '=' => (Tok::Assign, 1),
                        other => {
                            return Err(LangError::new(
                                line,
                                format!("unexpected character `{other}`"),
                            ))
                        }
                    },
                };
                tokens.push(Token { kind, line });
                i += adv;
            }
        }
    }
    tokens.push(Token {
        kind: Tok::Eof,
        line,
    });
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_basic_function() {
        let toks = kinds("uint32_t schedule(void *a) { return 0; }");
        assert_eq!(toks[0], Tok::Ident("uint32_t".into()));
        assert_eq!(toks[1], Tok::Ident("schedule".into()));
        assert_eq!(toks[2], Tok::LParen);
        assert!(toks.contains(&Tok::Int(0)));
        assert_eq!(*toks.last().unwrap(), Tok::Eof);
    }

    #[test]
    fn lexes_multichar_operators() {
        let toks = kinds("a += b; c ++; d -> e; f == g; h != i; j && k; l || m; n << o;");
        assert!(toks.contains(&Tok::PlusAssign));
        assert!(toks.contains(&Tok::Incr));
        assert!(toks.contains(&Tok::Arrow));
        assert!(toks.contains(&Tok::EqEq));
        assert!(toks.contains(&Tok::Ne));
        assert!(toks.contains(&Tok::AndAnd));
        assert!(toks.contains(&Tok::OrOr));
        assert!(toks.contains(&Tok::Shl));
    }

    #[test]
    fn lexes_hex_and_suffixed_literals() {
        let toks = kinds("0xFF 42u 7UL");
        assert_eq!(toks[0], Tok::Int(255));
        assert_eq!(toks[1], Tok::Int(42));
        assert_eq!(toks[2], Tok::Int(7));
    }

    #[test]
    fn strips_comments_and_tracks_lines() {
        let toks = lex("// line one\n/* multi\nline */ x").unwrap();
        assert_eq!(toks[0].kind, Tok::Ident("x".into()));
        assert_eq!(toks[0].line, 3);
    }

    #[test]
    fn rejects_unterminated_comment() {
        assert!(lex("/* never ends").is_err());
    }

    #[test]
    fn rejects_stray_character() {
        let err = lex("a @ b").unwrap_err();
        assert!(err.msg.contains('@'));
    }
}
