//! Syrup: user-defined scheduling across the stack — the facade crate.
//!
//! A reproduction of *Syrup: User-Defined Scheduling Across the Stack*
//! (Kaffes, Humphries, Mazières, Kozyrakis — SOSP 2021) as a Rust
//! workspace. This crate re-exports the public API of every layer so
//! downstream users (and the examples in `examples/`) need a single
//! dependency:
//!
//! * [`core`] — the framework: policies, decisions, hooks, the Table 1
//!   Map API, and the `syrupd` daemon with per-application isolation.
//! * [`ebpf`] — the software eBPF substrate: ISA, assembler, static
//!   verifier, interpreter, maps.
//! * [`lang`] — the "safe subset of C" policy compiler.
//! * [`policies`] — the paper's Figure 5 policies (C and native forms).
//! * [`net`] — the network-path substrate (packets, Toeplitz RSS, NIC,
//!   `SO_REUSEPORT` sockets, cost model).
//! * [`sched`] — rank-based programmable queues: exact PIFO, Eiffel-style
//!   bucket queues, and the `ExecQueue` discipline used by the executors.
//! * [`ghost`] — thread scheduling (CFS-like baseline, ghOSt-like agent).
//! * [`apps`] — application models and the Figure 2/6/7/8/9 experiment
//!   worlds.
//! * [`sim`] — the deterministic discrete-event engine.
//! * [`telemetry`] — cross-stack observability: named counters/gauges,
//!   log2 cycle histograms, and a bounded decision-trace ring buffer.
//! * [`profile`] — the cycle-attribution profiler: per-`(prog, pc)` and
//!   per-helper hotspots, folded flame graphs, executor pressure, and
//!   SLO burn monitoring.
//! * [`blackbox`] — the always-on flight recorder: bounded per-layer
//!   event rings, trigger engine, and postmortem bundles.
//! * [`scope`] — continuous time-series observability: ring series
//!   store, periodic registry-delta sampling, per-shard barrier/stall
//!   attribution, robust anomaly detection, OpenMetrics exposition.
//!
//! # Quickstart
//!
//! ```
//! use syrup::core::{Hook, HookMeta, PolicySource, Syrupd, Decision, CompileOptions};
//!
//! // Start the daemon, register an application that owns port 8080.
//! let daemon = Syrupd::new();
//! let (app, _maps) = daemon.register_app("my-kv", &[8080]).unwrap();
//!
//! // Deploy the paper's round-robin policy, written in the C subset:
//! // syrupd compiles it, verifies it, and installs it at the hook.
//! daemon
//!     .deploy(
//!         app,
//!         Hook::SocketSelect,
//!         PolicySource::C {
//!             source: syrup::policies::c_sources::ROUND_ROBIN.to_string(),
//!             options: CompileOptions::new().define("NUM_THREADS", 4),
//!         },
//!     )
//!     .unwrap();
//!
//! // Each incoming datagram now gets a socket decision from the policy.
//! let mut datagram = [0u8; 64];
//! let meta = HookMeta { dst_port: 8080, ..Default::default() };
//! let (owner, decision) = daemon.schedule(Hook::SocketSelect, &mut datagram, &meta);
//! assert_eq!(owner, Some(app));
//! assert_eq!(decision, Decision::Executor(1));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Application models and experiment worlds (re-export of `syrup-apps`).
pub use syrup_apps as apps;
/// Always-on flight recorder: per-layer event rings, trigger engine,
/// postmortem bundles (re-export of `syrup-blackbox`).
pub use syrup_blackbox as blackbox;
/// The Syrup framework (re-export of `syrup-core`).
pub use syrup_core as core;
/// The software eBPF substrate (re-export of `syrup-ebpf`).
pub use syrup_ebpf as ebpf;
/// Thread scheduling substrate (re-export of `syrup-ghost`).
pub use syrup_ghost as ghost;
/// The C-subset policy compiler (re-export of `syrup-lang`).
pub use syrup_lang as lang;
/// The network-path substrate (re-export of `syrup-net`).
pub use syrup_net as net;
/// The paper's policies (re-export of `syrup-policies`).
pub use syrup_policies as policies;
/// Cross-stack cycle-attribution profiler: PC/helper hotspots, folded
/// flame graphs, executor pressure, SLO burn monitoring (re-export of
/// `syrup-profile`).
pub use syrup_profile as profile;
/// Rank-based programmable queues: PIFO, Eiffel bucket queues, and the
/// executor queue discipline (re-export of `syrup-sched`).
pub use syrup_sched as sched;
/// Continuous time-series observability: ring series store, registry-
/// delta sampler, anomaly detection, OpenMetrics exposition (re-export
/// of `syrup-scope`).
pub use syrup_scope as scope;
/// The discrete-event engine (re-export of `syrup-sim`).
pub use syrup_sim as sim;
/// The storage backend (re-export of `syrup-storage`, paper §6.1).
pub use syrup_storage as storage;
/// Cross-stack observability: counters, cycle histograms, decision
/// tracing (re-export of `syrup-telemetry`).
pub use syrup_telemetry as telemetry;
/// Cross-stack request tracing: per-request timelines, stage-latency
/// breakdowns, Perfetto export (re-export of `syrup-trace`).
pub use syrup_trace as trace;
