//! `syrupctl` — the operator's tool for Syrup policies.
//!
//! Policy pipeline subcommands:
//!
//! * `compile <file.c> [-D NAME=VALUE]...` — compile a C-subset policy,
//!   run the verifier, print the disassembly and Table 2-style stats.
//! * `verify-asm <file.s>` — assemble a text-format program and verify it.
//! * `hooks` — list the deployment hooks with their input/executor types.
//! * `demo` — run the §3.1 workflow end to end on a built-in policy.
//!
//! Introspection subcommands — these run the built-in quickstart scenario
//! (three policies on one request path: eBPF round robin at the XDP
//! driver hook, native round robin at CPU-redirect and socket-select) and
//! report on the live daemon state afterwards, standing in for attaching
//! to a long-running `syrupd`:
//!
//! Most introspection subcommands also take `--ranked`, which warms the
//! rank-extension variant of the scenario instead: the socket-select
//! policy is compiled C returning `(executor, rank)` pairs and the
//! reuseport sockets are PIFO-backed (see `crates/syrup-sched`).
//!
//! The global `--backend interp|fast` flag selects the eBPF execution
//! engine (exported as `SYRUP_BACKEND` before the scenario constructs
//! its daemon), so any introspection run can be repeated on the fast
//! backend; see `DESIGN.md` §10.
//!
//! * `prog list [--json] [--ranked]` — deployed policies per hook (app,
//!   backend, the VM engine executing eBPF rows, whether
//!   `(executor, rank)` verdicts are honoured).
//! * `prog stats [--json] [--ranked]` — active engine, per-backend VM
//!   run/cycle totals, and per-policy mean instructions/cycles per
//!   invocation (Table 2 instrumentation).
//! * `queue list [--json] [--ranked]` — per-queue occupancy for the NIC
//!   rings and reuseport sockets: discipline, depth, enqueue/drop
//!   counters, and per-rank-band depths.
//! * `map dump [--json]` — every pinned map with its definition.
//! * `map get <path> <key>` — one value from a pinned map.
//! * `metrics [--json|--openmetrics] [--shards N]` — the full telemetry
//!   snapshot (counters, gauges, histogram percentiles); `--openmetrics`
//!   emits the OpenMetrics text exposition instead (stable schema, ends
//!   in `# EOF`); `--shards N` replays the warm-up through N timer
//!   wheels so the `sim/wheel_*` rows (pushes, cascades, clamp count,
//!   drift gauge) reflect a sharded schedule *and* appends a per-shard
//!   breakdown (pushes, pops, cascades, clamps, per-shard drift) that
//!   the shared registry deliberately never splits out.
//! * `top [--flows N] [--shards N] [--frames N] [--seed N] [--json]` —
//!   a `top`-style dashboard over a sharded scale run with per-window
//!   recording on: per-frame, per-shard throughput, barrier-stall %,
//!   and occupancy, plus cross-shard imbalance, live anomaly events
//!   (EWMA+MAD detectors over per-shard throughput), and the ranked
//!   quickstart's rank-band queue pressure. `--json` emits one JSON
//!   object per frame, then a summary object.
//! * `trace record [--requests N] [--sample N] [--export PATH]` — trace
//!   the scenario, print a summary, optionally write Chrome-trace/Perfetto
//!   JSON (load it at <https://ui.perfetto.dev>).
//! * `trace report [--requests N] [--json]` — per-stage latency breakdown
//!   (count, mean, p50/p99/p99.9 per stage, end-to-end percentiles).
//! * `trace export <PATH>` — shorthand for `trace record --export PATH`.
//! * `trace validate <PATH>` — check an exported file parses and holds at
//!   least one complete multi-hook trace (the CI gate).
//! * `profile record [--requests N] [--flame-out PATH]` — run the
//!   scenario with the cycle-attribution profiler attached, print an
//!   attribution summary, optionally write a collapsed-stack flame graph
//!   (inferno/speedscope format).
//! * `profile report [--requests N] [--top N] [--json]` — per-program,
//!   per-PC (disassembly-annotated), and per-helper cycle attribution
//!   against the VM's own `vm/run_cycles` total.
//! * `profile flame [--requests N] [--out PATH]` — just the folded
//!   flame-graph lines (stdout or PATH).
//! * `profile pressure [--requests N] [--json] [--ranked]` — executor
//!   pressure: per-component queue imbalance (max/mean, Gini), per-rank-band
//!   occupancy (ranked queues only), thread time-in-state, scheduling
//!   latency, starvation events, and SLO burn status.
//!
//! Exit status is nonzero on compile/verify failures, unknown maps, or a
//! failed validation, so the tool slots into CI pipelines.

use std::process::ExitCode;

use syrup::apps::quickstart;
use syrup::blackbox::{Layer, Recorder};
use syrup::core::{CompileOptions, Hook};
use syrup::ebpf::maps::{MapKind, MapRegistry};
use syrup::ebpf::{assemble, verify};
use syrup::lang::count_loc;
use syrup::profile::{Profiler, SloMonitor, SloRule};
use syrup::telemetry::Snapshot;
use syrup::trace::{chrome_trace_json, StageBreakdown, TraceConfig, Tracer};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // Global `--backend interp|fast` override: exported as SYRUP_BACKEND
    // before any subcommand constructs its daemon, so every scenario
    // (quickstart, trace, profile) picks the requested engine up in
    // `Syrupd::with_telemetry`. The flag wins over an inherited env var.
    if let Some(name) = flag_value(&args, "--backend") {
        if name.parse::<syrup::ebpf::vm::Backend>().is_err() {
            eprintln!("syrupctl: unknown backend `{name}` (expected `interp` or `fast`)");
            return ExitCode::FAILURE;
        }
        std::env::set_var("SYRUP_BACKEND", name);
    }
    match args.first().map(String::as_str) {
        Some("compile") => cmd_compile(&args[1..]),
        Some("verify-asm") => cmd_verify_asm(&args[1..]),
        Some("hooks") => cmd_hooks(),
        Some("demo") => cmd_demo(),
        Some("prog") => match args.get(1).map(String::as_str) {
            Some("list") => cmd_prog_list(&args[2..]),
            Some("stats") => cmd_prog_stats(&args[2..]),
            _ => usage(),
        },
        Some("queue") => match args.get(1).map(String::as_str) {
            Some("list") => cmd_queue_list(&args[2..]),
            _ => usage(),
        },
        Some("map") => match args.get(1).map(String::as_str) {
            Some("dump") => cmd_map_dump(&args[2..]),
            Some("get") => cmd_map_get(&args[2..]),
            _ => usage(),
        },
        Some("metrics") => cmd_metrics(&args[1..]),
        Some("top") => cmd_top(&args[1..]),
        Some("trace") => match args.get(1).map(String::as_str) {
            Some("record") => cmd_trace_record(&args[2..]),
            Some("report") => cmd_trace_report(&args[2..]),
            Some("export") => match args.get(2) {
                Some(path) => cmd_trace_record(&["--export".to_string(), path.clone()]),
                None => usage(),
            },
            Some("validate") => cmd_trace_validate(&args[2..]),
            _ => usage(),
        },
        Some("profile") => match args.get(1).map(String::as_str) {
            Some("record") => cmd_profile_record(&args[2..]),
            Some("report") => cmd_profile_report(&args[2..]),
            Some("flame") => cmd_profile_flame(&args[2..]),
            Some("pressure") => cmd_profile_pressure(&args[2..]),
            _ => usage(),
        },
        Some("blackbox") => match args.get(1).map(String::as_str) {
            Some("record") => cmd_blackbox_record(&args[2..]),
            Some("dump") => cmd_blackbox_dump(&args[2..]),
            Some("report") => cmd_blackbox_report(&args[2..]),
            Some("validate") => cmd_blackbox_validate(&args[2..]),
            _ => usage(),
        },
        Some("watch") => cmd_watch(&args[1..]),
        _ => usage(),
    }
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: syrupctl <subcommand>\n\
         \n\
         policy pipeline:\n\
         \x20 compile FILE.c [-D NAME=VALUE]...\n\
         \x20 verify-asm FILE.s\n\
         \x20 hooks\n\
         \x20 demo\n\
         \n\
         introspection (quickstart scenario; --ranked warms the\n\
         rank-extension variant; --backend interp|fast selects the\n\
         eBPF execution engine for any subcommand):\n\
         \x20 prog list [--json] [--ranked]\n\
         \x20 prog stats [--json] [--ranked]\n\
         \x20 queue list [--json] [--ranked]\n\
         \x20 map dump [--json]\n\
         \x20 map get PATH KEY\n\
         \x20 metrics [--json|--openmetrics] [--shards N]\n\
         \x20 top [--flows N] [--shards N] [--frames N] [--seed N] [--json]\n\
         \x20 trace record [--scenario quickstart] [--requests N] [--sample N] [--export PATH]\n\
         \x20 trace report [--requests N] [--json]\n\
         \x20 trace export PATH\n\
         \x20 trace validate PATH\n\
         \x20 profile record [--requests N] [--flame-out PATH]\n\
         \x20 profile report [--requests N] [--top N] [--json]\n\
         \x20 profile flame [--requests N] [--out PATH]\n\
         \x20 profile pressure [--requests N] [--json] [--ranked]\n\
         \n\
         flight recorder:\n\
         \x20 blackbox record [--requests N] [--ranked] [--inject-burn] [--trigger-manual] [--out PATH]\n\
         \x20 blackbox dump [--requests N] [--ranked] [--json]\n\
         \x20 blackbox report PATH\n\
         \x20 blackbox validate PATH [--min-layers N]\n\
         \x20 watch [--requests N] [--interval K] [--ranked] [--json]"
    );
    ExitCode::FAILURE
}

fn has_flag(args: &[String], flag: &str) -> bool {
    args.iter().any(|a| a == flag)
}

/// Value of `--name VALUE`, if present.
fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn parse_defines(args: &[String]) -> Result<CompileOptions, String> {
    let mut opts = CompileOptions::new();
    let mut i = 0;
    while i < args.len() {
        if args[i] == "-D" {
            let kv = args
                .get(i + 1)
                .ok_or_else(|| "-D requires NAME=VALUE".to_string())?;
            let (name, value) = kv
                .split_once('=')
                .ok_or_else(|| format!("bad define `{kv}` (want NAME=VALUE)"))?;
            let value: i64 = value
                .parse()
                .map_err(|_| format!("define value `{value}` is not an integer"))?;
            opts = opts.define(name, value);
            i += 2;
        } else {
            i += 1;
        }
    }
    Ok(opts)
}

fn cmd_compile(args: &[String]) -> ExitCode {
    let Some(path) = args.first().filter(|a| !a.starts_with('-')) else {
        eprintln!("usage: syrupctl compile FILE.c [-D NAME=VALUE]...");
        return ExitCode::FAILURE;
    };
    let source = match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let opts = match parse_defines(&args[1..]) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let maps = MapRegistry::new();
    let compiled = match syrup::lang::compile(&source, &opts, &maps) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("compile error: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "; {} — {} LoC, {} instructions",
        path,
        count_loc(&source),
        compiled.program.len()
    );
    for (name, id) in &compiled.created_maps {
        println!("; map `{name}` -> #{}", id.0);
    }
    println!("{}", compiled.program.disasm());
    match verify(&compiled.program, &maps) {
        Ok(info) => {
            println!("; verifier: OK ({} instructions analyzed)", info.analyzed);
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("; verifier: REJECTED — {e}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_verify_asm(args: &[String]) -> ExitCode {
    let Some(path) = args.first() else {
        eprintln!("usage: syrupctl verify-asm FILE.s");
        return ExitCode::FAILURE;
    };
    let source = match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let prog = match assemble(path, &source) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("assembly error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let maps = MapRegistry::new();
    match verify(&prog, &maps) {
        Ok(info) => {
            println!(
                "OK: {} instructions, {} analyzed",
                prog.len(),
                info.analyzed
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("REJECTED: {e}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_hooks() -> ExitCode {
    println!("{:<18} {:<32} executor", "hook", "input");
    for hook in Hook::ALL {
        println!(
            "{:<18} {:<32} {}",
            hook.to_string(),
            hook.input(),
            hook.executor()
        );
    }
    ExitCode::SUCCESS
}

fn cmd_demo() -> ExitCode {
    use syrup::core::{HookMeta, PolicySource, Syrupd};
    let daemon = Syrupd::new();
    let (app, _) = daemon.register_app("demo", &[8080]).expect("fresh daemon");
    daemon
        .deploy(
            app,
            Hook::SocketSelect,
            PolicySource::C {
                source: syrup::policies::c_sources::ROUND_ROBIN.to_string(),
                options: CompileOptions::new().define("NUM_THREADS", 4),
            },
        )
        .expect("demo policy deploys");
    println!("deployed Figure 5a round robin for port 8080; scheduling 8 datagrams:");
    let mut pkt = [0u8; 32];
    for i in 0..8 {
        let meta = HookMeta {
            dst_port: 8080,
            ..HookMeta::default()
        };
        let (_, d) = daemon.schedule(Hook::SocketSelect, &mut pkt, &meta);
        println!("  datagram {i} -> {d:?}");
    }
    ExitCode::SUCCESS
}

/// Runs the quickstart scenario untraced so the introspection commands
/// have a populated daemon to report on. `--ranked` warms the
/// rank-extension variant instead (PIFO sockets, `(q, rank)` policy);
/// `--shards N` spreads the ingress schedule over N timer wheels (the
/// scenario result is shard-count invariant — see
/// `quickstart::run_sharded` — but the per-wheel `sim/wheel_*` metrics,
/// including the drift gauge, reflect the sharded replay).
fn warm_quickstart(args: &[String]) -> quickstart::Quickstart {
    let tracer = Tracer::disabled();
    let shards = flag_value(args, "--shards")
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(1);
    if has_flag(args, "--ranked") {
        quickstart::run_ranked(&tracer, quickstart::DEFAULT_REQUESTS)
    } else {
        quickstart::run_sharded(&tracer, quickstart::DEFAULT_REQUESTS, shards)
    }
}

fn cmd_prog_list(args: &[String]) -> ExitCode {
    let q = warm_quickstart(args);
    let rows = q.syrupd.deployed();
    // Which VM engine executes eBPF-backed rows; native rows bypass the
    // VM entirely, so they report no engine.
    let engine = q.syrupd.backend().to_string();
    if has_flag(args, "--json") {
        let mut out = String::from("[");
        for (i, (app, hook, native)) in rows.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let engine_json = if *native {
                "null".to_string()
            } else {
                format!("\"{engine}\"")
            };
            out.push_str(&format!(
                "{{\"app\":{},\"hook\":\"{}\",\"backend\":\"{}\",\"engine\":{},\"ranked\":{}}}",
                app.0,
                hook.name(),
                if *native { "native" } else { "ebpf" },
                engine_json,
                q.syrupd.ranks_enabled(*app, *hook)
            ));
        }
        out.push(']');
        println!("{out}");
    } else {
        println!(
            "{:<6} {:<18} {:<8} {:<8} ranked",
            "app", "hook", "backend", "engine"
        );
        for (app, hook, native) in &rows {
            println!(
                "{:<6} {:<18} {:<8} {:<8} {}",
                app.0,
                hook.name(),
                if *native { "native" } else { "ebpf" },
                if *native { "-" } else { engine.as_str() },
                if q.syrupd.ranks_enabled(*app, *hook) {
                    "yes"
                } else {
                    "no"
                }
            );
        }
    }
    ExitCode::SUCCESS
}

/// One row per NIC ring and reuseport socket: queue discipline, live
/// occupancy, enqueue/drop counters, and per-rank-band depths.
fn cmd_queue_list(args: &[String]) -> ExitCode {
    let q = warm_quickstart(args);
    let json = has_flag(args, "--json");
    struct Row {
        component: &'static str,
        index: usize,
        kind: &'static str,
        depth: usize,
        enqueued: u64,
        dropped: u64,
        bands: [usize; syrup::sched::NUM_RANK_BANDS],
    }
    let mut rows = Vec::new();
    for i in 0..q.nic.num_queues() {
        let Some(buf) = q.nic.queue(i) else { continue };
        rows.push(Row {
            component: "nic",
            index: i,
            kind: q.nic.kind().as_str(),
            depth: buf.len(),
            enqueued: buf.enqueued,
            dropped: buf.dropped,
            bands: buf.band_depths(),
        });
    }
    for i in 0..quickstart::THREADS {
        let Some(buf) = q.group.socket(i) else {
            continue;
        };
        rows.push(Row {
            component: "sock",
            index: i,
            kind: q.group.kind().as_str(),
            depth: buf.len(),
            enqueued: buf.enqueued,
            dropped: buf.dropped,
            bands: buf.band_depths(),
        });
    }
    if json {
        let mut out = String::from("[");
        for (i, r) in rows.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"component\":\"{}\",\"index\":{},\"kind\":\"{}\",\
                 \"depth\":{},\"enqueued\":{},\"dropped\":{},\
                 \"bands\":[{},{},{},{}]}}",
                r.component,
                r.index,
                r.kind,
                r.depth,
                r.enqueued,
                r.dropped,
                r.bands[0],
                r.bands[1],
                r.bands[2],
                r.bands[3]
            ));
        }
        out.push(']');
        println!("{out}");
    } else {
        println!(
            "{:<10} {:>5} {:<8} {:>6} {:>9} {:>8}  bands",
            "component", "index", "kind", "depth", "enqueued", "dropped"
        );
        for r in &rows {
            println!(
                "{:<10} {:>5} {:<8} {:>6} {:>9} {:>8}  {:?}",
                r.component, r.index, r.kind, r.depth, r.enqueued, r.dropped, r.bands
            );
        }
    }
    ExitCode::SUCCESS
}

fn cmd_prog_stats(args: &[String]) -> ExitCode {
    let q = warm_quickstart(args);
    let rows = q.syrupd.deployed();
    let json = has_flag(args, "--json");
    let engine = q.syrupd.backend().to_string();
    // Per-engine invocation and modelled-cycle totals; the VM splits its
    // run/cycle counters by backend, so a scenario run entirely on one
    // engine reports zero on the other.
    let snap = q.syrupd.telemetry_snapshot();
    let counter = |name: &str| snap.counters.get(name).copied().unwrap_or(0);
    let (runs_interp, runs_fast) = (counter("vm/runs_interp"), counter("vm/runs_fast"));
    let (cycles_interp, cycles_fast) = (counter("vm/cycles_interp"), counter("vm/cycles_fast"));
    let mut out = format!(
        "{{\"engine\":\"{engine}\",\"runs_interp\":{runs_interp},\"runs_fast\":{runs_fast},\
         \"cycles_interp\":{cycles_interp},\"cycles_fast\":{cycles_fast},\"programs\":["
    );
    if !json {
        println!(
            "engine: {engine}  runs: interp={runs_interp} fast={runs_fast}  \
             cycles: interp={cycles_interp} fast={cycles_fast}"
        );
        println!(
            "{:<6} {:<18} {:<8} {:<8} {:>12} {:>12}",
            "app", "hook", "backend", "engine", "insns/invoc", "cycles/invoc"
        );
    }
    for (i, (app, hook, native)) in rows.iter().enumerate() {
        let stats = q.syrupd.policy_stats(*app, *hook);
        let engine_json = if *native {
            "null".to_string()
        } else {
            format!("\"{engine}\"")
        };
        if json {
            if i > 0 {
                out.push(',');
            }
            match stats {
                Some((insns, cycles)) => out.push_str(&format!(
                    "{{\"app\":{},\"hook\":\"{}\",\"backend\":\"ebpf\",\"engine\":{},\
                     \"insns_per_invocation\":{insns:.1},\"cycles_per_invocation\":{cycles:.1}}}",
                    app.0,
                    hook.name(),
                    engine_json
                )),
                None => out.push_str(&format!(
                    "{{\"app\":{},\"hook\":\"{}\",\"backend\":\"{}\",\"engine\":{},\
                     \"insns_per_invocation\":null,\"cycles_per_invocation\":null}}",
                    app.0,
                    hook.name(),
                    if *native { "native" } else { "ebpf" },
                    engine_json
                )),
            }
        } else {
            match stats {
                Some((insns, cycles)) => println!(
                    "{:<6} {:<18} {:<8} {:<8} {:>12.1} {:>12.1}",
                    app.0,
                    hook.name(),
                    "ebpf",
                    engine,
                    insns,
                    cycles
                ),
                None => println!(
                    "{:<6} {:<18} {:<8} {:<8} {:>12} {:>12}",
                    app.0,
                    hook.name(),
                    if *native { "native" } else { "ebpf" },
                    if *native { "-" } else { engine.as_str() },
                    "-",
                    "-"
                ),
            }
        }
    }
    if json {
        out.push_str("]}");
        println!("{out}");
    }
    ExitCode::SUCCESS
}

fn map_kind_str(kind: MapKind) -> &'static str {
    match kind {
        MapKind::Array => "array",
        MapKind::Hash => "hash",
        MapKind::ProgArray => "prog-array",
    }
}

fn cmd_map_dump(args: &[String]) -> ExitCode {
    let q = warm_quickstart(args);
    let registry = q.syrupd.registry();
    let pins = registry.pins();
    if has_flag(args, "--json") {
        let mut out = String::from("[");
        for (i, (path, id)) in pins.iter().enumerate() {
            let Some(map) = registry.get(*id) else {
                continue;
            };
            let def = map.def();
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"path\":\"{path}\",\"id\":{},\"kind\":\"{}\",\
                 \"key_size\":{},\"value_size\":{},\"max_entries\":{}}}",
                id.0,
                map_kind_str(def.kind),
                def.key_size,
                def.value_size,
                def.max_entries
            ));
        }
        out.push(']');
        println!("{out}");
    } else {
        println!(
            "{:<28} {:<4} {:<10} {:>8} {:>10} {:>11}",
            "path", "id", "kind", "key_sz", "value_sz", "max_entries"
        );
        for (path, id) in &pins {
            let Some(map) = registry.get(*id) else {
                continue;
            };
            let def = map.def();
            println!(
                "{:<28} {:<4} {:<10} {:>8} {:>10} {:>11}",
                path,
                id.0,
                map_kind_str(def.kind),
                def.key_size,
                def.value_size,
                def.max_entries
            );
        }
    }
    ExitCode::SUCCESS
}

fn cmd_map_get(args: &[String]) -> ExitCode {
    let (Some(path), Some(key)) = (args.first(), args.get(1)) else {
        eprintln!("usage: syrupctl map get PATH KEY");
        return ExitCode::FAILURE;
    };
    let key: u32 = match key.parse() {
        Ok(k) => k,
        Err(_) => {
            eprintln!("key `{key}` is not a u32");
            return ExitCode::FAILURE;
        }
    };
    let q = warm_quickstart(args);
    let Some(map) = q.syrupd.registry().open(path) else {
        eprintln!("no map pinned at `{path}` (try `syrupctl map dump`)");
        return ExitCode::FAILURE;
    };
    match map.lookup_u64(key) {
        Ok(Some(v)) => {
            println!("{v}");
            ExitCode::SUCCESS
        }
        Ok(None) => {
            eprintln!("key {key} not present");
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("lookup failed: {e:?}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_metrics(args: &[String]) -> ExitCode {
    let q = warm_quickstart(args);
    let snapshot = q.syrupd.telemetry_snapshot();
    if has_flag(args, "--openmetrics") {
        print!("{}", syrup::scope::openmetrics(&snapshot));
        return ExitCode::SUCCESS;
    }
    // The per-shard breakdown only exists when the operator asked for a
    // sharded replay: the registry itself stays shard-count invariant, so
    // the split lives in the side-channel `shard_stats`, not in new rows.
    let sharded = flag_value(args, "--shards").is_some();
    if has_flag(args, "--json") {
        if sharded {
            let mut out = format!("{{\"snapshot\":{},\"shards\":[", snapshot.to_json());
            for (i, s) in q.shard_stats.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&format!(
                    "{{\"shard\":{},\"len\":{},\"pushes\":{},\"pops\":{},\
                     \"cascaded\":{},\"overflowed\":{},\"clamped\":{},\
                     \"wheel_drift_ns\":{},\"drift_max_ns\":{}}}",
                    s.shard,
                    s.len,
                    s.pushes,
                    s.pops,
                    s.cascaded,
                    s.overflowed,
                    s.clamped,
                    s.drift_total_ns,
                    s.drift_max_ns
                ));
            }
            out.push_str("]}");
            println!("{out}");
        } else {
            println!("{}", snapshot.to_json());
        }
    } else {
        print!("{}", snapshot.render_table());
        if sharded {
            println!(
                "\n{:<6} {:>5} {:>8} {:>8} {:>9} {:>10} {:>8} {:>15} {:>13}",
                "shard",
                "len",
                "pushes",
                "pops",
                "cascaded",
                "overflowed",
                "clamped",
                "wheel_drift_ns",
                "drift_max_ns"
            );
            for s in &q.shard_stats {
                println!(
                    "{:<6} {:>5} {:>8} {:>8} {:>9} {:>10} {:>8} {:>15} {:>13}",
                    s.shard,
                    s.len,
                    s.pushes,
                    s.pops,
                    s.cascaded,
                    s.overflowed,
                    s.clamped,
                    s.drift_total_ns,
                    s.drift_max_ns
                );
            }
        }
    }
    ExitCode::SUCCESS
}

/// A `top`-style dashboard over a sharded scale run: per-frame, per-shard
/// throughput, barrier-stall share, and occupancy, with cross-shard
/// imbalance, anomaly events from EWMA+MAD detectors over per-shard
/// throughput, and the ranked quickstart's rank-band queue pressure.
///
/// The run records per-window samples ([`syrup::sim::WindowSample`]),
/// feeds them through [`syrup::scope::ingest_windows`] into a
/// [`syrup::scope::Scope`], and groups the lock-step windows into
/// `--frames` frames. `--json` prints one object per frame and then one
/// summary object, so scripts can stream frames line by line.
fn cmd_top(args: &[String]) -> ExitCode {
    use syrup::scope::{ingest_windows, AnomalyCfg, AnomalyEngine, Scope};
    use syrup::sim::{scale, ScaleCfg, ScaleEngine};

    let parse = |flag: &str, default: usize| -> Result<usize, String> {
        match flag_value(args, flag) {
            Some(v) => v
                .parse::<usize>()
                .map_err(|_| format!("{flag} `{v}` is not a number")),
            None => Ok(default),
        }
    };
    let (flows, shards, frames, seed) = match (
        parse("--flows", 4_000),
        parse("--shards", 2),
        parse("--frames", 8),
        parse("--seed", 7),
    ) {
        (Ok(f), Ok(s), Ok(fr), Ok(se)) if s > 0 && fr > 0 => (f, s, fr, se),
        (Ok(_), Ok(s), Ok(fr), Ok(_)) if s == 0 || fr == 0 => {
            eprintln!("--shards and --frames must be positive");
            return ExitCode::FAILURE;
        }
        (f, s, fr, se) => {
            for e in [f.err(), s.err(), fr.err(), se.err()].into_iter().flatten() {
                eprintln!("{e}");
            }
            return ExitCode::FAILURE;
        }
    };
    let json = has_flag(args, "--json");

    let mut cfg = ScaleCfg::new(flows as u64, shards, seed as u64);
    cfg.record_windows = true;
    let result = scale::run(&cfg, ScaleEngine::Wheel);
    let scope = Scope::new();
    let summary = ingest_windows(&scope, &result.per_shard_windows);

    // Anomaly detectors over per-shard throughput, fed in lock-step
    // order so the baselines see time the way a live monitor would.
    // Single windows hold a handful of events each, so adjacent windows
    // are summed into coarser buckets first — the detectors should flag
    // sustained throughput excursions, not per-window burstiness.
    let mut engine = AnomalyEngine::new(AnomalyCfg::default());
    let mut anomalies = Vec::new();
    let nwindows = summary.windows as usize;
    let bucket = (nwindows / 256).max(1);
    for lo in (0..nwindows).step_by(bucket) {
        for (k, windows) in result.per_shard_windows.iter().enumerate() {
            let chunk = &windows[lo.min(windows.len())..(lo + bucket).min(windows.len())];
            let Some(first) = chunk.first() else { continue };
            let events: u64 = chunk.iter().map(|w| w.events).sum();
            if let Some(ev) = engine.observe(
                &format!("shard{k}/events"),
                first.window_start_ns,
                events as f64,
            ) {
                anomalies.push(ev);
            }
        }
    }

    // Rank-band queue pressure comes from the ranked quickstart — the
    // scale world has no ranked queues, so the dashboard borrows the
    // PIFO sockets' per-band occupancy for its pressure panel.
    let band_profiler = Profiler::new();
    let _ = quickstart::run_scenario(
        &Tracer::disabled(),
        &band_profiler,
        quickstart::DEFAULT_REQUESTS,
        true,
    );
    let bands = band_profiler.pressure().rank_bands;

    if !json {
        println!(
            "syrup top — {} flows over {} shards ({} engine): {} windows in {} frames, {} events",
            flows,
            shards,
            ScaleEngine::Wheel.name(),
            nwindows,
            frames,
            summary.events
        );
    }
    let per_frame = nwindows.div_ceil(frames).max(1);
    let mut frame_no = 0u64;
    for lo in (0..nwindows).step_by(per_frame) {
        let hi = (lo + per_frame).min(nwindows);
        frame_no += 1;
        let span = |w: &[syrup::sim::WindowSample]| -> (u64, u64, u64, u64, u64) {
            // (events, barrier, wall, mailbox_out, last occupancy)
            let s = &w[lo.min(w.len())..hi.min(w.len())];
            (
                s.iter().map(|w| w.events).sum(),
                s.iter().map(|w| w.barrier_wait_ns).sum(),
                s.iter().map(|w| w.wall_ns).sum(),
                s.iter().map(|w| w.mailbox_out).sum(),
                s.last().map_or(0, |w| w.occupancy),
            )
        };
        let start_ns = result.per_shard_windows[0]
            .get(lo)
            .map_or(0, |w| w.window_start_ns);
        let end_ns = result.per_shard_windows[0]
            .get(hi - 1)
            .map_or(start_ns, |w| w.window_start_ns);
        let shard_rows: Vec<(usize, u64, u64, u64, u64, u64)> = result
            .per_shard_windows
            .iter()
            .enumerate()
            .map(|(k, w)| {
                let (ev, barrier, wall, mbox, occ) = span(w);
                (k, ev, barrier, wall, mbox, occ)
            })
            .collect();
        let frame_events: u64 = shard_rows.iter().map(|r| r.1).sum();
        let mean = frame_events as f64 / shards as f64;
        let imbalance = if mean > 0.0 {
            shard_rows.iter().map(|r| r.1).max().unwrap_or(0) as f64 / mean
        } else {
            0.0
        };
        let frame_anoms: Vec<_> = anomalies
            .iter()
            .filter(|a| a.at_ns >= start_ns && a.at_ns <= end_ns)
            .collect();
        if json {
            let mut out = format!(
                "{{\"frame\":{frame_no},\"start_ns\":{start_ns},\"end_ns\":{end_ns},\
                 \"events\":{frame_events},\"imbalance_max_mean\":{imbalance:.4},\"shards\":["
            );
            for (i, (k, ev, barrier, wall, mbox, occ)) in shard_rows.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let stall = if *wall > 0 {
                    *barrier as f64 / *wall as f64 * 100.0
                } else {
                    0.0
                };
                out.push_str(&format!(
                    "{{\"shard\":{k},\"events\":{ev},\"barrier_wait_ns\":{barrier},\
                     \"stall_pct\":{stall:.2},\"mailbox_out\":{mbox},\"occupancy\":{occ}}}"
                ));
            }
            out.push_str("],\"anomalies\":[");
            for (i, a) in frame_anoms.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                match serde::json::to_string(*a) {
                    Ok(s) => out.push_str(&s),
                    Err(_) => out.push_str("null"),
                }
            }
            out.push_str("]}");
            println!("{out}");
        } else {
            println!(
                "\nframe {frame_no}  [{start_ns} .. {end_ns}] ns  events {frame_events}  \
                 imbalance {imbalance:.2}  anomalies {}",
                frame_anoms.len()
            );
            println!(
                "  {:<6} {:>9} {:>15} {:>7} {:>12} {:>10}",
                "shard", "events", "barrier_wait_ns", "stall%", "mailbox_out", "occupancy"
            );
            for (k, ev, barrier, wall, mbox, occ) in &shard_rows {
                let stall = if *wall > 0 {
                    *barrier as f64 / *wall as f64 * 100.0
                } else {
                    0.0
                };
                println!(
                    "  {:<6} {:>9} {:>15} {:>7.2} {:>12} {:>10}",
                    k, ev, barrier, stall, mbox, occ
                );
            }
            for a in &frame_anoms {
                println!(
                    "  ! anomaly {}: value {:.0} vs median {:.0} (z {:.1})",
                    a.series, a.value, a.median, a.z
                );
            }
        }
    }
    if json {
        let mut out = format!(
            "{{\"summary\":{{\"flows\":{flows},\"shards\":{shards},\"windows\":{nwindows},\
             \"events\":{},\"completed\":{},\"barrier_stall_pct\":{:.4},\
             \"peak_max_mean\":{:.4},\"mean_gini\":{:.6},\"anomalies\":{},\"rank_bands\":[",
            summary.events,
            result.stats.completed,
            summary.barrier_stall_pct,
            summary.peak_max_mean,
            summary.mean_gini,
            anomalies.len()
        );
        for (i, b) in bands.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            match serde::json::to_string(b) {
                Ok(s) => out.push_str(&s),
                Err(_) => out.push_str("null"),
            }
        }
        out.push_str("]}}");
        println!("{out}");
    } else {
        println!(
            "\noverall: {} completed, barrier stall {:.2}%, peak imbalance {:.2}, \
             mean gini {:.4}, {} anomalies",
            result.stats.completed,
            summary.barrier_stall_pct,
            summary.peak_max_mean,
            summary.mean_gini,
            anomalies.len()
        );
        for b in &bands {
            let means: Vec<String> = b.mean_depths.iter().map(|d| format!("{d:.2}")).collect();
            println!(
                "rank-band pressure ({}, ranked quickstart): [{}]",
                b.component,
                means.join(", ")
            );
        }
    }
    ExitCode::SUCCESS
}

/// Parses the shared trace flags and runs the traced scenario.
fn traced_run(args: &[String]) -> Result<quickstart::Quickstart, String> {
    if let Some(scenario) = flag_value(args, "--scenario") {
        if scenario != "quickstart" {
            return Err(format!(
                "unknown scenario `{scenario}` (only `quickstart` is built in)"
            ));
        }
    }
    let requests = match flag_value(args, "--requests") {
        Some(v) => v
            .parse::<usize>()
            .map_err(|_| format!("--requests `{v}` is not a number"))?,
        None => quickstart::DEFAULT_REQUESTS,
    };
    let sample_every = match flag_value(args, "--sample") {
        Some(v) => v
            .parse::<u64>()
            .map_err(|_| format!("--sample `{v}` is not a number"))?,
        None => 1,
    };
    let tracer = Tracer::with_config(TraceConfig {
        sample_every,
        ..TraceConfig::default()
    });
    Ok(quickstart::run(&tracer, requests))
}

fn cmd_trace_record(args: &[String]) -> ExitCode {
    let q = match traced_run(args) {
        Ok(q) => q,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let complete = q
        .timelines
        .iter()
        .filter(|t| t.close_ns().is_some())
        .count();
    println!(
        "recorded {} spans across {} traces ({} complete) from {} requests",
        q.records.len(),
        q.timelines.len(),
        complete,
        q.completed
    );
    if let Some(path) = flag_value(args, "--export") {
        let json = chrome_trace_json(&q.records);
        if let Err(e) = std::fs::write(path, &json) {
            eprintln!("cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!(
            "wrote {} bytes of Chrome-trace JSON to {path} (load at https://ui.perfetto.dev)",
            json.len()
        );
    }
    ExitCode::SUCCESS
}

fn cmd_trace_report(args: &[String]) -> ExitCode {
    let q = match traced_run(args) {
        Ok(q) => q,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    for tl in &q.timelines {
        if let Err(e) = tl.validate() {
            eprintln!("invalid timeline {}: {e}", tl.trace_id);
            return ExitCode::FAILURE;
        }
    }
    let breakdown = StageBreakdown::from_timelines(&q.timelines);
    if has_flag(args, "--json") {
        match serde::json::to_string(&breakdown) {
            Ok(s) => println!("{s}"),
            Err(e) => {
                eprintln!("serialization failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        print!("{}", breakdown.render_table());
    }
    ExitCode::SUCCESS
}

/// Runs the quickstart scenario with the cycle-attribution profiler
/// attached (tracing off — the profile subcommands study cycles, not
/// timelines).
fn profiled_run(args: &[String]) -> Result<(quickstart::Quickstart, Profiler), String> {
    let requests = match flag_value(args, "--requests") {
        Some(v) => v
            .parse::<usize>()
            .map_err(|_| format!("--requests `{v}` is not a number"))?,
        None => quickstart::DEFAULT_REQUESTS,
    };
    let profiler = Profiler::new();
    let q = quickstart::run_scenario(
        &Tracer::disabled(),
        &profiler,
        requests,
        has_flag(args, "--ranked"),
    );
    Ok((q, profiler))
}

/// Ground truth for attribution coverage: the cycle total the VM itself
/// published into `vm/run_cycles`.
fn vm_total(q: &quickstart::Quickstart) -> Option<u64> {
    q.syrupd
        .telemetry_snapshot()
        .histogram("vm/run_cycles")
        .map(|h| h.sum())
}

fn cmd_profile_record(args: &[String]) -> ExitCode {
    let (q, profiler) = match profiled_run(args) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let report = profiler.report(vm_total(&q), 10);
    println!(
        "profiled {} requests: {} VM runs, {} cycles attributed ({:.1}% of vm/run_cycles)",
        q.completed,
        report.runs,
        report.attributed_cycles,
        report.coverage * 100.0
    );
    if let Some(path) = flag_value(args, "--flame-out") {
        let flame = profiler.flame();
        if let Err(e) = std::fs::write(path, &flame) {
            eprintln!("cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!(
            "wrote {} folded stacks to {path} (inferno flamegraph / speedscope format)",
            flame.lines().count()
        );
    }
    ExitCode::SUCCESS
}

fn cmd_profile_report(args: &[String]) -> ExitCode {
    let (q, profiler) = match profiled_run(args) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let top = match flag_value(args, "--top") {
        Some(v) => match v.parse::<usize>() {
            Ok(n) => n,
            Err(_) => {
                eprintln!("--top `{v}` is not a number");
                return ExitCode::FAILURE;
            }
        },
        None => 10,
    };
    let report = profiler.report(vm_total(&q), top);
    if has_flag(args, "--json") {
        match serde::json::to_string(&report) {
            Ok(s) => println!("{s}"),
            Err(e) => {
                eprintln!("serialization failed: {e}");
                return ExitCode::FAILURE;
            }
        }
        return ExitCode::SUCCESS;
    }
    println!(
        "{} VM runs, {} of {} cycles attributed ({:.1}% coverage)\n",
        report.runs,
        report.attributed_cycles,
        report.total_cycles,
        report.coverage * 100.0
    );
    println!("{:<24} {:>12} {:>8}", "program", "cycles", "share");
    for p in &report.progs {
        println!("{:<24} {:>12} {:>7.1}%", p.prog, p.cycles, p.share * 100.0);
    }
    println!(
        "\n{:<24} {:>5} {:>12}  insn",
        "hotspot (program)", "pc", "cycles"
    );
    for h in &report.hotspots {
        println!(
            "{:<24} {:>5} {:>12}  {}",
            h.prog,
            h.pc,
            h.cycles,
            h.insn.as_deref().unwrap_or("-")
        );
    }
    println!("\n{:<16} {:>8} {:>12}", "helper", "calls", "cycles");
    for h in &report.helpers {
        println!("{:<16} {:>8} {:>12}", h.helper, h.calls, h.cycles);
    }
    ExitCode::SUCCESS
}

fn cmd_profile_flame(args: &[String]) -> ExitCode {
    let (_q, profiler) = match profiled_run(args) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let flame = profiler.flame();
    match flag_value(args, "--out") {
        Some(path) => {
            if let Err(e) = std::fs::write(path, &flame) {
                eprintln!("cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
            println!("wrote {} folded stacks to {path}", flame.lines().count());
        }
        None => print!("{flame}"),
    }
    ExitCode::SUCCESS
}

fn cmd_profile_pressure(args: &[String]) -> ExitCode {
    let (q, profiler) = match profiled_run(args) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let pressure = profiler.pressure();
    // A standing SLO over the VM's cycle budget: quickstart policies are
    // tiny, so a 10k-cycle p99 only burns when something regresses badly.
    let mut monitor = SloMonitor::new().with_rule(SloRule::new("vm/run_cycles", 0.99, 10_000));
    let now_ns = 1_000 + q.completed * 2_000;
    let burns = monitor.observe(now_ns, &q.syrupd.telemetry_snapshot());
    let statuses = monitor.statuses();
    if has_flag(args, "--json") {
        let (Ok(p), Ok(s), Ok(b)) = (
            serde::json::to_string(&pressure),
            serde::json::to_string(&statuses),
            serde::json::to_string(&burns),
        ) else {
            eprintln!("serialization failed");
            return ExitCode::FAILURE;
        };
        println!("{{\"pressure\":{p},\"slo\":{{\"statuses\":{s},\"burns\":{b}}}}}");
        return ExitCode::SUCCESS;
    }
    println!(
        "{:<10} {:>6} {:>8} {:>9} {:>9} {:>6}",
        "component", "queues", "samples", "max_depth", "max/mean", "gini"
    );
    for c in &pressure.components {
        println!(
            "{:<10} {:>6} {:>8} {:>9} {:>9.2} {:>6.3}",
            c.component, c.queues, c.samples, c.max_depth, c.max_mean_ratio, c.gini
        );
    }
    if !pressure.rank_bands.is_empty() {
        println!(
            "\n{:<10} {:>8} {:>9}  mean depth per rank band",
            "component", "samples", "max_depth"
        );
        for b in &pressure.rank_bands {
            let means: Vec<String> = b.mean_depths.iter().map(|d| format!("{d:.2}")).collect();
            println!(
                "{:<10} {:>8} {:>9}  [{}]",
                b.component,
                b.samples,
                b.max_depth,
                means.join(", ")
            );
        }
    }
    if !pressure.threads.is_empty() {
        println!(
            "\n{:<6} {:>12} {:>12} {:>12} {:>8}",
            "tid", "runnable_ns", "running_ns", "blocked_ns", "starved"
        );
        for t in &pressure.threads {
            println!(
                "{:<6} {:>12} {:>12} {:>12} {:>8}",
                t.tid, t.runnable_ns, t.running_ns, t.blocked_ns, t.starved
            );
        }
    }
    println!(
        "\nscheduling latency: {} samples, mean {:.0} ns, max {} ns; {} starvation events",
        pressure.sched_latency.samples,
        pressure.sched_latency.mean_ns,
        pressure.sched_latency.max_ns,
        pressure.starvation.len()
    );
    for s in &statuses {
        println!(
            "slo {} p{:.0}: value {} vs threshold {} — {}",
            s.metric,
            s.quantile * 100.0,
            s.value.map_or_else(|| "-".to_string(), |v| v.to_string()),
            s.threshold,
            if s.burning { "BURNING" } else { "ok" }
        );
    }
    ExitCode::SUCCESS
}

/// The CI gate: an exported file must parse as JSON and hold at least one
/// complete trace (closed by an `end` instant) whose spans cover at least
/// three distinct hooks.
fn cmd_trace_validate(args: &[String]) -> ExitCode {
    let Some(path) = args.first() else {
        eprintln!("usage: syrupctl trace validate PATH");
        return ExitCode::FAILURE;
    };
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let value = match serde::json::from_str(&text) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("{path} is not valid JSON: {e}");
            return ExitCode::FAILURE;
        }
    };
    let Some(events) = value.get("traceEvents").and_then(|e| e.as_array()) else {
        eprintln!("{path}: no `traceEvents` array");
        return ExitCode::FAILURE;
    };
    const HOOK_STAGES: [&str; 6] = [
        "xdp-offload",
        "xdp-drv",
        "xdp-skb",
        "cpu-redirect",
        "socket-select",
        "thread-scheduler",
    ];
    // trace id -> (hook stages seen, closed by an `end` instant).
    let mut traces: std::collections::BTreeMap<u64, (std::collections::BTreeSet<&str>, bool)> =
        std::collections::BTreeMap::new();
    for ev in events {
        let Some(id) = ev
            .get("args")
            .and_then(|a| a.get("trace_id"))
            .and_then(|v| v.as_u64())
        else {
            continue; // metadata events
        };
        let Some(stage) = ev
            .get("args")
            .and_then(|a| a.get("stage"))
            .and_then(|v| v.as_str())
        else {
            continue;
        };
        let entry = traces.entry(id).or_default();
        if let Some(&s) = HOOK_STAGES.iter().find(|&&s| s == stage) {
            entry.0.insert(s);
        }
        if stage == "end" {
            entry.1 = true;
        }
    }
    let good = traces
        .values()
        .filter(|(hooks, closed)| *closed && hooks.len() >= 3)
        .count();
    if good == 0 {
        eprintln!(
            "{path}: {} traces, none complete with spans from >=3 distinct hooks",
            traces.len()
        );
        return ExitCode::FAILURE;
    }
    println!(
        "{path}: OK — {} events, {} traces, {good} complete multi-hook traces",
        events.len(),
        traces.len()
    );
    ExitCode::SUCCESS
}

/// Everything a flight-recorded quickstart run produces: the scenario
/// artifacts plus the recorder, profiler, and the telemetry snapshot
/// taken the moment the rings froze (final snapshot when no trigger
/// fired).
struct RecordedRun {
    q: quickstart::Quickstart,
    recorder: Recorder,
    profiler: Profiler,
    at_freeze: Snapshot,
}

/// Runs the quickstart with the flight recorder attached at every layer
/// (tracer and profiler too — the postmortem bundle wants all three
/// pillars). `--inject-burn` arms a deliberately-impossible SLO (one
/// cycle of p99 VM budget) and evaluates it mid-run, so the burn trigger
/// freezes the rings with a healthy pre-trigger window on both sides.
/// `--trigger-manual` pulls the handle directly at the halfway mark.
fn recorded_run(args: &[String]) -> Result<RecordedRun, String> {
    let requests = match flag_value(args, "--requests") {
        Some(v) => v
            .parse::<usize>()
            .map_err(|_| format!("--requests `{v}` is not a number"))?,
        None => quickstart::DEFAULT_REQUESTS,
    };
    let inject = has_flag(args, "--inject-burn");
    let manual = has_flag(args, "--trigger-manual");
    let recorder = Recorder::new();
    let profiler = Profiler::new();
    profiler.attach_blackbox(&recorder);
    let tracer = Tracer::new();
    let mut monitor = SloMonitor::new().with_rule(SloRule::new("vm/run_cycles", 0.99, 1));
    monitor.attach_blackbox(&recorder);
    // Evaluate the injected SLO only once half the requests are through,
    // so the frozen window holds events from every layer.
    let fire_at = (requests as u64 / 2).max(1);
    let mut at_freeze: Option<Snapshot> = None;
    let rec = recorder.clone();
    let q = quickstart::run_observed(
        &tracer,
        &profiler,
        &recorder,
        requests,
        has_flag(args, "--ranked"),
        &mut |completed, now_ns, d| {
            if !rec.frozen() && completed >= fire_at {
                if inject {
                    let _ = monitor.observe(now_ns, &d.telemetry_snapshot());
                } else if manual {
                    rec.trigger_manual("syrupctl blackbox record --trigger-manual");
                }
            }
            if rec.frozen() && at_freeze.is_none() {
                at_freeze = Some(d.telemetry_snapshot());
            }
        },
    );
    let at_freeze = at_freeze.unwrap_or_else(|| q.syrupd.telemetry_snapshot());
    Ok(RecordedRun {
        q,
        recorder,
        profiler,
        at_freeze,
    })
}

fn cmd_blackbox_record(args: &[String]) -> ExitCode {
    let run = match recorded_run(args) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let wanted_trigger = has_flag(args, "--inject-burn") || has_flag(args, "--trigger-manual");
    let pm = run.recorder.capture();
    if wanted_trigger && pm.trigger.is_none() {
        eprintln!("a trigger was requested but the rings never froze");
        return ExitCode::FAILURE;
    }
    // The bundle's telemetry view is the pre-trigger delta: everything
    // the counters accumulated from scenario start up to the freeze, so
    // it correlates with the retained event window.
    let delta = run.at_freeze.delta(&Snapshot::default());
    let (Ok(pm_json), Ok(delta_json), Ok(flame_json)) = (
        serde::json::to_string(&pm),
        serde::json::to_string(&delta),
        serde::json::to_string(&run.profiler.flame()),
    ) else {
        eprintln!("serialization failed");
        return ExitCode::FAILURE;
    };
    let trace_json = chrome_trace_json(&run.q.records);
    let bundle = format!(
        "{{\"schema\":\"syrup-blackbox-bundle/1\",\"completed\":{},\
         \"postmortem\":{pm_json},\"snapshot_delta\":{delta_json},\
         \"trace\":{trace_json},\"flame\":{flame_json}}}",
        run.q.completed
    );
    let trigger_line = match &pm.trigger {
        Some(t) => format!("{} at {} ns ({})", t.cause.as_str(), t.at_ns, t.detail),
        None => "none (live capture)".to_string(),
    };
    println!(
        "captured {} events across layers [{}], {} overwritten; trigger: {trigger_line}",
        pm.total_events(),
        pm.layer_names().join(", "),
        pm.total_dropped()
    );
    match flag_value(args, "--out") {
        Some(path) => {
            if let Err(e) = std::fs::write(path, &bundle) {
                eprintln!("cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
            println!(
                "wrote {} bytes of postmortem bundle to {path}",
                bundle.len()
            );
        }
        None => println!("{bundle}"),
    }
    ExitCode::SUCCESS
}

fn cmd_blackbox_dump(args: &[String]) -> ExitCode {
    let run = match recorded_run(args) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let pm = run.recorder.capture();
    if has_flag(args, "--json") {
        match serde::json::to_string(&pm) {
            Ok(s) => println!("{s}"),
            Err(e) => {
                eprintln!("serialization failed: {e}");
                return ExitCode::FAILURE;
            }
        }
        return ExitCode::SUCCESS;
    }
    println!(
        "{:<8} {:>10} {:<12} {:>6} {:>10} {:>20} {:>20}",
        "layer", "at_ns", "kind", "id", "aux", "w0", "w1"
    );
    for dump in &pm.layers {
        for e in &dump.events {
            println!(
                "{:<8} {:>10} {:<12} {:>6} {:>10} {:>20} {:>20}",
                dump.layer.as_str(),
                e.at_ns,
                e.kind.as_str(),
                e.id,
                e.aux,
                e.w0,
                e.w1
            );
        }
        if dump.dropped > 0 {
            println!(
                "{:<8} ({} older events overwritten)",
                dump.layer.as_str(),
                dump.dropped
            );
        }
    }
    ExitCode::SUCCESS
}

fn cmd_blackbox_report(args: &[String]) -> ExitCode {
    let Some(path) = args.first().filter(|a| !a.starts_with('-')) else {
        eprintln!("usage: syrupctl blackbox report PATH");
        return ExitCode::FAILURE;
    };
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let value = match serde::json::from_str(&text) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("{path} is not valid JSON: {e}");
            return ExitCode::FAILURE;
        }
    };
    let Some(pm) = value.get("postmortem") else {
        eprintln!("{path}: no `postmortem` object (is this a blackbox bundle?)");
        return ExitCode::FAILURE;
    };
    match pm.get("trigger").filter(|t| !t.is_null()) {
        Some(t) => println!(
            "trigger : {} at {} ns — {}",
            t.get("cause").and_then(|v| v.as_str()).unwrap_or("?"),
            t.get("at_ns").and_then(|v| v.as_u64()).unwrap_or(0),
            t.get("detail").and_then(|v| v.as_str()).unwrap_or("")
        ),
        None => println!("trigger : none (live capture)"),
    }
    println!(
        "events  : {} retained, {} overwritten",
        pm.get("total_events").and_then(|v| v.as_u64()).unwrap_or(0),
        pm.get("total_dropped")
            .and_then(|v| v.as_u64())
            .unwrap_or(0)
    );
    if let Some(layers) = pm.get("layers").and_then(|v| v.as_array()) {
        println!("{:<8} {:>8} {:>10}  window", "layer", "events", "dropped");
        for l in layers {
            let events = l.get("events").and_then(|v| v.as_array());
            let n = events.map_or(0, |e| e.len());
            if n == 0 {
                continue;
            }
            let window = events
                .and_then(|e| {
                    let first = e.first()?.get("at_ns")?.as_u64()?;
                    let last = e.last()?.get("at_ns")?.as_u64()?;
                    Some(format!("[{first}, {last}] ns"))
                })
                .unwrap_or_default();
            println!(
                "{:<8} {:>8} {:>10}  {window}",
                l.get("layer").and_then(|v| v.as_str()).unwrap_or("?"),
                n,
                l.get("dropped").and_then(|v| v.as_u64()).unwrap_or(0)
            );
        }
    }
    if let Some(counters) = value
        .get("snapshot_delta")
        .and_then(|d| d.get("counters"))
        .and_then(|c| c.as_object())
    {
        println!("\npre-trigger telemetry delta (top counters):");
        let mut rows: Vec<(&String, u64)> = counters
            .iter()
            .filter_map(|(k, v)| v.as_u64().map(|n| (k, n)))
            .collect();
        rows.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(b.0)));
        for (name, n) in rows.iter().take(10) {
            println!("  {name:<28} +{n}");
        }
    }
    if let Some(trace) = value
        .get("trace")
        .and_then(|t| t.get("traceEvents"))
        .and_then(|e| e.as_array())
    {
        println!("\ntrace   : {} Chrome-trace events bundled", trace.len());
    }
    if let Some(flame) = value.get("flame").and_then(|f| f.as_str()) {
        println!("flame   : {} folded stacks bundled", flame.lines().count());
    }
    ExitCode::SUCCESS
}

/// The CI gate for postmortem bundles: the file must parse, hold a
/// structurally-sound postmortem (every layer dump present, events
/// carrying timestamps and kinds), a snapshot delta, and — with
/// `--min-layers N` — retained events from at least N distinct layers.
fn cmd_blackbox_validate(args: &[String]) -> ExitCode {
    let Some(path) = args.first().filter(|a| !a.starts_with('-')) else {
        eprintln!("usage: syrupctl blackbox validate PATH [--min-layers N]");
        return ExitCode::FAILURE;
    };
    let min_layers = match flag_value(args, "--min-layers") {
        Some(v) => match v.parse::<usize>() {
            Ok(n) => n,
            Err(_) => {
                eprintln!("--min-layers `{v}` is not a number");
                return ExitCode::FAILURE;
            }
        },
        None => 1,
    };
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let value = match serde::json::from_str(&text) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("{path} is not valid JSON: {e}");
            return ExitCode::FAILURE;
        }
    };
    let Some(pm) = value.get("postmortem") else {
        eprintln!("{path}: no `postmortem` object");
        return ExitCode::FAILURE;
    };
    let Some(layers) = pm.get("layers").and_then(|v| v.as_array()) else {
        eprintln!("{path}: postmortem has no `layers` array");
        return ExitCode::FAILURE;
    };
    const LAYER_NAMES: [&str; 7] = ["syrupd", "vm", "nic", "sock", "sched", "ghost", "slo"];
    if layers.len() != LAYER_NAMES.len() {
        eprintln!(
            "{path}: expected {} layer dumps, found {}",
            LAYER_NAMES.len(),
            layers.len()
        );
        return ExitCode::FAILURE;
    }
    let mut populated = 0usize;
    let mut total_events = 0usize;
    for (i, l) in layers.iter().enumerate() {
        let name = l.get("layer").and_then(|v| v.as_str());
        if name != Some(LAYER_NAMES[i]) {
            eprintln!(
                "{path}: layer {i} is `{}`, expected `{}`",
                name.unwrap_or("?"),
                LAYER_NAMES[i]
            );
            return ExitCode::FAILURE;
        }
        let Some(events) = l.get("events").and_then(|v| v.as_array()) else {
            eprintln!("{path}: layer `{}` has no `events` array", LAYER_NAMES[i]);
            return ExitCode::FAILURE;
        };
        for e in events {
            if e.get("at_ns").and_then(|v| v.as_u64()).is_none()
                || e.get("kind").and_then(|v| v.as_str()).is_none()
            {
                eprintln!(
                    "{path}: layer `{}` holds a malformed event (want at_ns + kind)",
                    LAYER_NAMES[i]
                );
                return ExitCode::FAILURE;
            }
        }
        if !events.is_empty() {
            populated += 1;
        }
        total_events += events.len();
    }
    if populated < min_layers {
        eprintln!("{path}: events from only {populated} layers, wanted >= {min_layers}");
        return ExitCode::FAILURE;
    }
    if let Some(t) = pm.get("trigger").filter(|t| !t.is_null()) {
        let cause = t.get("cause").and_then(|v| v.as_str());
        if !matches!(
            cause,
            Some("slo-burn" | "vm-trap" | "starvation" | "manual" | "anomaly")
        ) {
            eprintln!("{path}: unknown trigger cause {cause:?}");
            return ExitCode::FAILURE;
        }
    }
    if value
        .get("snapshot_delta")
        .and_then(|d| d.get("counters"))
        .is_none()
    {
        eprintln!("{path}: no `snapshot_delta.counters` object");
        return ExitCode::FAILURE;
    }
    println!(
        "{path}: OK — {total_events} events from {populated} layers, trigger {}",
        pm.get("trigger")
            .filter(|t| !t.is_null())
            .and_then(|t| t.get("cause"))
            .and_then(|v| v.as_str())
            .unwrap_or("none")
    );
    ExitCode::SUCCESS
}

/// A live `top`-style view of the running scenario: every `--interval`
/// completed requests, one frame showing what moved since the previous
/// frame, computed as a delta between consecutive telemetry snapshots.
fn cmd_watch(args: &[String]) -> ExitCode {
    let requests = match flag_value(args, "--requests") {
        Some(v) => match v.parse::<usize>() {
            Ok(n) => n,
            Err(_) => {
                eprintln!("--requests `{v}` is not a number");
                return ExitCode::FAILURE;
            }
        },
        None => quickstart::DEFAULT_REQUESTS,
    };
    let interval = match flag_value(args, "--interval") {
        Some(v) => match v.parse::<u64>() {
            Ok(n) if n > 0 => n,
            _ => {
                eprintln!("--interval `{v}` is not a positive number");
                return ExitCode::FAILURE;
            }
        },
        None => 16,
    };
    let json = has_flag(args, "--json");
    let recorder = Recorder::new();
    let mut prev = Snapshot::default();
    let mut frame = 0u64;
    let rec = recorder.clone();
    let q = quickstart::run_observed(
        &Tracer::disabled(),
        &Profiler::disabled(),
        &recorder,
        requests,
        has_flag(args, "--ranked"),
        &mut |completed, now_ns, d| {
            if completed % interval != 0 && completed != requests as u64 {
                return;
            }
            frame += 1;
            let snap = d.telemetry_snapshot();
            let delta = snap.delta(&prev);
            if json {
                if let Ok(delta_json) = serde::json::to_string(&delta) {
                    println!(
                        "{{\"frame\":{frame},\"completed\":{completed},\
                         \"now_ns\":{now_ns},\"delta\":{delta_json}}}"
                    );
                }
            } else {
                println!("frame {frame}  completed {completed}/{requests}  now {now_ns} ns");
                let mut rows: Vec<(&String, u64)> =
                    delta.counters.iter().map(|(k, &v)| (k, v)).collect();
                rows.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(b.0)));
                for (name, n) in rows.iter().take(8) {
                    println!("  {name:<28} +{n}");
                }
                for (name, g) in &delta.gauges {
                    println!("  {name:<28} {g:+}");
                }
                println!();
            }
            prev = snap;
        },
    );
    if !json {
        let events: usize = Layer::ALL.iter().map(|&l| rec.events(l).len()).sum();
        println!(
            "watched {} requests over {frame} frames; flight recorder retained {events} events",
            q.completed
        );
    }
    ExitCode::SUCCESS
}
