//! `syrupctl` — the operator's tool for Syrup policies.
//!
//! Subcommands:
//!
//! * `compile <file.c> [-D NAME=VALUE]...` — compile a C-subset policy,
//!   run the verifier, print the disassembly and Table 2-style stats.
//! * `verify-asm <file.s>` — assemble a text-format program and verify it.
//! * `hooks` — list the deployment hooks with their input/executor types.
//! * `demo` — run the §3.1 workflow end to end on a built-in policy.
//!
//! Exit status is nonzero when compilation or verification fails, so the
//! tool slots into CI pipelines that gate policy changes.

use std::process::ExitCode;

use syrup::core::{CompileOptions, Hook};
use syrup::ebpf::maps::MapRegistry;
use syrup::ebpf::{assemble, verify};
use syrup::lang::count_loc;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("compile") => cmd_compile(&args[1..]),
        Some("verify-asm") => cmd_verify_asm(&args[1..]),
        Some("hooks") => cmd_hooks(),
        Some("demo") => cmd_demo(),
        _ => {
            eprintln!(
                "usage: syrupctl <compile FILE.c [-D NAME=VALUE]... | verify-asm FILE.s | hooks | demo>"
            );
            ExitCode::FAILURE
        }
    }
}

fn parse_defines(args: &[String]) -> Result<CompileOptions, String> {
    let mut opts = CompileOptions::new();
    let mut i = 0;
    while i < args.len() {
        if args[i] == "-D" {
            let kv = args
                .get(i + 1)
                .ok_or_else(|| "-D requires NAME=VALUE".to_string())?;
            let (name, value) = kv
                .split_once('=')
                .ok_or_else(|| format!("bad define `{kv}` (want NAME=VALUE)"))?;
            let value: i64 = value
                .parse()
                .map_err(|_| format!("define value `{value}` is not an integer"))?;
            opts = opts.define(name, value);
            i += 2;
        } else {
            i += 1;
        }
    }
    Ok(opts)
}

fn cmd_compile(args: &[String]) -> ExitCode {
    let Some(path) = args.first().filter(|a| !a.starts_with('-')) else {
        eprintln!("usage: syrupctl compile FILE.c [-D NAME=VALUE]...");
        return ExitCode::FAILURE;
    };
    let source = match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let opts = match parse_defines(&args[1..]) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let maps = MapRegistry::new();
    let compiled = match syrup::lang::compile(&source, &opts, &maps) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("compile error: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "; {} — {} LoC, {} instructions",
        path,
        count_loc(&source),
        compiled.program.len()
    );
    for (name, id) in &compiled.created_maps {
        println!("; map `{name}` -> #{}", id.0);
    }
    println!("{}", compiled.program.disasm());
    match verify(&compiled.program, &maps) {
        Ok(info) => {
            println!("; verifier: OK ({} instructions analyzed)", info.analyzed);
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("; verifier: REJECTED — {e}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_verify_asm(args: &[String]) -> ExitCode {
    let Some(path) = args.first() else {
        eprintln!("usage: syrupctl verify-asm FILE.s");
        return ExitCode::FAILURE;
    };
    let source = match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let prog = match assemble(path, &source) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("assembly error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let maps = MapRegistry::new();
    match verify(&prog, &maps) {
        Ok(info) => {
            println!(
                "OK: {} instructions, {} analyzed",
                prog.len(),
                info.analyzed
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("REJECTED: {e}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_hooks() -> ExitCode {
    println!("{:<18} {:<32} executor", "hook", "input");
    for hook in Hook::ALL {
        println!(
            "{:<18} {:<32} {}",
            hook.to_string(),
            hook.input(),
            hook.executor()
        );
    }
    ExitCode::SUCCESS
}

fn cmd_demo() -> ExitCode {
    use syrup::core::{HookMeta, PolicySource, Syrupd};
    let daemon = Syrupd::new();
    let (app, _) = daemon.register_app("demo", &[8080]).expect("fresh daemon");
    daemon
        .deploy(
            app,
            Hook::SocketSelect,
            PolicySource::C {
                source: syrup::policies::c_sources::ROUND_ROBIN.to_string(),
                options: CompileOptions::new().define("NUM_THREADS", 4),
            },
        )
        .expect("demo policy deploys");
    println!("deployed Figure 5a round robin for port 8080; scheduling 8 datagrams:");
    let mut pkt = [0u8; 32];
    for i in 0..8 {
        let meta = HookMeta {
            dst_port: 8080,
            ..HookMeta::default()
        };
        let (_, d) = daemon.schedule(Hook::SocketSelect, &mut pkt, &meta);
        println!("  datagram {i} -> {d:?}");
    }
    ExitCode::SUCCESS
}
