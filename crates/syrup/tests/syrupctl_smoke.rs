//! Smoke tests for every `syrupctl` subcommand: exit codes and the
//! stability of the `--json` output schemas that CI and scripts consume.

use std::path::PathBuf;
use std::process::{Command, Output};

fn syrupctl(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_syrupctl"))
        .args(args)
        .output()
        .expect("syrupctl spawns")
}

fn stdout_of(args: &[&str]) -> String {
    let out = syrupctl(args);
    assert!(
        out.status.success(),
        "`syrupctl {}` failed: {}",
        args.join(" "),
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("utf8 stdout")
}

fn json_of(args: &[&str]) -> serde::json::Value {
    let text = stdout_of(args);
    serde::json::from_str(&text).unwrap_or_else(|e| {
        panic!(
            "`syrupctl {}` emitted bad JSON ({e}): {text}",
            args.join(" ")
        )
    })
}

fn tmp_path(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("syrupctl-smoke-{}-{name}", std::process::id()))
}

#[test]
fn no_args_and_unknown_subcommands_fail_with_usage() {
    for args in [
        &[][..],
        &["frobnicate"][..],
        &["prog"][..],
        &["map"][..],
        &["trace"][..],
    ] {
        let out = syrupctl(args);
        assert!(
            !out.status.success(),
            "`syrupctl {}` should fail",
            args.join(" ")
        );
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(err.contains("usage:"), "stderr should print usage: {err}");
    }
}

#[test]
fn hooks_lists_every_deployment_hook() {
    let out = stdout_of(&["hooks"]);
    for hook in [
        "xdp-drv",
        "cpu-redirect",
        "socket-select",
        "thread-scheduler",
    ] {
        assert!(out.contains(hook), "hooks output missing {hook}: {out}");
    }
}

#[test]
fn demo_runs_the_end_to_end_workflow() {
    let out = stdout_of(&["demo"]);
    assert!(!out.is_empty());
}

#[test]
fn compile_accepts_a_policy_and_rejects_a_missing_file() {
    let src = tmp_path("rr.c");
    std::fs::write(&src, syrup::policies::c_sources::ROUND_ROBIN).unwrap();
    let out = stdout_of(&["compile", src.to_str().unwrap(), "-D", "NUM_THREADS=4"]);
    assert!(out.contains("insns") || out.contains("instructions") || !out.is_empty());
    std::fs::remove_file(&src).ok();

    let missing = syrupctl(&["compile", "/nonexistent/policy.c"]);
    assert!(!missing.status.success());
}

#[test]
fn verify_asm_rejects_an_unverifiable_program() {
    let src = tmp_path("bad.s");
    // No exit: falls off the end, which the verifier must reject.
    std::fs::write(&src, "mov r0, 0\n").unwrap();
    let out = syrupctl(&["verify-asm", src.to_str().unwrap()]);
    assert!(!out.status.success());
    std::fs::remove_file(&src).ok();
}

#[test]
fn prog_list_json_schema_is_stable() {
    let v = json_of(&["prog", "list", "--json"]);
    let rows = v.as_array().expect("array of deployments");
    assert_eq!(rows.len(), 3, "quickstart deploys three policies");
    for row in rows {
        assert!(row.get("app").and_then(|a| a.as_u64()).is_some());
        assert!(row.get("hook").and_then(|h| h.as_str()).is_some());
        let backend = row.get("backend").and_then(|b| b.as_str()).unwrap();
        assert!(
            backend == "native" || backend == "ebpf",
            "backend {backend}"
        );
    }
    assert!(rows.iter().any(|r| {
        r.get("hook").and_then(|h| h.as_str()) == Some("xdp-drv")
            && r.get("backend").and_then(|b| b.as_str()) == Some("ebpf")
    }));
}

#[test]
fn prog_list_surfaces_rank_capable_hooks() {
    // Default scenario: every hook reports ranked=false.
    let v = json_of(&["prog", "list", "--json"]);
    for row in v.as_array().unwrap() {
        assert_eq!(row.get("ranked").and_then(|r| r.as_bool()), Some(false));
    }
    // The ranked variant opts socket-select in and compiles it to eBPF.
    let v = json_of(&["prog", "list", "--json", "--ranked"]);
    let rows = v.as_array().unwrap();
    assert_eq!(rows.len(), 3);
    let sock = rows
        .iter()
        .find(|r| r.get("hook").and_then(|h| h.as_str()) == Some("socket-select"))
        .expect("socket-select deployed");
    assert_eq!(sock.get("ranked").and_then(|r| r.as_bool()), Some(true));
    assert_eq!(sock.get("backend").and_then(|b| b.as_str()), Some("ebpf"));
    for r in rows {
        if r.get("hook").and_then(|h| h.as_str()) != Some("socket-select") {
            assert_eq!(r.get("ranked").and_then(|b| b.as_bool()), Some(false));
        }
    }
}

#[test]
fn queue_list_json_schema_is_stable() {
    let v = json_of(&["queue", "list", "--json"]);
    let rows = v.as_array().expect("array of queues");
    // Four NIC rings + four reuseport sockets.
    assert_eq!(rows.len(), 8);
    for row in rows {
        let component = row.get("component").and_then(|c| c.as_str()).unwrap();
        assert!(component == "nic" || component == "sock", "{component}");
        assert!(row.get("index").and_then(|i| i.as_u64()).is_some());
        assert_eq!(row.get("kind").and_then(|k| k.as_str()), Some("fifo"));
        for field in ["depth", "enqueued", "dropped"] {
            assert!(row.get(field).and_then(|f| f.as_u64()).is_some(), "{field}");
        }
        let bands = row.get("bands").and_then(|b| b.as_array()).unwrap();
        assert_eq!(bands.len(), 4);
    }
    // All 64 requests flowed through the sockets.
    let sock_enqueued: u64 = rows
        .iter()
        .filter(|r| r.get("component").and_then(|c| c.as_str()) == Some("sock"))
        .filter_map(|r| r.get("enqueued").and_then(|e| e.as_u64()))
        .sum();
    assert_eq!(sock_enqueued, 64);

    // The ranked variant swaps the sockets to PIFO, rings stay FIFO.
    let v = json_of(&["queue", "list", "--json", "--ranked"]);
    for row in v.as_array().unwrap() {
        let component = row.get("component").and_then(|c| c.as_str()).unwrap();
        let want = if component == "sock" { "pifo" } else { "fifo" };
        assert_eq!(row.get("kind").and_then(|k| k.as_str()), Some(want));
    }
    // The table form renders both components.
    let table = stdout_of(&["queue", "list", "--ranked"]);
    assert!(table.contains("nic") && table.contains("pifo"), "{table}");
}

#[test]
fn prog_stats_json_reports_ebpf_costs_and_null_for_native() {
    let v = json_of(&["prog", "stats", "--json"]);
    let rows = v
        .get("programs")
        .and_then(|p| p.as_array())
        .expect("programs array");
    assert_eq!(rows.len(), 3);
    for row in rows {
        let backend = row.get("backend").and_then(|b| b.as_str()).unwrap();
        let insns = row.get("insns_per_invocation").expect("key present");
        let cycles = row.get("cycles_per_invocation").expect("key present");
        if backend == "ebpf" {
            assert!(insns.as_f64().unwrap() > 0.0);
            assert!(cycles.as_f64().unwrap() > 0.0);
        } else {
            assert!(insns.as_f64().is_none(), "native insns must be null");
            assert!(cycles.as_f64().is_none(), "native cycles must be null");
        }
    }
    // The envelope reports the active engine and per-backend totals.
    assert!(v.get("engine").and_then(|e| e.as_str()).is_some());
    for field in ["runs_interp", "runs_fast", "cycles_interp", "cycles_fast"] {
        assert!(v.get(field).and_then(|f| f.as_u64()).is_some(), "{field}");
    }
}

/// Like `json_of`, but with `SYRUP_BACKEND` scrubbed from the child
/// environment so the `--backend` flag (not an inherited variable)
/// decides which engine the scenario runs on.
fn json_of_clean_env(args: &[&str]) -> serde::json::Value {
    let out = Command::new(env!("CARGO_BIN_EXE_syrupctl"))
        .args(args)
        .env_remove("SYRUP_BACKEND")
        .output()
        .expect("syrupctl spawns");
    assert!(
        out.status.success(),
        "`syrupctl {}` failed: {}",
        args.join(" "),
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8(out.stdout).expect("utf8 stdout");
    serde::json::from_str(&text).unwrap_or_else(|e| {
        panic!(
            "`syrupctl {}` emitted bad JSON ({e}): {text}",
            args.join(" ")
        )
    })
}

#[test]
fn prog_list_reports_engine_per_row_and_honors_backend_flag() {
    // Default engine: eBPF rows run on the interpreter; native rows
    // bypass the VM and report no engine.
    let v = json_of_clean_env(&["prog", "list", "--json"]);
    for row in v.as_array().unwrap() {
        let backend = row.get("backend").and_then(|b| b.as_str()).unwrap();
        let engine = row.get("engine").expect("engine key present");
        if backend == "ebpf" {
            assert_eq!(engine.as_str(), Some("interp"));
        } else {
            assert!(
                matches!(engine, serde::json::Value::Null),
                "native rows have no engine: {row:?}"
            );
        }
    }
    // `--backend fast` flips every eBPF row to the fast engine.
    let v = json_of_clean_env(&["prog", "list", "--json", "--backend", "fast"]);
    for row in v.as_array().unwrap() {
        if row.get("backend").and_then(|b| b.as_str()) == Some("ebpf") {
            assert_eq!(row.get("engine").and_then(|e| e.as_str()), Some("fast"));
        }
    }
}

#[test]
fn prog_stats_per_backend_counters_follow_the_selected_engine() {
    let v = json_of_clean_env(&["prog", "stats", "--json"]);
    assert_eq!(v.get("engine").and_then(|e| e.as_str()), Some("interp"));
    let runs = |v: &serde::json::Value, k: &str| v.get(k).and_then(|f| f.as_u64()).unwrap();
    assert!(runs(&v, "runs_interp") > 0, "interp ran the scenario");
    assert_eq!(runs(&v, "runs_fast"), 0);
    assert!(runs(&v, "cycles_interp") > 0);
    assert_eq!(runs(&v, "cycles_fast"), 0);

    let f = json_of_clean_env(&["prog", "stats", "--json", "--backend", "fast"]);
    assert_eq!(f.get("engine").and_then(|e| e.as_str()), Some("fast"));
    assert!(runs(&f, "runs_fast") > 0, "fast ran the scenario");
    assert_eq!(runs(&f, "runs_interp"), 0);
    assert!(runs(&f, "cycles_fast") > 0);
    assert_eq!(runs(&f, "cycles_interp"), 0);

    // Both engines model identical per-invocation costs, so the
    // scenario-wide cycle totals agree exactly across backends.
    assert_eq!(runs(&v, "cycles_interp"), runs(&f, "cycles_fast"));
    assert_eq!(runs(&v, "runs_interp"), runs(&f, "runs_fast"));
}

#[test]
fn unknown_backend_is_rejected_before_running_anything() {
    let out = syrupctl(&["prog", "list", "--backend", "warp"]);
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("unknown backend"), "{err}");
}

#[test]
fn map_dump_json_lists_pinned_maps_with_definitions() {
    let v = json_of(&["map", "dump", "--json"]);
    let rows = v.as_array().expect("array of maps");
    assert!(!rows.is_empty());
    for row in rows {
        assert!(row.get("path").and_then(|p| p.as_str()).is_some());
        assert!(row.get("id").and_then(|i| i.as_u64()).is_some());
        assert!(row.get("kind").and_then(|k| k.as_str()).is_some());
        for field in ["key_size", "value_size", "max_entries"] {
            assert!(row.get(field).and_then(|f| f.as_u64()).is_some(), "{field}");
        }
    }
    assert!(rows
        .iter()
        .any(|r| r.get("path").and_then(|p| p.as_str()) == Some("/syrup/1/__globals")));
}

#[test]
fn map_get_reads_a_value_and_fails_on_unknown_paths() {
    let out = stdout_of(&["map", "get", "/syrup/1/__globals", "0"]);
    out.trim().parse::<u64>().expect("a u64 value");

    let missing = syrupctl(&["map", "get", "/not/pinned", "0"]);
    assert!(!missing.status.success());
    let bad_key = syrupctl(&["map", "get", "/syrup/1/__globals", "not-a-number"]);
    assert!(!bad_key.status.success());
}

#[test]
fn metrics_json_is_a_snapshot_object() {
    let v = json_of(&["metrics", "--json"]);
    let counters = v.get("counters").expect("counters key");
    assert!(counters
        .get("app1/xdp-drv/invocations")
        .and_then(|c| c.as_u64())
        .is_some_and(|n| n > 0));
    // The table form renders too.
    let table = stdout_of(&["metrics"]);
    assert!(table.contains("app1/xdp-drv/invocations"), "{table}");
}

#[test]
fn metrics_openmetrics_exposition_passes_the_checker() {
    let text = stdout_of(&["metrics", "--openmetrics"]);
    assert!(text.ends_with("# EOF\n"), "missing EOF terminator");
    let samples = syrup::scope::check_exposition(&text).expect("exposition parses");
    assert!(samples > 10, "only {samples} samples");
    assert!(text.contains("# TYPE syrup_app1_xdp_drv_invocations counter"));
    assert!(text.contains("syrup_app1_xdp_drv_invocations_total 64"));
}

#[test]
fn metrics_shards_adds_a_per_shard_breakdown() {
    // Without the flag the JSON schema is the bare snapshot (scripts
    // depend on it); with it, snapshot + per-shard wheel stats.
    let v = json_of(&["metrics", "--shards", "4", "--json"]);
    let snap = v.get("snapshot").expect("snapshot key");
    let pushes = snap
        .get("counters")
        .and_then(|c| c.get("sim/wheel_pushes"))
        .and_then(|n| n.as_u64())
        .expect("wheel pushes counter");
    let shards = v.get("shards").and_then(|s| s.as_array()).expect("shards");
    assert_eq!(shards.len(), 4);
    let split: u64 = shards
        .iter()
        .map(|s| s.get("pushes").and_then(|n| n.as_u64()).unwrap())
        .sum();
    assert_eq!(
        split, pushes,
        "per-shard pushes reconcile with the registry"
    );
    for s in shards {
        for key in [
            "shard",
            "len",
            "pops",
            "cascaded",
            "clamped",
            "wheel_drift_ns",
        ] {
            assert!(s.get(key).is_some(), "missing {key}: {s:?}");
        }
    }
    // The table form appends the breakdown under the snapshot.
    let table = stdout_of(&["metrics", "--shards", "4"]);
    assert!(table.contains("wheel_drift_ns"), "{table}");
}

#[test]
fn top_json_streams_frames_then_a_summary() {
    let out = stdout_of(&[
        "top", "--flows", "400", "--shards", "2", "--frames", "3", "--json",
    ]);
    let lines: Vec<serde::json::Value> = out
        .lines()
        .map(|l| serde::json::from_str(l).expect("each line is one JSON object"))
        .collect();
    let frames: Vec<_> = lines.iter().filter(|l| l.get("frame").is_some()).collect();
    let summaries: Vec<_> = lines
        .iter()
        .filter(|l| l.get("summary").is_some())
        .collect();
    assert!(!frames.is_empty() && frames.len() <= 3, "{}", frames.len());
    assert_eq!(summaries.len(), 1);
    for f in &frames {
        let shards = f.get("shards").and_then(|s| s.as_array()).expect("shards");
        assert_eq!(shards.len(), 2);
        for s in shards {
            for key in ["events", "barrier_wait_ns", "stall_pct", "occupancy"] {
                assert!(s.get(key).is_some(), "missing {key}: {s:?}");
            }
        }
    }
    let summary = summaries[0].get("summary").unwrap();
    assert!(summary
        .get("events")
        .and_then(|n| n.as_u64())
        .is_some_and(|n| n > 0));
    assert!(summary.get("rank_bands").is_some());
}

#[test]
fn trace_record_export_validate_round_trip() {
    let export = tmp_path("trace.json");
    let summary = stdout_of(&[
        "trace",
        "record",
        "--scenario",
        "quickstart",
        "--export",
        export.to_str().unwrap(),
    ]);
    assert!(summary.contains("recorded"), "{summary}");

    let verdict = stdout_of(&["trace", "validate", export.to_str().unwrap()]);
    assert!(verdict.contains("OK"), "{verdict}");

    // The export is Chrome-trace JSON with the expected envelope.
    let raw = std::fs::read_to_string(&export).unwrap();
    let v: serde::json::Value = serde::json::from_str(&raw).expect("export parses");
    assert!(v
        .get("traceEvents")
        .and_then(|e| e.as_array())
        .is_some_and(|e| !e.is_empty()));
    std::fs::remove_file(&export).ok();

    let missing = syrupctl(&["trace", "validate", "/nonexistent/trace.json"]);
    assert!(!missing.status.success());
}

#[test]
fn trace_export_shorthand_writes_the_file() {
    let export = tmp_path("shorthand.json");
    stdout_of(&["trace", "export", export.to_str().unwrap()]);
    assert!(export.exists());
    std::fs::remove_file(&export).ok();
}

#[test]
fn trace_report_json_schema_is_stable() {
    let v = json_of(&["trace", "report", "--scenario", "quickstart", "--json"]);
    assert!(v
        .get("traces")
        .and_then(|t| t.as_u64())
        .is_some_and(|n| n > 0));
    assert!(v.get("dropped").and_then(|d| d.as_u64()).is_some());
    for field in ["total_p50_ns", "total_p99_ns", "total_p999_ns"] {
        assert!(v.get(field).and_then(|f| f.as_u64()).is_some(), "{field}");
    }
    let stages = v
        .get("stages")
        .and_then(|s| s.as_array())
        .expect("stages array");
    assert!(stages.len() >= 3);
    for s in stages {
        assert!(s.get("stage").and_then(|n| n.as_str()).is_some());
        assert!(s.get("mean_ns").and_then(|f| f.as_f64()).is_some());
        for field in ["count", "p50_ns", "p99_ns", "p999_ns", "max_ns"] {
            assert!(s.get(field).and_then(|f| f.as_u64()).is_some(), "{field}");
        }
    }
    // The table form renders the same stages.
    let table = stdout_of(&["trace", "report", "--scenario", "quickstart"]);
    assert!(
        table.contains("STAGE") && table.contains("end-to-end"),
        "{table}"
    );

    // An unknown scenario is an error, not an empty report.
    let bad = syrupctl(&["trace", "report", "--scenario", "nope"]);
    assert!(!bad.status.success());
}

#[test]
fn profile_record_writes_folded_flame_output() {
    let flame_path = tmp_path("flame.folded");
    let summary = stdout_of(&[
        "profile",
        "record",
        "--requests",
        "32",
        "--flame-out",
        flame_path.to_str().unwrap(),
    ]);
    assert!(summary.contains("100.0% of vm/run_cycles"), "{summary}");

    // Collapsed-stack format: `frame;frame;... count` per line.
    let flame = std::fs::read_to_string(&flame_path).unwrap();
    assert!(!flame.trim().is_empty());
    for line in flame.lines() {
        let (stack, count) = line.rsplit_once(' ').expect("space-separated count");
        assert!(stack.contains(';'), "multi-frame stack: {line}");
        assert!(stack.starts_with("vm;"), "vm layer root: {line}");
        count.parse::<u64>().expect("numeric suffix");
    }
    std::fs::remove_file(&flame_path).ok();

    // `profile flame` prints the same folded lines to stdout.
    let direct = stdout_of(&["profile", "flame", "--requests", "32"]);
    assert_eq!(direct.lines().count(), flame.lines().count());
}

#[test]
fn profile_report_json_schema_is_stable() {
    let v = json_of(&["profile", "report", "--json", "--top", "5"]);
    assert!(v
        .get("runs")
        .and_then(|r| r.as_u64())
        .is_some_and(|n| n > 0));
    let total = v.get("total_cycles").and_then(|t| t.as_u64()).unwrap();
    let attributed = v.get("attributed_cycles").and_then(|a| a.as_u64()).unwrap();
    assert_eq!(attributed, total, "every VM cycle lands in a PC bucket");
    assert!(v
        .get("coverage")
        .and_then(|c| c.as_f64())
        .is_some_and(|c| c >= 0.95));
    let hotspots = v.get("hotspots").and_then(|h| h.as_array()).unwrap();
    assert!(!hotspots.is_empty() && hotspots.len() <= 5);
    for h in hotspots {
        assert!(h.get("prog").and_then(|p| p.as_str()).is_some());
        assert!(h.get("pc").and_then(|p| p.as_u64()).is_some());
        assert!(h
            .get("cycles")
            .and_then(|c| c.as_u64())
            .is_some_and(|c| c > 0));
        assert!(
            h.get("insn").and_then(|i| i.as_str()).is_some(),
            "annotated"
        );
    }
    let helpers = v.get("helpers").and_then(|h| h.as_array()).unwrap();
    assert!(helpers
        .iter()
        .any(|h| h.get("helper").and_then(|n| n.as_str()) == Some("tail_call")));
    // The table form renders too.
    let table = stdout_of(&["profile", "report"]);
    assert!(
        table.contains("coverage") && table.contains("helper"),
        "{table}"
    );
}

#[test]
fn profile_pressure_json_reports_components_and_slo() {
    let v = json_of(&["profile", "pressure", "--json"]);
    let components = v
        .get("pressure")
        .and_then(|p| p.get("components"))
        .and_then(|c| c.as_array())
        .expect("components array");
    let names: Vec<&str> = components
        .iter()
        .filter_map(|c| c.get("component").and_then(|n| n.as_str()))
        .collect();
    assert!(
        names.contains(&"nic") && names.contains(&"sock"),
        "{names:?}"
    );
    for c in components {
        assert!(c.get("gini").and_then(|g| g.as_f64()).is_some());
        assert!(c.get("max_mean_ratio").and_then(|g| g.as_f64()).is_some());
        assert!(c
            .get("samples")
            .and_then(|s| s.as_u64())
            .is_some_and(|s| s > 0));
    }
    let statuses = v
        .get("slo")
        .and_then(|s| s.get("statuses"))
        .and_then(|s| s.as_array())
        .expect("slo statuses");
    assert_eq!(
        statuses[0].get("metric").and_then(|m| m.as_str()),
        Some("vm/run_cycles")
    );
    // The quickstart's tiny policies stay well under the cycle SLO.
    assert_eq!(
        statuses[0].get("burning").and_then(|b| b.as_bool()),
        Some(false)
    );
    assert!(v
        .get("slo")
        .and_then(|s| s.get("burns"))
        .and_then(|b| b.as_array())
        .is_some_and(|b| b.is_empty()));
}

#[test]
fn profile_pressure_ranked_reports_rank_band_occupancy() {
    // Unranked: the rank_bands key exists and stays empty.
    let v = json_of(&["profile", "pressure", "--json"]);
    assert!(v
        .get("pressure")
        .and_then(|p| p.get("rank_bands"))
        .and_then(|b| b.as_array())
        .is_some_and(|b| b.is_empty()));

    // Ranked: the PIFO sockets contribute a per-band series.
    let v = json_of(&["profile", "pressure", "--json", "--ranked"]);
    let bands = v
        .get("pressure")
        .and_then(|p| p.get("rank_bands"))
        .and_then(|b| b.as_array())
        .expect("rank_bands array");
    let sock = bands
        .iter()
        .find(|b| b.get("component").and_then(|c| c.as_str()) == Some("sock"))
        .expect("sock band series");
    assert!(sock
        .get("samples")
        .and_then(|s| s.as_u64())
        .is_some_and(|s| s > 0));
    let means = sock
        .get("mean_depths")
        .and_then(|m| m.as_array())
        .expect("mean_depths");
    assert!(means.iter().any(|d| d.as_f64().is_some_and(|d| d > 0.0)));
    // The table form renders the band section.
    let table = stdout_of(&["profile", "pressure", "--ranked"]);
    assert!(table.contains("mean depth per rank band"), "{table}");
}

#[test]
fn trace_record_respects_requests_and_sampling_flags() {
    let out = stdout_of(&["trace", "record", "--requests", "32", "--sample", "8"]);
    // 32 ingresses sampled 1-in-8 → exactly 4 traces.
    assert!(out.contains("across 4 traces"), "{out}");
    let bad = syrupctl(&["trace", "record", "--requests", "zero"]);
    assert!(!bad.status.success());
}
