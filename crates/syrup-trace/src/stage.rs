//! The stages an input can traverse, in stack order.

use core::fmt;

/// A point (or interval) in an input's journey through the stack.
///
/// One variant per Figure 4 hook, plus the surrounding machinery a
/// request passes through between hooks. Stage names are stable — they
/// key the per-stage latency breakdown, the Perfetto track names, and the
/// `syrupctl trace report` output.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Stage {
    /// Trace start: the input hit the wire / was generated.
    Ingress,
    /// NIC steering decision (RSS / flow rule / offloaded policy).
    NicSteer,
    /// Residency in a NIC RX descriptor ring.
    NicQueue,
    /// Policy at the NIC-offload XDP hook.
    XdpOffload,
    /// Policy at the XDP native/driver hook.
    XdpDrv,
    /// Policy at the XDP generic (SKB) hook.
    XdpSkb,
    /// Policy at the CPU-redirect hook.
    CpuRedirect,
    /// Kernel RX path work (IRQ, SKB, protocol processing).
    StackRx,
    /// Policy at the socket-select hook.
    SocketSelect,
    /// Residency in a socket receive buffer.
    SockQueue,
    /// Policy at the thread-scheduler hook.
    ThreadScheduler,
    /// One eBPF VM invocation (root dispatch + tail-called policy).
    VmExec,
    /// ghOSt: wakeup message queued to the agent until its decision.
    GhostEnqueue,
    /// ghOSt: decision committed until the thread runs (ctx switch / IPI).
    GhostDispatch,
    /// ghOSt: a running thread was preempted (instant).
    GhostPreempt,
    /// Worker thread executing the request (syscalls + service time).
    Run,
    /// Policy deployed / torn down (global instant).
    PolicyLifecycle,
    /// Trace end: the request completed.
    End,
}

impl Stage {
    /// Every stage, in stack order (NIC first).
    pub const ALL: [Stage; 18] = [
        Stage::Ingress,
        Stage::NicSteer,
        Stage::NicQueue,
        Stage::XdpOffload,
        Stage::XdpDrv,
        Stage::XdpSkb,
        Stage::CpuRedirect,
        Stage::StackRx,
        Stage::SocketSelect,
        Stage::SockQueue,
        Stage::ThreadScheduler,
        Stage::VmExec,
        Stage::GhostEnqueue,
        Stage::GhostDispatch,
        Stage::GhostPreempt,
        Stage::Run,
        Stage::PolicyLifecycle,
        Stage::End,
    ];

    /// Stable short name (breakdown keys, Perfetto event names).
    pub fn as_str(self) -> &'static str {
        match self {
            Stage::Ingress => "ingress",
            Stage::NicSteer => "nic-steer",
            Stage::NicQueue => "nic-queue",
            Stage::XdpOffload => "xdp-offload",
            Stage::XdpDrv => "xdp-drv",
            Stage::XdpSkb => "xdp-skb",
            Stage::CpuRedirect => "cpu-redirect",
            Stage::StackRx => "stack-rx",
            Stage::SocketSelect => "socket-select",
            Stage::SockQueue => "sock-queue",
            Stage::ThreadScheduler => "thread-scheduler",
            Stage::VmExec => "vm-exec",
            Stage::GhostEnqueue => "ghost-enqueue",
            Stage::GhostDispatch => "ghost-dispatch",
            Stage::GhostPreempt => "ghost-preempt",
            Stage::Run => "run",
            Stage::PolicyLifecycle => "policy-lifecycle",
            Stage::End => "end",
        }
    }

    /// The layer of the stack this stage belongs to (Perfetto category,
    /// report grouping).
    pub fn layer(self) -> &'static str {
        match self {
            Stage::Ingress | Stage::End => "trace",
            Stage::NicSteer | Stage::NicQueue | Stage::XdpOffload => "nic",
            Stage::XdpDrv | Stage::XdpSkb | Stage::CpuRedirect | Stage::StackRx => "kernel",
            Stage::SocketSelect | Stage::SockQueue => "socket",
            Stage::ThreadScheduler
            | Stage::GhostEnqueue
            | Stage::GhostDispatch
            | Stage::GhostPreempt => "thread",
            Stage::VmExec => "vm",
            Stage::Run => "app",
            Stage::PolicyLifecycle => "syrupd",
        }
    }

    /// The stage at which a policy deployed to the named hook runs.
    /// Names follow `Hook::name()` in `syrup-core`; unknown names map to
    /// [`Stage::VmExec`] (a policy invocation of unknown placement).
    pub fn for_hook(hook_name: &str) -> Stage {
        match hook_name {
            "xdp-offload" => Stage::XdpOffload,
            "xdp-drv" => Stage::XdpDrv,
            "xdp-skb" => Stage::XdpSkb,
            "cpu-redirect" => Stage::CpuRedirect,
            "socket-select" => Stage::SocketSelect,
            "thread-scheduler" => Stage::ThreadScheduler,
            _ => Stage::VmExec,
        }
    }

    /// Whether records at this stage are always instants (no duration).
    pub fn is_instant(self) -> bool {
        matches!(
            self,
            Stage::Ingress
                | Stage::NicSteer
                | Stage::GhostPreempt
                | Stage::PolicyLifecycle
                | Stage::End
        )
    }
}

impl fmt::Display for Stage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_unique_and_stable() {
        let mut names: Vec<&str> = Stage::ALL.iter().map(|s| s.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), Stage::ALL.len());
        assert_eq!(Stage::SocketSelect.to_string(), "socket-select");
    }

    #[test]
    fn hook_names_round_trip() {
        for hook in [
            "xdp-offload",
            "xdp-drv",
            "xdp-skb",
            "cpu-redirect",
            "socket-select",
            "thread-scheduler",
        ] {
            assert_eq!(Stage::for_hook(hook).as_str(), hook);
        }
        assert_eq!(Stage::for_hook("something-else"), Stage::VmExec);
    }

    #[test]
    fn every_stage_has_a_layer() {
        for s in Stage::ALL {
            assert!(!s.layer().is_empty());
        }
    }
}
