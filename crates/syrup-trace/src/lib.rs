//! Cross-stack request tracing for the Syrup scheduling stack.
//!
//! Syrup's core claim is that policies at *different layers* cooperate on
//! the same input (§3–§4: NIC steering → XDP tier → CPU redirect → socket
//! select → thread scheduler). Per-hook counters (see `syrup-telemetry`)
//! see each layer in isolation; this crate follows *one input's journey*
//! across all of them:
//!
//! * [`Tracer`] assigns each sampled input a [`TraceId`] at ingress and
//!   hands back a [`TraceCtx`] that the substrates thread alongside the
//!   packet/connection/thread-wakeup.
//! * Every stage the input traverses records a [`SpanRecord`] — NIC queue
//!   residency, each policy invocation (with verdict and the VM's cycle
//!   account), socket queueing, ghOSt enqueue → dispatch → run.
//! * [`reconstruct`] groups the records into per-request [`Timeline`]s,
//!   [`StageBreakdown`] attributes p50/p99/p99.9 latency to stages
//!   ("where did the tail come from"), and [`chrome_trace_json`] exports
//!   Chrome-trace/Perfetto JSON viewable in `about:tracing` or
//!   <https://ui.perfetto.dev>.
//!
//! The cost contract matches `syrup-telemetry`: a [`Tracer::disabled`]
//! tracer (and any unsampled input) reduces every span site to a single
//! branch on a `Copy` value — the low-ns band, proven by
//! `bench/benches/trace.rs`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod report;
mod span;
mod stage;
mod timeline;
mod tracer;

pub use report::{StageBreakdown, StageStats};
pub use span::{chrome_trace_json, SpanKind, SpanRecord};
pub use stage::Stage;
pub use timeline::{reconstruct, Timeline, TimelineError};
pub use tracer::{TraceConfig, TraceCtx, TraceId, Tracer};
