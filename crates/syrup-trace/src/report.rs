//! Per-stage latency attribution across a set of timelines.

use crate::span::SpanKind;
use crate::stage::Stage;
use crate::timeline::Timeline;
use serde::{Serialize, SerializeStruct, Serializer};
use std::fmt::Write as _;

/// Latency statistics for one stage, aggregated over every complete span
/// recorded at it.
#[derive(Debug, Clone, PartialEq)]
pub struct StageStats {
    /// The stage.
    pub stage: Stage,
    /// Number of complete spans observed.
    pub count: u64,
    /// Sum of span durations, ns.
    pub total_ns: u64,
    /// Mean span duration, ns.
    pub mean_ns: f64,
    /// Median span duration, ns.
    pub p50_ns: u64,
    /// 99th-percentile span duration, ns.
    pub p99_ns: u64,
    /// 99.9th-percentile span duration, ns.
    pub p999_ns: u64,
    /// Largest span duration, ns.
    pub max_ns: u64,
}

impl Serialize for StageStats {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut s = serializer.serialize_struct("StageStats", 8)?;
        s.serialize_field("stage", &self.stage.as_str())?;
        s.serialize_field("count", &self.count)?;
        s.serialize_field("total_ns", &self.total_ns)?;
        s.serialize_field("mean_ns", &self.mean_ns)?;
        s.serialize_field("p50_ns", &self.p50_ns)?;
        s.serialize_field("p99_ns", &self.p99_ns)?;
        s.serialize_field("p999_ns", &self.p999_ns)?;
        s.serialize_field("max_ns", &self.max_ns)?;
        s.end()
    }
}

/// The per-stage latency breakdown: where do requests spend their time,
/// and which stages drive the tail.
#[derive(Debug, Clone)]
pub struct StageBreakdown {
    /// Timelines aggregated.
    pub traces: u64,
    /// Of those, traces closed by a drop.
    pub dropped: u64,
    /// End-to-end (ingress → close) percentiles, ns: (p50, p99, p999).
    pub total: Option<(u64, u64, u64)>,
    /// Stats per stage with at least one complete span, stack order.
    pub stages: Vec<StageStats>,
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    // A non-finite or out-of-range p degrades to the nearest endpoint
    // rather than indexing with garbage.
    let p = if p.is_finite() {
        p.clamp(0.0, 1.0)
    } else {
        0.0
    };
    let rank = ((sorted.len() as f64) * p).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

impl StageBreakdown {
    /// Aggregates every complete span across `timelines` into per-stage
    /// stats, plus end-to-end percentiles over closed traces.
    pub fn from_timelines(timelines: &[Timeline]) -> Self {
        let mut per_stage: Vec<Vec<u64>> = vec![Vec::new(); Stage::ALL.len()];
        let mut totals: Vec<u64> = Vec::new();
        let mut dropped = 0u64;
        for tl in timelines {
            if tl.is_dropped() {
                dropped += 1;
            }
            if let Some(t) = tl.total_ns() {
                totals.push(t);
            }
            for r in &tl.records {
                if r.kind == SpanKind::Complete {
                    let idx = Stage::ALL.iter().position(|s| *s == r.stage).unwrap_or(0);
                    per_stage[idx].push(r.duration_ns());
                }
            }
        }
        totals.sort_unstable();
        let total = if totals.is_empty() {
            None
        } else {
            Some((
                percentile(&totals, 0.50),
                percentile(&totals, 0.99),
                percentile(&totals, 0.999),
            ))
        };
        let stages = Stage::ALL
            .iter()
            .zip(per_stage.iter_mut())
            .filter(|(_, durs)| !durs.is_empty())
            .map(|(stage, durs)| {
                durs.sort_unstable();
                let count = durs.len() as u64;
                let total_ns: u64 = durs.iter().sum();
                StageStats {
                    stage: *stage,
                    count,
                    total_ns,
                    mean_ns: total_ns as f64 / count as f64,
                    p50_ns: percentile(durs, 0.50),
                    p99_ns: percentile(durs, 0.99),
                    p999_ns: percentile(durs, 0.999),
                    max_ns: *durs.last().unwrap(),
                }
            })
            .collect();
        StageBreakdown {
            traces: timelines.len() as u64,
            dropped,
            total,
            stages,
        }
    }

    /// Stats for one stage, if any complete span was recorded at it.
    /// Stages that never completed a span (zero samples) are absent from
    /// [`StageBreakdown::stages`] rather than present with garbage
    /// percentiles, so querying them returns `None`.
    pub fn stage(&self, stage: Stage) -> Option<&StageStats> {
        self.stages.iter().find(|s| s.stage == stage)
    }

    /// Renders the breakdown as an aligned text table (the body of
    /// `syrupctl trace report`).
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "traces: {}  dropped: {}", self.traces, self.dropped);
        if let Some((p50, p99, p999)) = self.total {
            let _ = writeln!(
                out,
                "end-to-end: p50 {p50} ns  p99 {p99} ns  p99.9 {p999} ns"
            );
        }
        let _ = writeln!(
            out,
            "{:<18} {:>8} {:>12} {:>12} {:>12} {:>12} {:>12}",
            "STAGE", "COUNT", "MEAN(ns)", "P50(ns)", "P99(ns)", "P99.9(ns)", "MAX(ns)"
        );
        for s in &self.stages {
            let _ = writeln!(
                out,
                "{:<18} {:>8} {:>12.1} {:>12} {:>12} {:>12} {:>12}",
                s.stage.as_str(),
                s.count,
                s.mean_ns,
                s.p50_ns,
                s.p99_ns,
                s.p999_ns,
                s.max_ns
            );
        }
        out
    }
}

impl Serialize for StageBreakdown {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut s = serializer.serialize_struct("StageBreakdown", 6)?;
        s.serialize_field("traces", &self.traces)?;
        s.serialize_field("dropped", &self.dropped)?;
        match self.total {
            Some((p50, p99, p999)) => {
                s.serialize_field("total_p50_ns", &p50)?;
                s.serialize_field("total_p99_ns", &p99)?;
                s.serialize_field("total_p999_ns", &p999)?;
            }
            None => {
                s.serialize_field("total_p50_ns", &0u64)?;
                s.serialize_field("total_p99_ns", &0u64)?;
                s.serialize_field("total_p999_ns", &0u64)?;
            }
        }
        s.serialize_field("stages", &self.stages)?;
        s.end()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::SpanRecord;
    use crate::timeline::reconstruct;

    fn records_for(id: u64, run_ns: u64) -> Vec<SpanRecord> {
        let base = id * 1_000;
        let mk = |stage, start: u64, end: u64, kind| SpanRecord {
            trace_id: id,
            stage,
            start_ns: base + start,
            end_ns: base + end,
            kind,
            verdict: 0,
            cycles: 0,
            arg: 0,
        };
        vec![
            mk(Stage::Ingress, 0, 0, SpanKind::Instant),
            mk(Stage::SocketSelect, 10, 20, SpanKind::Complete),
            mk(Stage::Run, 20, 20 + run_ns, SpanKind::Complete),
            mk(Stage::End, 20 + run_ns, 20 + run_ns, SpanKind::Instant),
        ]
    }

    #[test]
    fn breakdown_attributes_stage_latency() {
        let mut records = Vec::new();
        for (i, run) in [100u64, 200, 300, 400].into_iter().enumerate() {
            records.extend(records_for(i as u64 + 1, run));
        }
        let timelines = reconstruct(&records);
        let bd = StageBreakdown::from_timelines(&timelines);
        assert_eq!(bd.traces, 4);
        assert_eq!(bd.dropped, 0);
        let run = bd.stages.iter().find(|s| s.stage == Stage::Run).unwrap();
        assert_eq!(run.count, 4);
        assert_eq!(run.p50_ns, 200);
        assert_eq!(run.p99_ns, 400);
        assert_eq!(run.max_ns, 400);
        let sock = bd
            .stages
            .iter()
            .find(|s| s.stage == Stage::SocketSelect)
            .unwrap();
        assert_eq!(sock.p50_ns, 10);
        let (p50, _, _) = bd.total.unwrap();
        assert_eq!(p50, 220);
        // Stack order preserved: socket-select before run.
        let order: Vec<Stage> = bd.stages.iter().map(|s| s.stage).collect();
        assert_eq!(order, vec![Stage::SocketSelect, Stage::Run]);
    }

    #[test]
    fn table_renders_all_stages() {
        let records = records_for(1, 50);
        let bd = StageBreakdown::from_timelines(&reconstruct(&records));
        let table = bd.render_table();
        assert!(table.contains("socket-select"));
        assert!(table.contains("run"));
        assert!(table.contains("end-to-end"));
    }

    #[test]
    fn json_round_trip_has_stage_keys() {
        let records = records_for(1, 50);
        let bd = StageBreakdown::from_timelines(&reconstruct(&records));
        let json = serde::json::to_string(&bd).unwrap();
        let value = serde::json::from_str(&json).expect("parses");
        assert_eq!(value.get("traces").and_then(|v| v.as_u64()), Some(1));
        let stages = value.get("stages").and_then(|v| v.as_array()).unwrap();
        assert_eq!(stages.len(), 2);
        assert_eq!(
            stages[0].get("stage").and_then(|v| v.as_str()),
            Some("socket-select")
        );
    }

    #[test]
    fn empty_input_is_empty_breakdown() {
        let bd = StageBreakdown::from_timelines(&[]);
        assert_eq!(bd.traces, 0);
        assert!(bd.total.is_none());
        assert!(bd.stages.is_empty());
        // The empty report still renders and serializes to the stable
        // schema (zeros for end-to-end percentiles, empty stage list).
        let table = bd.render_table();
        assert!(table.contains("traces: 0"));
        let value = serde::json::from_str(&serde::json::to_string(&bd).unwrap()).unwrap();
        assert_eq!(value.get("total_p50_ns").and_then(|v| v.as_u64()), Some(0));
        assert!(value
            .get("stages")
            .and_then(|v| v.as_array())
            .is_some_and(|s| s.is_empty()));
    }

    #[test]
    fn zero_sample_timelines_yield_a_well_defined_empty_report() {
        // Timelines that never completed a span: an ingress instant with
        // no closing `end`, the shape an aborted or still-in-flight
        // request leaves behind. Percentile queries must not panic or
        // invent values.
        let records = vec![SpanRecord {
            trace_id: 9,
            stage: Stage::Ingress,
            start_ns: 100,
            end_ns: 100,
            kind: SpanKind::Instant,
            verdict: 0,
            cycles: 0,
            arg: 0,
        }];
        let timelines = reconstruct(&records);
        assert_eq!(timelines.len(), 1);
        let bd = StageBreakdown::from_timelines(&timelines);
        assert_eq!(bd.traces, 1);
        assert!(bd.total.is_none(), "unclosed trace has no end-to-end time");
        assert!(bd.stages.is_empty(), "no complete spans, no stage rows");
        // Querying a stage with zero samples is None, not a zeroed row.
        assert!(bd.stage(Stage::Run).is_none());
        assert!(!bd.render_table().is_empty());
    }

    #[test]
    fn stage_query_distinguishes_sampled_from_unsampled() {
        let records = records_for(1, 50);
        let bd = StageBreakdown::from_timelines(&reconstruct(&records));
        assert!(bd.stage(Stage::Run).is_some());
        assert!(bd.stage(Stage::NicQueue).is_none());
    }

    #[test]
    fn percentile_degrades_gracefully_on_bad_p() {
        let sorted = [10u64, 20, 30];
        assert_eq!(percentile(&sorted, f64::NAN), 10);
        assert_eq!(percentile(&sorted, -1.0), 10);
        assert_eq!(percentile(&sorted, 2.0), 30);
        assert_eq!(percentile(&[], 0.5), 0);
    }
}
