//! Reconstructing per-request timelines from a flat record stream.

use crate::span::{SpanKind, SpanRecord};
use crate::stage::Stage;
use std::collections::BTreeMap;
use std::fmt;

/// Why a timeline failed validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TimelineError {
    /// A record's `end_ns` precedes its `start_ns`.
    NonMonotonicSpan {
        /// Stage of the offending record.
        stage: Stage,
    },
    /// Two complete spans at the same stage overlap in time.
    OverlappingStage {
        /// Stage at which the overlap occurred.
        stage: Stage,
    },
    /// The trace has an ingress record but neither an [`Stage::End`]
    /// instant nor a [`SpanKind::Dropped`] record — the input vanished.
    Unclosed,
    /// A record precedes the trace's ingress instant.
    BeforeIngress {
        /// Stage of the offending record.
        stage: Stage,
    },
}

impl fmt::Display for TimelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TimelineError::NonMonotonicSpan { stage } => {
                write!(f, "span at {stage} ends before it starts")
            }
            TimelineError::OverlappingStage { stage } => {
                write!(f, "overlapping complete spans at {stage}")
            }
            TimelineError::Unclosed => write!(f, "trace has ingress but no end/dropped record"),
            TimelineError::BeforeIngress { stage } => {
                write!(f, "record at {stage} precedes ingress")
            }
        }
    }
}

/// One request's reconstructed journey: all records sharing a trace id,
/// ordered by start time.
#[derive(Debug, Clone)]
pub struct Timeline {
    /// The trace id all records share.
    pub trace_id: u64,
    /// Records ordered by `start_ns` (ties keep recording order).
    pub records: Vec<SpanRecord>,
}

impl Timeline {
    /// Ingress timestamp, if the trace has an ingress instant.
    pub fn ingress_ns(&self) -> Option<u64> {
        self.records
            .iter()
            .find(|r| r.stage == Stage::Ingress)
            .map(|r| r.start_ns)
    }

    /// Close timestamp: the [`Stage::End`] instant or the
    /// [`SpanKind::Dropped`] record, whichever exists.
    pub fn close_ns(&self) -> Option<u64> {
        self.records
            .iter()
            .find(|r| r.stage == Stage::End || r.kind == SpanKind::Dropped)
            .map(|r| r.start_ns)
    }

    /// Whether the input was dropped rather than completed.
    pub fn is_dropped(&self) -> bool {
        self.records.iter().any(|r| r.kind == SpanKind::Dropped)
    }

    /// End-to-end latency (ingress → close), if both ends exist.
    pub fn total_ns(&self) -> Option<u64> {
        match (self.ingress_ns(), self.close_ns()) {
            (Some(a), Some(b)) => Some(b.saturating_sub(a)),
            _ => None,
        }
    }

    /// The distinct stages this trace has records at, in stack order.
    pub fn stages(&self) -> Vec<Stage> {
        Stage::ALL
            .into_iter()
            .filter(|s| self.records.iter().any(|r| r.stage == *s))
            .collect()
    }

    /// Number of distinct *hook* stages (policy invocations) the trace
    /// touched — the "multi-hook" criterion for a cross-stack trace.
    pub fn distinct_hook_stages(&self) -> usize {
        const HOOKS: [Stage; 6] = [
            Stage::XdpOffload,
            Stage::XdpDrv,
            Stage::XdpSkb,
            Stage::CpuRedirect,
            Stage::SocketSelect,
            Stage::ThreadScheduler,
        ];
        HOOKS
            .iter()
            .filter(|s| self.records.iter().any(|r| r.stage == **s))
            .count()
    }

    /// Checks the structural invariants of a well-formed trace:
    ///
    /// 1. every record's interval is monotonic (`end >= start`);
    /// 2. complete spans at the same stage do not overlap;
    /// 3. no record precedes the ingress instant;
    /// 4. a trace that has an ingress is closed — by an [`Stage::End`]
    ///    instant or a [`SpanKind::Dropped`] record.
    pub fn validate(&self) -> Result<(), TimelineError> {
        for r in &self.records {
            if r.end_ns < r.start_ns {
                return Err(TimelineError::NonMonotonicSpan { stage: r.stage });
            }
        }
        if let Some(ingress) = self.ingress_ns() {
            for r in &self.records {
                if r.start_ns < ingress {
                    return Err(TimelineError::BeforeIngress { stage: r.stage });
                }
            }
            if self.close_ns().is_none() {
                return Err(TimelineError::Unclosed);
            }
        }
        let mut per_stage: BTreeMap<Stage, Vec<(u64, u64)>> = BTreeMap::new();
        for r in &self.records {
            if r.kind == SpanKind::Complete {
                per_stage
                    .entry(r.stage)
                    .or_default()
                    .push((r.start_ns, r.end_ns));
            }
        }
        for (stage, mut spans) in per_stage {
            spans.sort_unstable();
            for pair in spans.windows(2) {
                // Touching at the boundary (end == next start) is fine.
                if pair[1].0 < pair[0].1 {
                    return Err(TimelineError::OverlappingStage { stage });
                }
            }
        }
        Ok(())
    }
}

/// Groups a flat record stream by trace id into [`Timeline`]s, ordered by
/// first-seen trace. Global records (`trace_id == 0`) are skipped — they
/// are not part of any one request's journey.
pub fn reconstruct(records: &[SpanRecord]) -> Vec<Timeline> {
    let mut order: Vec<u64> = Vec::new();
    let mut by_id: BTreeMap<u64, Vec<SpanRecord>> = BTreeMap::new();
    for r in records {
        if r.trace_id == 0 {
            continue;
        }
        let entry = by_id.entry(r.trace_id).or_default();
        if entry.is_empty() {
            order.push(r.trace_id);
        }
        entry.push(*r);
    }
    order
        .into_iter()
        .map(|trace_id| {
            let mut records = by_id.remove(&trace_id).unwrap_or_default();
            records.sort_by_key(|r| r.start_ns);
            Timeline { trace_id, records }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(id: u64, stage: Stage, start: u64, end: u64, kind: SpanKind) -> SpanRecord {
        SpanRecord {
            trace_id: id,
            stage,
            start_ns: start,
            end_ns: end,
            kind,
            verdict: 0,
            cycles: 0,
            arg: 0,
        }
    }

    fn complete(id: u64, stage: Stage, start: u64, end: u64) -> SpanRecord {
        rec(id, stage, start, end, SpanKind::Complete)
    }

    fn instant(id: u64, stage: Stage, at: u64) -> SpanRecord {
        rec(id, stage, at, at, SpanKind::Instant)
    }

    #[test]
    fn groups_by_trace_and_skips_globals() {
        let records = vec![
            instant(1, Stage::Ingress, 0),
            instant(0, Stage::PolicyLifecycle, 1),
            complete(2, Stage::Run, 5, 9),
            complete(1, Stage::Run, 2, 4),
            instant(1, Stage::End, 4),
        ];
        let timelines = reconstruct(&records);
        assert_eq!(timelines.len(), 2);
        assert_eq!(timelines[0].trace_id, 1);
        assert_eq!(timelines[0].records.len(), 3);
        assert_eq!(timelines[1].trace_id, 2);
    }

    #[test]
    fn timeline_accessors() {
        let tl = Timeline {
            trace_id: 3,
            records: vec![
                instant(3, Stage::Ingress, 100),
                complete(3, Stage::SocketSelect, 110, 120),
                complete(3, Stage::ThreadScheduler, 130, 150),
                complete(3, Stage::Run, 150, 400),
                instant(3, Stage::End, 400),
            ],
        };
        assert_eq!(tl.ingress_ns(), Some(100));
        assert_eq!(tl.close_ns(), Some(400));
        assert_eq!(tl.total_ns(), Some(300));
        assert!(!tl.is_dropped());
        assert_eq!(tl.distinct_hook_stages(), 2);
        assert!(tl.validate().is_ok());
    }

    #[test]
    fn dropped_trace_is_closed() {
        let tl = Timeline {
            trace_id: 4,
            records: vec![
                instant(4, Stage::Ingress, 0),
                rec(4, Stage::SockQueue, 10, 10, SpanKind::Dropped),
            ],
        };
        assert!(tl.is_dropped());
        assert_eq!(tl.total_ns(), Some(10));
        assert!(tl.validate().is_ok());
    }

    #[test]
    fn unclosed_trace_fails_validation() {
        let tl = Timeline {
            trace_id: 5,
            records: vec![instant(5, Stage::Ingress, 0), complete(5, Stage::Run, 1, 2)],
        };
        assert_eq!(tl.validate(), Err(TimelineError::Unclosed));
    }

    #[test]
    fn overlapping_same_stage_spans_fail_validation() {
        let tl = Timeline {
            trace_id: 6,
            records: vec![
                complete(6, Stage::Run, 0, 10),
                complete(6, Stage::Run, 5, 15),
            ],
        };
        assert_eq!(
            tl.validate(),
            Err(TimelineError::OverlappingStage { stage: Stage::Run })
        );
        // Different stages may overlap (queueing vs policy work).
        let ok = Timeline {
            trace_id: 6,
            records: vec![
                complete(6, Stage::SockQueue, 0, 10),
                complete(6, Stage::Run, 5, 15),
            ],
        };
        assert!(ok.validate().is_ok());
    }

    #[test]
    fn touching_spans_do_not_overlap() {
        let tl = Timeline {
            trace_id: 7,
            records: vec![
                complete(7, Stage::Run, 0, 10),
                complete(7, Stage::Run, 10, 20),
            ],
        };
        assert!(tl.validate().is_ok());
    }

    #[test]
    fn record_before_ingress_fails_validation() {
        let tl = Timeline {
            trace_id: 8,
            records: vec![
                complete(8, Stage::StackRx, 0, 5),
                instant(8, Stage::Ingress, 3),
                instant(8, Stage::End, 9),
            ],
        };
        assert_eq!(
            tl.validate(),
            Err(TimelineError::BeforeIngress {
                stage: Stage::StackRx
            })
        );
    }
}
