//! Span records and the Chrome-trace/Perfetto export.

use crate::stage::Stage;
use serde::{Serialize, SerializeStruct, Serializer};
use std::fmt::Write as _;

/// What kind of record a [`SpanRecord`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanKind {
    /// An interval with a start and an end.
    Complete,
    /// A zero-duration point event.
    Instant,
    /// The input was dropped at this stage; closes the trace.
    Dropped,
}

impl SpanKind {
    /// Short lowercase name for JSON.
    pub fn as_str(self) -> &'static str {
        match self {
            SpanKind::Complete => "complete",
            SpanKind::Instant => "instant",
            SpanKind::Dropped => "dropped",
        }
    }
}

/// One recorded event in a trace.
///
/// `Copy` and fixed-size on purpose: recording must not allocate on the
/// hot path, mirroring a fixed-size eBPF ringbuf record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanRecord {
    /// Trace this record belongs to; 0 for global events (policy
    /// lifecycle) that are not tied to one input.
    pub trace_id: u64,
    /// Where in the stack the event happened.
    pub stage: Stage,
    /// Start of the interval (== `end_ns` for instants), virtual ns.
    pub start_ns: u64,
    /// End of the interval, virtual ns.
    pub end_ns: u64,
    /// Interval, instant, or drop.
    pub kind: SpanKind,
    /// Policy verdict, when the stage is a policy invocation (else 0).
    pub verdict: i64,
    /// Cycles charged by the VM's cycle accounting (else 0).
    pub cycles: u64,
    /// Free-form argument: queue/socket/core index, app id — stage-specific.
    pub arg: u64,
}

impl SpanRecord {
    /// Duration of the span (0 for instants).
    pub fn duration_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }
}

impl Serialize for SpanRecord {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut s = serializer.serialize_struct("SpanRecord", 8)?;
        s.serialize_field("trace_id", &self.trace_id)?;
        s.serialize_field("stage", &self.stage.as_str())?;
        s.serialize_field("start_ns", &self.start_ns)?;
        s.serialize_field("end_ns", &self.end_ns)?;
        s.serialize_field("kind", &self.kind.as_str())?;
        s.serialize_field("verdict", &self.verdict)?;
        s.serialize_field("cycles", &self.cycles)?;
        s.serialize_field("arg", &self.arg)?;
        s.end()
    }
}

/// Serializes records to the Chrome trace-event JSON format, loadable in
/// `chrome://tracing` and <https://ui.perfetto.dev>.
///
/// Layout: one process per stack layer (`nic`, `kernel`, `socket`,
/// `thread`, `vm`, `app`), one track (tid) per trace within the layer, so
/// a request's journey reads left-to-right across the layer swimlanes.
/// Complete spans emit `ph:"X"` events with microsecond timestamps;
/// instants and drops emit `ph:"i"`.
pub fn chrome_trace_json(records: &[SpanRecord]) -> String {
    let mut out = String::from("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[");
    let mut first = true;
    // Name the layer "processes" once so Perfetto labels the swimlanes.
    for (pid, layer) in LAYERS.iter().enumerate() {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(
            out,
            "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\
             \"args\":{{\"name\":\"{layer}\"}}}}"
        );
    }
    for r in records {
        if !first {
            out.push(',');
        }
        first = false;
        let pid = LAYERS
            .iter()
            .position(|&l| l == r.stage.layer())
            .unwrap_or(0);
        let ts_us = r.start_ns as f64 / 1_000.0;
        let name = match r.kind {
            SpanKind::Dropped => "dropped",
            _ => r.stage.as_str(),
        };
        let _ = write!(
            out,
            "{{\"name\":\"{name}\",\"cat\":\"{cat}\",\"pid\":{pid},\"tid\":{tid},\"ts\":{ts_us}",
            cat = r.stage.layer(),
            tid = r.trace_id,
        );
        match r.kind {
            SpanKind::Complete => {
                let dur_us = r.duration_ns() as f64 / 1_000.0;
                let _ = write!(out, ",\"ph\":\"X\",\"dur\":{dur_us}");
            }
            SpanKind::Instant | SpanKind::Dropped => {
                out.push_str(",\"ph\":\"i\",\"s\":\"t\"");
            }
        }
        let _ = write!(
            out,
            ",\"args\":{{\"trace_id\":{},\"stage\":\"{}\",\"verdict\":{},\"cycles\":{},\"arg\":{}}}}}",
            r.trace_id,
            r.stage.as_str(),
            r.verdict,
            r.cycles,
            r.arg
        );
    }
    out.push_str("]}");
    out
}

const LAYERS: [&str; 8] = [
    "trace", "nic", "kernel", "socket", "thread", "vm", "app", "syrupd",
];

#[cfg(test)]
mod tests {
    use super::*;

    fn span(id: u64, stage: Stage, start: u64, end: u64) -> SpanRecord {
        SpanRecord {
            trace_id: id,
            stage,
            start_ns: start,
            end_ns: end,
            kind: SpanKind::Complete,
            verdict: 2,
            cycles: 1500,
            arg: 3,
        }
    }

    #[test]
    fn records_serialize_with_stage_names() {
        let json = serde::json::to_string(&span(7, Stage::SocketSelect, 10, 40)).unwrap();
        assert!(json.contains("\"stage\":\"socket-select\""), "{json}");
        assert!(json.contains("\"kind\":\"complete\""), "{json}");
        assert!(json.contains("\"trace_id\":7"), "{json}");
    }

    #[test]
    fn chrome_export_is_valid_json_with_x_and_i_phases() {
        let records = vec![
            span(1, Stage::SocketSelect, 1_000, 3_000),
            SpanRecord {
                kind: SpanKind::Instant,
                ..span(1, Stage::NicSteer, 500, 500)
            },
            SpanRecord {
                kind: SpanKind::Dropped,
                ..span(2, Stage::SockQueue, 900, 900)
            },
        ];
        let json = chrome_trace_json(&records);
        let value = serde::json::from_str(&json).expect("export parses");
        let events = value
            .get("traceEvents")
            .and_then(|v| v.as_array())
            .expect("traceEvents array");
        // 8 process-name metadata events + 3 records.
        assert_eq!(events.len(), LAYERS.len() + 3);
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ph\":\"i\""));
        assert!(json.contains("\"dur\":2"), "{json}");
    }

    #[test]
    fn duration_saturates() {
        let r = span(1, Stage::Run, 50, 20);
        assert_eq!(r.duration_ns(), 0);
    }

    #[test]
    fn chrome_export_round_trips_through_the_vendored_parser() {
        // A two-request trace touching several layers, with timestamps
        // deliberately emitted out of track order across requests but in
        // order within each request's track.
        let records = vec![
            span(1, Stage::NicQueue, 1_000, 1_300),
            span(2, Stage::NicQueue, 3_000, 3_300),
            span(1, Stage::SocketSelect, 1_400, 1_600),
            span(2, Stage::SocketSelect, 3_400, 3_600),
            span(1, Stage::Run, 1_700, 4_000),
            SpanRecord {
                kind: SpanKind::Instant,
                ..span(1, Stage::End, 4_000, 4_000)
            },
        ];
        let json = chrome_trace_json(&records);
        let value = serde::json::from_str(&json).expect("export parses");
        let events = value
            .get("traceEvents")
            .and_then(|v| v.as_array())
            .expect("traceEvents array");
        assert_eq!(events.len(), LAYERS.len() + records.len());

        // The metadata events name every layer track exactly once.
        let mut track_names = Vec::new();
        for ev in events {
            if ev.get("name").and_then(|n| n.as_str()) == Some("process_name") {
                let name = ev
                    .get("args")
                    .and_then(|a| a.get("name"))
                    .and_then(|n| n.as_str())
                    .expect("metadata names the track");
                track_names.push(name.to_string());
            }
        }
        assert_eq!(track_names, LAYERS.to_vec());

        // Within each (pid, tid) track, `ts` is monotonically
        // non-decreasing — Perfetto renders tracks independently, but
        // each request's own lane must read left to right.
        let mut per_track: std::collections::BTreeMap<(u64, u64), f64> =
            std::collections::BTreeMap::new();
        let mut data_events = 0;
        for ev in events {
            let Some(ts) = ev.get("ts").and_then(|t| t.as_f64()) else {
                continue; // metadata has no ts
            };
            data_events += 1;
            let pid = ev.get("pid").and_then(|p| p.as_u64()).expect("pid");
            let tid = ev.get("tid").and_then(|t| t.as_u64()).expect("tid");
            if let Some(&prev) = per_track.get(&(pid, tid)) {
                assert!(
                    ts >= prev,
                    "track ({pid},{tid}) went backwards: {prev} -> {ts}"
                );
            }
            per_track.insert((pid, tid), ts);
        }
        assert_eq!(data_events, records.len());
    }
}
