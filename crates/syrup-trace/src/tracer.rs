//! The tracer: trace-ID allocation, sampling, span recording.

use crate::span::{SpanKind, SpanRecord};
use crate::stage::Stage;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::Arc;

/// A trace identifier. Nonzero; 0 is reserved for "not traced" /
/// global events.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TraceId(pub u64);

/// The per-input trace context threaded through the stack alongside the
/// packet/connection/wakeup.
///
/// `Copy` and two words wide so it rides inside `HookMeta`, `RunEnv`, and
/// per-request structs for free. An untraced context (`id == 0`) turns
/// every downstream span site into a single branch — this is the
/// fast path for unsampled inputs even when tracing is on.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub struct TraceCtx {
    id: u64,
}

impl TraceCtx {
    /// The untraced context.
    #[inline]
    pub const fn none() -> Self {
        TraceCtx { id: 0 }
    }

    /// Whether this input is being traced.
    #[inline]
    pub fn is_traced(self) -> bool {
        self.id != 0
    }

    /// The trace id, if traced.
    pub fn trace_id(self) -> Option<TraceId> {
        if self.id == 0 {
            None
        } else {
            Some(TraceId(self.id))
        }
    }
}

/// Tracer configuration.
#[derive(Debug, Clone, Copy)]
pub struct TraceConfig {
    /// Trace one in `sample_every` ingresses (1 = every input). 0 is
    /// clamped to 1.
    pub sample_every: u64,
    /// Buffered-record bound; past it new records are dropped and
    /// counted, like a full eBPF ringbuf reservation.
    pub capacity: usize,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            sample_every: 1,
            capacity: 1 << 16,
        }
    }
}

#[derive(Debug)]
struct Inner {
    sample_every: u64,
    capacity: usize,
    next_id: AtomicU64,
    ingress_seen: AtomicU64,
    started: AtomicU64,
    dropped_records: AtomicU64,
    records: Mutex<Vec<SpanRecord>>,
}

/// The span tracer. Cloning shares the instance (like sharing a map fd);
/// the default is [`Tracer::disabled`], which records nothing and costs a
/// single `Option` branch per call.
#[derive(Debug, Clone, Default)]
pub struct Tracer {
    inner: Option<Arc<Inner>>,
}

impl Tracer {
    /// An enabled tracer with default config (sample every input).
    pub fn new() -> Self {
        Self::with_config(TraceConfig::default())
    }

    /// An enabled tracer with explicit sampling/capacity.
    pub fn with_config(cfg: TraceConfig) -> Self {
        Tracer {
            inner: Some(Arc::new(Inner {
                sample_every: cfg.sample_every.max(1),
                capacity: cfg.capacity.max(1),
                next_id: AtomicU64::new(1),
                ingress_seen: AtomicU64::new(0),
                started: AtomicU64::new(0),
                dropped_records: AtomicU64::new(0),
                records: Mutex::new(Vec::new()),
            })),
        }
    }

    /// A disabled tracer: every call is a no-op behind one branch.
    pub fn disabled() -> Self {
        Tracer { inner: None }
    }

    /// Whether spans are actually collected.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Called once per input at ingress. Returns a traced context for one
    /// in `sample_every` inputs (and records the ingress instant), the
    /// untraced context otherwise.
    #[inline]
    pub fn ingress(&self, now_ns: u64) -> TraceCtx {
        let Some(inner) = &self.inner else {
            return TraceCtx::none();
        };
        let tick = inner.ingress_seen.fetch_add(1, Relaxed);
        if tick % inner.sample_every != 0 {
            return TraceCtx::none();
        }
        let id = inner.next_id.fetch_add(1, Relaxed);
        inner.started.fetch_add(1, Relaxed);
        let ctx = TraceCtx { id };
        self.push(SpanRecord {
            trace_id: id,
            stage: Stage::Ingress,
            start_ns: now_ns,
            end_ns: now_ns,
            kind: SpanKind::Instant,
            verdict: 0,
            cycles: 0,
            arg: 0,
        });
        ctx
    }

    /// Records a completed interval for a traced input. No-op (one
    /// branch) for untraced contexts.
    #[inline]
    pub fn span(&self, ctx: TraceCtx, stage: Stage, start_ns: u64, end_ns: u64) {
        if ctx.id == 0 {
            return;
        }
        self.span_slow(ctx, stage, start_ns, end_ns, 0, 0, 0);
    }

    /// [`Tracer::span`] carrying a policy verdict and cycle count.
    #[inline]
    pub fn policy_span(
        &self,
        ctx: TraceCtx,
        stage: Stage,
        start_ns: u64,
        end_ns: u64,
        verdict: i64,
        cycles: u64,
    ) {
        if ctx.id == 0 {
            return;
        }
        self.span_slow(ctx, stage, start_ns, end_ns, verdict, cycles, 0);
    }

    /// [`Tracer::span`] carrying a stage-specific argument (queue index,
    /// socket index, core id).
    #[inline]
    pub fn span_arg(&self, ctx: TraceCtx, stage: Stage, start_ns: u64, end_ns: u64, arg: u64) {
        if ctx.id == 0 {
            return;
        }
        self.span_slow(ctx, stage, start_ns, end_ns, 0, 0, arg);
    }

    #[cold]
    #[allow(clippy::too_many_arguments)]
    fn span_slow(
        &self,
        ctx: TraceCtx,
        stage: Stage,
        start_ns: u64,
        end_ns: u64,
        verdict: i64,
        cycles: u64,
        arg: u64,
    ) {
        self.push(SpanRecord {
            trace_id: ctx.id,
            stage,
            start_ns,
            end_ns: end_ns.max(start_ns),
            kind: SpanKind::Complete,
            verdict,
            cycles,
            arg,
        });
    }

    /// Records a point event for a traced input.
    #[inline]
    pub fn instant(&self, ctx: TraceCtx, stage: Stage, now_ns: u64, arg: u64) {
        if ctx.id == 0 {
            return;
        }
        self.push(SpanRecord {
            trace_id: ctx.id,
            stage,
            start_ns: now_ns,
            end_ns: now_ns,
            kind: SpanKind::Instant,
            verdict: 0,
            cycles: 0,
            arg,
        });
    }

    /// Records a global point event not tied to any one input (policy
    /// deploy/teardown). Recorded whenever the tracer is enabled,
    /// regardless of sampling.
    pub fn global_instant(&self, stage: Stage, now_ns: u64, arg: u64) {
        if self.inner.is_none() {
            return;
        }
        self.push(SpanRecord {
            trace_id: 0,
            stage,
            start_ns: now_ns,
            end_ns: now_ns,
            kind: SpanKind::Instant,
            verdict: 0,
            cycles: 0,
            arg,
        });
    }

    /// Closes a trace: the request completed at `now_ns`.
    #[inline]
    pub fn finish(&self, ctx: TraceCtx, now_ns: u64) {
        if ctx.id == 0 {
            return;
        }
        self.push(SpanRecord {
            trace_id: ctx.id,
            stage: Stage::End,
            start_ns: now_ns,
            end_ns: now_ns,
            kind: SpanKind::Instant,
            verdict: 0,
            cycles: 0,
            arg: 0,
        });
    }

    /// Closes a trace as dropped at `stage` (policy DROP, full buffer,
    /// full ring).
    #[inline]
    pub fn drop_input(&self, ctx: TraceCtx, stage: Stage, now_ns: u64) {
        if ctx.id == 0 {
            return;
        }
        self.push(SpanRecord {
            trace_id: ctx.id,
            stage,
            start_ns: now_ns,
            end_ns: now_ns,
            kind: SpanKind::Dropped,
            verdict: 0,
            cycles: 0,
            arg: 0,
        });
    }

    fn push(&self, record: SpanRecord) {
        let Some(inner) = &self.inner else {
            return;
        };
        let mut records = inner.records.lock();
        if records.len() >= inner.capacity {
            drop(records);
            inner.dropped_records.fetch_add(1, Relaxed);
            return;
        }
        records.push(record);
    }

    /// Removes and returns all buffered records in recording order.
    pub fn drain(&self) -> Vec<SpanRecord> {
        match &self.inner {
            Some(inner) => std::mem::take(&mut *inner.records.lock()),
            None => Vec::new(),
        }
    }

    /// Copies the buffered records without consuming them.
    pub fn peek(&self) -> Vec<SpanRecord> {
        match &self.inner {
            Some(inner) => inner.records.lock().clone(),
            None => Vec::new(),
        }
    }

    /// Traces started (sampled ingresses) so far.
    pub fn traces_started(&self) -> u64 {
        self.inner.as_ref().map_or(0, |i| i.started.load(Relaxed))
    }

    /// Records lost because the buffer was full.
    pub fn records_dropped(&self) -> u64 {
        self.inner
            .as_ref()
            .map_or(0, |i| i.dropped_records.load(Relaxed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_hands_out_untraced_contexts() {
        let t = Tracer::disabled();
        let ctx = t.ingress(100);
        assert!(!ctx.is_traced());
        t.span(ctx, Stage::SocketSelect, 100, 200);
        t.finish(ctx, 300);
        assert!(t.drain().is_empty());
        assert_eq!(t.traces_started(), 0);
    }

    #[test]
    fn sampling_traces_one_in_n() {
        let t = Tracer::with_config(TraceConfig {
            sample_every: 4,
            capacity: 1024,
        });
        let traced: Vec<bool> = (0..12).map(|i| t.ingress(i).is_traced()).collect();
        assert_eq!(traced.iter().filter(|&&b| b).count(), 3);
        // Deterministic: every 4th ingress starting with the first.
        assert!(traced[0] && traced[4] && traced[8]);
        assert_eq!(t.traces_started(), 3);
    }

    #[test]
    fn spans_record_for_traced_inputs_only() {
        let t = Tracer::with_config(TraceConfig {
            sample_every: 2,
            capacity: 1024,
        });
        let a = t.ingress(0); // traced
        let b = t.ingress(1); // unsampled
        t.span(a, Stage::StackRx, 0, 100);
        t.span(b, Stage::StackRx, 1, 101);
        t.finish(a, 200);
        let records = t.drain();
        // ingress + span + end, all for trace a.
        assert_eq!(records.len(), 3);
        assert!(records
            .iter()
            .all(|r| Some(r.trace_id) == a.trace_id().map(|i| i.0)));
    }

    #[test]
    fn capacity_overflow_drops_and_counts() {
        let t = Tracer::with_config(TraceConfig {
            sample_every: 1,
            capacity: 2,
        });
        let ctx = t.ingress(0); // 1 record
        t.span(ctx, Stage::Run, 0, 10); // 2 records
        t.span(ctx, Stage::End, 10, 10); // dropped
        t.finish(ctx, 20); // dropped
        assert_eq!(t.records_dropped(), 2);
        assert_eq!(t.drain().len(), 2);
        // Drain frees capacity.
        t.span(ctx, Stage::Run, 20, 30);
        assert_eq!(t.peek().len(), 1);
    }

    #[test]
    fn trace_ids_are_unique_and_nonzero() {
        let t = Tracer::new();
        let ids: Vec<u64> = (0..100)
            .map(|i| t.ingress(i).trace_id().expect("sampled").0)
            .collect();
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 100);
        assert!(ids.iter().all(|&i| i != 0));
    }

    #[test]
    fn clones_share_the_buffer() {
        let t = Tracer::new();
        let clone = t.clone();
        let ctx = t.ingress(0);
        clone.span(ctx, Stage::Run, 0, 5);
        assert_eq!(t.peek().len(), 2);
    }

    #[test]
    fn global_instants_do_not_need_a_trace() {
        let t = Tracer::with_config(TraceConfig {
            sample_every: 1_000_000,
            capacity: 16,
        });
        t.global_instant(Stage::PolicyLifecycle, 0, 42);
        let records = t.drain();
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].trace_id, 0);
        assert_eq!(records[0].arg, 42);
    }
}
