//! Property tests for the tracer's structural invariants.
//!
//! A well-behaved driver — one that stamps each request's stages with
//! non-decreasing timestamps and always finishes or drops what it
//! ingresses — must produce timelines that pass [`Timeline::validate`]
//! under *any* interleaving of concurrent requests: per-stage complete
//! spans never overlap, timestamps are monotonic, and every ingress is
//! closed by an end or dropped record. The tracer is also required to
//! clamp hostile intervals (end before start) and to detect traces the
//! driver abandoned.

use proptest::prelude::*;
use syrup_trace::{reconstruct, Stage, TimelineError, TraceConfig, TraceCtx, Tracer};

/// The stage sequence a simulated request walks, in stack order.
const PIPELINE: [Stage; 7] = [
    Stage::NicQueue,
    Stage::XdpDrv,
    Stage::CpuRedirect,
    Stage::StackRx,
    Stage::SocketSelect,
    Stage::SockQueue,
    Stage::Run,
];

#[derive(Debug, Clone)]
struct ReqPlan {
    arrival: u64,
    /// Residency at each pipeline stage.
    durs: Vec<u64>,
    /// `Some(k)`: the input is dropped at stage `k` after completing the
    /// first `k` spans. `None`: it runs the full pipeline and finishes.
    drop_after: Option<usize>,
}

fn req_plan() -> impl Strategy<Value = ReqPlan> {
    (
        0u64..1_000_000,
        proptest::collection::vec(1u64..10_000, PIPELINE.len()),
        any::<bool>(),
        0usize..PIPELINE.len(),
    )
        .prop_map(|(arrival, durs, dropped, drop_stage)| ReqPlan {
            arrival,
            durs,
            drop_after: dropped.then_some(drop_stage),
        })
}

struct ReqState {
    ctx: TraceCtx,
    t: u64,
    next_op: usize,
}

/// Drives all plans against one shared tracer, interleaving their span
/// emissions according to `picks` (each pick chooses which still-active
/// request performs its next operation).
fn run_interleaved(plans: &[ReqPlan], picks: &[usize], tracer: &Tracer) {
    let mut st: Vec<ReqState> = plans
        .iter()
        .map(|p| ReqState {
            ctx: TraceCtx::none(),
            t: p.arrival,
            next_op: 0,
        })
        .collect();
    let mut active: Vec<usize> = (0..plans.len()).collect();
    let mut cursor = 0usize;
    while !active.is_empty() {
        let slot = picks[cursor % picks.len()] % active.len();
        cursor += 1;
        let ri = active[slot];
        let plan = &plans[ri];
        let s = &mut st[ri];
        let n_spans = plan.drop_after.unwrap_or(plan.durs.len());
        let done = if s.next_op == 0 {
            s.ctx = tracer.ingress(s.t);
            false
        } else if s.next_op <= n_spans {
            let i = s.next_op - 1;
            tracer.span(s.ctx, PIPELINE[i], s.t, s.t + plan.durs[i]);
            s.t += plan.durs[i];
            false
        } else {
            match plan.drop_after {
                Some(k) => tracer.drop_input(s.ctx, PIPELINE[k], s.t),
                None => tracer.finish(s.ctx, s.t),
            }
            true
        };
        s.next_op += 1;
        if done {
            active.swap_remove(slot);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any interleaving of well-behaved requests reconstructs into one
    /// valid, closed timeline per request, with monotonic record order
    /// and non-overlapping per-stage spans (checked by `validate`).
    #[test]
    fn interleaved_requests_yield_valid_closed_timelines(
        plans in proptest::collection::vec(req_plan(), 1..16),
        picks in proptest::collection::vec(any::<usize>(), 64),
    ) {
        let tracer = Tracer::new();
        run_interleaved(&plans, &picks, &tracer);
        let records = tracer.drain();
        let expected_records: usize = plans
            .iter()
            .map(|p| 2 + p.drop_after.unwrap_or(p.durs.len()))
            .sum();
        prop_assert_eq!(records.len(), expected_records);

        let timelines = reconstruct(&records);
        prop_assert_eq!(timelines.len(), plans.len());
        let mut dropped = 0usize;
        for tl in &timelines {
            prop_assert!(tl.validate().is_ok(), "{:?}", tl.validate());
            prop_assert!(tl.close_ns().is_some());
            // Records are ordered by start time within the timeline.
            for pair in tl.records.windows(2) {
                prop_assert!(pair[0].start_ns <= pair[1].start_ns);
            }
            if tl.is_dropped() {
                dropped += 1;
            }
        }
        let expected_dropped = plans.iter().filter(|p| p.drop_after.is_some()).count();
        prop_assert_eq!(dropped, expected_dropped);
    }

    /// Sampling traces exactly `ceil(n / sample_every)` of `n` ingresses,
    /// and every sampled trace is still valid and closed.
    #[test]
    fn sampling_traces_exactly_one_in_n(n in 1u64..500, s in 1u64..16) {
        let tracer = Tracer::with_config(TraceConfig {
            sample_every: s,
            capacity: 1 << 16,
        });
        let mut traced = 0u64;
        for i in 0..n {
            let ctx = tracer.ingress(i * 10);
            if ctx.is_traced() {
                tracer.span(ctx, Stage::Run, i * 10, i * 10 + 5);
                tracer.finish(ctx, i * 10 + 5);
                traced += 1;
            }
        }
        let expected = n.div_ceil(s);
        prop_assert_eq!(traced, expected);
        prop_assert_eq!(tracer.traces_started(), expected);
        let timelines = reconstruct(&tracer.drain());
        prop_assert_eq!(timelines.len() as u64, expected);
        for tl in &timelines {
            prop_assert!(tl.validate().is_ok());
        }
    }

    /// Span sites clamp reversed intervals: no record ever ends before it
    /// starts, whatever the caller passes.
    #[test]
    fn span_sites_clamp_reversed_intervals(
        pairs in proptest::collection::vec((0u64..1_000, 0u64..1_000), 1..32),
    ) {
        let tracer = Tracer::new();
        let ctx = tracer.ingress(0);
        for (a, b) in &pairs {
            tracer.span(ctx, Stage::Run, *a, *b);
        }
        tracer.finish(ctx, 2_000);
        for r in tracer.peek() {
            prop_assert!(r.end_ns >= r.start_ns);
        }
    }

    /// A trace the driver abandons (ingress, never finished or dropped)
    /// is flagged `Unclosed` — and only those traces are.
    #[test]
    fn unclosed_ingress_is_detected(n_closed in 0usize..8, n_open in 1usize..8) {
        let tracer = Tracer::new();
        for i in 0..n_closed {
            let ctx = tracer.ingress(i as u64);
            tracer.finish(ctx, i as u64 + 1);
        }
        for i in 0..n_open {
            let _leaked = tracer.ingress(1_000 + i as u64);
        }
        let timelines = reconstruct(&tracer.drain());
        prop_assert_eq!(timelines.len(), n_closed + n_open);
        let unclosed = timelines
            .iter()
            .filter(|tl| tl.validate() == Err(TimelineError::Unclosed))
            .count();
        prop_assert_eq!(unclosed, n_open);
        let valid = timelines.iter().filter(|tl| tl.validate().is_ok()).count();
        prop_assert_eq!(valid, n_closed);
    }
}
