//! The multiplexed-thread world: Figure 8 (cross-layer scheduling).
//!
//! §5.3's deployment: RocksDB with 36 threads on 6 cores, 50% GET / 50%
//! SCAN. Threads are multiplexed by either the CFS-like default scheduler
//! (6 app cores, type-oblivious, millisecond slices) or a ghOSt agent
//! running the Syrup GET-priority policy (5 app cores + 1 agent core,
//! preemption via IPIs). Socket selection is either the vanilla hash or
//! the SCAN-Avoid Syrup policy. The four combinations reproduce the
//! figure's three plotted configurations (plus the omitted baseline):
//!
//! | socket layer | thread layer | paper series                 |
//! |--------------|--------------|------------------------------|
//! | SCAN Avoid   | CFS          | "SCAN Avoid"                 |
//! | vanilla hash | ghOSt        | "Thread Scheduling"          |
//! | SCAN Avoid   | ghOSt        | "SCAN Avoid + Thread Sched." |
//! | vanilla hash | CFS          | (omitted: off the chart)     |
//!
//! The request class each thread is about to serve is published in a Map
//! at enqueue time (the application-populated Map of §5.3), which is what
//! lets the ghOSt policy prioritize GET threads.

use std::collections::HashMap;

use syrup_core::{Hook, HookMeta, MapDef, MapRef, PolicySource, Syrupd};
use syrup_ghost::cfs::{CfsParams, CfsSched};
use syrup_ghost::ghost::{class, GhostParams, GhostSched};
use syrup_ghost::{Assignment, CoreId, ThreadId, ThreadScheduler};
use syrup_net::socket::{Delivery, ReuseportGroup};
use syrup_net::{flow, AppHeader, Frame, RequestClass, StackCosts};
use syrup_policies::{ScanAvoidPolicy, VanillaPolicy};
use syrup_sim::{
    ArrivalGen, Duration, LatencyRecorder, LatencySummary, RequestMix, ShardedQueue, SimRng, Time,
};

use crate::rocksdb::RocksDbModel;
use crate::server_world::SocketPolicyKind;

/// Which thread scheduler multiplexes the 36 threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedKind {
    /// The CFS-like kernel default on all cores.
    Cfs,
    /// ghOSt with the GET-priority Syrup policy; one core goes to the
    /// agent.
    Ghost,
}

/// Experiment parameters.
#[derive(Debug, Clone)]
pub struct MtConfig {
    /// Application threads (the paper: 36).
    pub threads: usize,
    /// Machine cores (the paper: 6; ghOSt reserves one).
    pub cores: usize,
    /// Shared UDP port.
    pub port: u16,
    /// Distinct client flows.
    pub num_flows: usize,
    /// Socket buffer capacity per thread.
    pub socket_capacity: usize,
    /// Offered load (requests per second).
    pub load_rps: f64,
    /// GET fraction (the paper: 0.5).
    pub get_fraction: f64,
    /// Service model.
    pub model: RocksDbModel,
    /// Per-request syscall overhead.
    pub per_request_overhead: Duration,
    /// RX path costs.
    pub stack: StackCosts,
    /// Socket-select policy (vanilla or SCAN Avoid).
    pub socket_policy: SocketPolicyKind,
    /// Thread scheduler.
    pub sched: SchedKind,
    /// Warm-up interval.
    pub warmup: Duration,
    /// Measured interval.
    pub measure: Duration,
    /// RNG seed.
    pub seed: u64,
    /// Event-queue shards. The run is sequential either way — this
    /// partitions the timer wheels behind the [`ShardedQueue`] facade,
    /// whose pop order is identical for any value here (the
    /// `deterministic_under_seed` suites pin that at {1, 2, 8}).
    pub shards: usize,
    /// Request tracer (disabled by default). An enabled tracer records
    /// stack-RX, socket-select, socket-residency, and run spans per
    /// sampled request, plus ghOSt enqueue/dispatch/preempt spans when
    /// `sched` is [`SchedKind::Ghost`].
    pub tracer: syrup_trace::Tracer,
}

impl MtConfig {
    /// The §5.3 setup at a given load.
    pub fn fig8(
        socket_policy: SocketPolicyKind,
        sched: SchedKind,
        load_rps: f64,
        seed: u64,
    ) -> Self {
        MtConfig {
            threads: 36,
            cores: 6,
            port: 8080,
            num_flows: 50,
            socket_capacity: 256,
            load_rps,
            get_fraction: 0.5,
            model: RocksDbModel::default(),
            per_request_overhead: Duration::from_micros(2),
            stack: StackCosts::default(),
            socket_policy,
            sched,
            warmup: Duration::from_millis(100),
            measure: Duration::from_millis(800),
            seed,
            shards: 1,
            tracer: syrup_trace::Tracer::disabled(),
        }
    }
}

/// Per-class latency outcome of one run.
#[derive(Debug, Clone)]
pub struct MtResult {
    /// GET latency statistics (Figure 8a).
    pub get: LatencySummary,
    /// SCAN latency statistics (Figure 8b).
    pub scan: LatencySummary,
    /// Completed requests.
    pub completed: u64,
    /// Dropped requests.
    pub dropped: u64,
    /// Preemptions issued by the ghOSt policy (0 under CFS).
    pub preemptions: u64,
}

#[derive(Debug, Clone, Copy)]
struct Req {
    arrival: Time,
    class: RequestClass,
    service: Duration,
    flow_hash: u32,
    measured: bool,
    trace: syrup_trace::TraceCtx,
}

#[derive(Debug, Clone, Copy)]
struct InFlight {
    req: Req,
    remaining: Duration,
    started: Option<Time>,
}

enum Ev {
    Arrival,
    Deliver(Req),
    ThreadStart {
        thread: usize,
        core: CoreId,
        token: u64,
    },
    Complete {
        thread: usize,
        token: u64,
    },
    SliceTick {
        core: CoreId,
    },
}

enum Sched {
    Cfs(CfsSched),
    Ghost(GhostSched),
}

impl Sched {
    fn as_dyn(&mut self) -> &mut dyn ThreadScheduler {
        match self {
            Sched::Cfs(s) => s,
            Sched::Ghost(s) => s,
        }
    }
}

/// Runs one Figure 8 configuration.
pub fn run(cfg: &MtConfig) -> MtResult {
    let mut rng = SimRng::new(cfg.seed);
    let syrupd = Syrupd::new();
    let (_app, maps) = syrupd
        .register_app("rocksdb-mt", &[cfg.port])
        .expect("fresh daemon");

    // The thread-class Map: written at the socket layer / by the app,
    // read by both the SCAN-Avoid policy and the ghOSt policy (§3.4).
    let class_map: MapRef = maps
        .create_pinned("thread_class", MapDef::u64_array(64))
        .expect("create class map");
    for t in 0..cfg.threads as u32 {
        class_map.update_u64(t, class::GET).expect("in range");
    }

    match cfg.socket_policy {
        SocketPolicyKind::Vanilla => {
            syrupd
                .deploy(
                    _app,
                    Hook::SocketSelect,
                    PolicySource::Native(Box::new(VanillaPolicy)),
                )
                .expect("deploy");
        }
        SocketPolicyKind::ScanAvoid => {
            syrupd
                .deploy(
                    _app,
                    Hook::SocketSelect,
                    PolicySource::Native(Box::new(ScanAvoidPolicy::new(
                        class_map.clone(),
                        cfg.threads as u32,
                        cfg.seed ^ 0x5A5A,
                    ))),
                )
                .expect("deploy");
        }
        other => panic!("Figure 8 uses vanilla or SCAN Avoid, not {other:?}"),
    }

    syrupd.attach_tracer(&cfg.tracer);
    let sched = match cfg.sched {
        SchedKind::Cfs => Sched::Cfs(CfsSched::new(
            (0..cfg.cores as u32).map(CoreId).collect(),
            CfsParams::default(),
        )),
        SchedKind::Ghost => {
            let mut g = GhostSched::new(
                (0..cfg.cores as u32).map(CoreId).collect(),
                class_map.clone(),
                GhostParams::default(),
            );
            g.attach_tracer(&cfg.tracer);
            Sched::Ghost(g)
        }
    };

    let flows = flow::client_flows(cfg.num_flows, cfg.port, &mut rng);
    let flow_hashes: Vec<u32> = flows.iter().map(|f| f.flow_hash()).collect();
    let mut templates = HashMap::new();
    for c in [RequestClass::Get, RequestClass::Scan] {
        let frame = Frame::build(
            &flows[0],
            &AppHeader {
                req_type: c.code(),
                user_id: 0,
                key_hash: 0,
                req_id: 0,
            },
        );
        templates.insert(c.code(), frame.datagram().to_vec());
    }

    let warmup_end = Time::ZERO + cfg.warmup;
    let end = warmup_end + cfg.measure;

    let mut group = ReuseportGroup::new(cfg.threads, cfg.socket_capacity);
    group.attach_tracer(&cfg.tracer);

    let mut world = MtWorld {
        cfg,
        rng,
        queue: ShardedQueue::new(cfg.shards),
        syrupd,
        group,
        class_map,
        templates,
        flow_hashes,
        sched,
        current: vec![None; cfg.threads],
        on_core: vec![None; cfg.threads],
        token: vec![0; cfg.threads],
        arrivals: ArrivalGen::poisson(cfg.load_rps),
        mix: RequestMix::new(&[
            (RequestClass::Get.class_id(), cfg.get_fraction),
            (RequestClass::Scan.class_id(), 1.0 - cfg.get_fraction),
        ]),
        get_rec: LatencyRecorder::new(warmup_end),
        scan_rec: LatencyRecorder::new(warmup_end),
        dropped: 0,
        end,
    };
    world.run()
}

struct MtWorld<'c> {
    cfg: &'c MtConfig,
    rng: SimRng,
    queue: ShardedQueue<Ev>,
    syrupd: Syrupd,
    group: ReuseportGroup<Req>,
    class_map: MapRef,
    templates: HashMap<u64, Vec<u8>>,
    flow_hashes: Vec<u32>,
    sched: Sched,
    /// In-flight request per thread (paused when `started` is None).
    current: Vec<Option<InFlight>>,
    /// Core each thread currently occupies.
    on_core: Vec<Option<CoreId>>,
    /// Run-token per thread: stale ThreadStart/Complete events are ignored.
    token: Vec<u64>,
    arrivals: ArrivalGen,
    mix: RequestMix,
    get_rec: LatencyRecorder,
    scan_rec: LatencyRecorder,
    dropped: u64,
    end: Time,
}

impl MtWorld<'_> {
    fn run(&mut self) -> MtResult {
        if let Some(t0) = self.arrivals.next_arrival(&mut self.rng) {
            self.queue.push(t0, Ev::Arrival);
        }
        // CFS needs periodic per-core slice ticks.
        if let Some(slice) = self.sched.as_dyn().timeslice() {
            for core in self.sched.as_dyn().app_cores() {
                self.queue.push_keyed(
                    Time::ZERO + slice,
                    u64::from(core.0),
                    Ev::SliceTick { core },
                );
            }
        }

        while let Some((now, ev)) = self.queue.pop() {
            match ev {
                Ev::Arrival => self.on_arrival(now),
                Ev::Deliver(req) => self.on_deliver(now, req),
                Ev::ThreadStart {
                    thread,
                    core,
                    token,
                } => self.on_thread_start(now, thread, core, token),
                Ev::Complete { thread, token } => self.on_complete(now, thread, token),
                Ev::SliceTick { core } => {
                    let assignments = self.sched.as_dyn().preempt_check(core, now);
                    self.apply(now, assignments);
                    if now < self.end + Duration::from_millis(50) {
                        let slice = self
                            .sched
                            .as_dyn()
                            .timeslice()
                            .expect("tick only scheduled for sliced scheds");
                        self.queue.push_keyed(
                            now + slice,
                            u64::from(core.0),
                            Ev::SliceTick { core },
                        );
                    }
                }
            }
        }

        let preemptions = match &self.sched {
            Sched::Ghost(g) => g.preemptions,
            Sched::Cfs(_) => 0,
        };
        MtResult {
            get: self.get_rec.summary(),
            scan: self.scan_rec.summary(),
            completed: (self.get_rec.len() + self.scan_rec.len()) as u64,
            dropped: self.dropped,
            preemptions,
        }
    }

    fn on_arrival(&mut self, now: Time) {
        if let Some(next) = self.arrivals.next_arrival(&mut self.rng) {
            if next < self.end {
                self.queue.push(next, Ev::Arrival);
            }
        }
        let class = if self.mix.sample(&mut self.rng) == RequestClass::Scan.class_id() {
            RequestClass::Scan
        } else {
            RequestClass::Get
        };
        let flow = self.rng.index(self.flow_hashes.len());
        let trace = self.cfg.tracer.ingress(now.as_nanos());
        let deliver_at = now + self.cfg.stack.standard_rx_latency();
        self.cfg.tracer.span(
            trace,
            syrup_trace::Stage::StackRx,
            now.as_nanos(),
            deliver_at.as_nanos(),
        );
        let req = Req {
            arrival: now,
            class,
            service: self.cfg.model.sample(class, &mut self.rng),
            flow_hash: self.flow_hashes[flow],
            measured: now >= Time::ZERO + self.cfg.warmup,
            trace,
        };
        self.queue
            .push_keyed(deliver_at, u64::from(req.flow_hash), Ev::Deliver(req));
    }

    fn on_deliver(&mut self, now: Time, req: Req) {
        let mut template = self
            .templates
            .get(&req.class.code())
            .cloned()
            .unwrap_or_default();
        let meta = HookMeta {
            now_ns: now.as_nanos(),
            cpu: 0,
            rx_queue: 0,
            dst_port: self.cfg.port,
            trace: req.trace,
        };
        let (_, decision) = self
            .syrupd
            .schedule(Hook::SocketSelect, &mut template, &meta);
        match self
            .group
            .deliver_traced(req, req.flow_hash, decision, req.trace, now.as_nanos())
        {
            Delivery::Enqueued(thread) => {
                // Publish the class this thread will serve next if it is
                // about to pick this request up (head of an empty queue).
                let idle = self.current[thread].is_none();
                if idle && self.group.socket(thread).map(|s| s.len()) == Some(1) {
                    let c = if req.class == RequestClass::Scan {
                        class::SCAN
                    } else {
                        class::GET
                    };
                    let _ = self.class_map.update_u64(thread as u32, c);
                }
                if idle {
                    // The thread will pick this request up next: attribute
                    // its ghOSt enqueue/dispatch spans to this trace.
                    self.set_ghost_trace(thread, req.trace);
                    let assignments = self
                        .sched
                        .as_dyn()
                        .thread_ready(ThreadId(thread as u32), now);
                    self.apply(now, assignments);
                }
            }
            Delivery::Dropped { .. } => {
                if req.measured {
                    self.dropped += 1;
                }
            }
        }
    }

    /// Points ghOSt's per-thread trace attribution at `ctx` (no-op under
    /// CFS, which records no scheduler spans).
    fn set_ghost_trace(&mut self, thread: usize, ctx: syrup_trace::TraceCtx) {
        if let Sched::Ghost(g) = &mut self.sched {
            g.set_thread_trace(ThreadId(thread as u32), ctx);
        }
    }

    fn apply(&mut self, now: Time, assignments: Vec<Assignment>) {
        for a in assignments {
            if let Some(victim) = a.preempted {
                self.pause_thread(victim.0 as usize, a.start_at.max(now));
            }
            let thread = a.thread.0 as usize;
            self.token[thread] += 1;
            self.queue.push_keyed(
                a.start_at,
                thread as u64,
                Ev::ThreadStart {
                    thread,
                    core: a.core,
                    token: self.token[thread],
                },
            );
        }
    }

    /// Stops a running thread at `at`, banking its remaining service.
    fn pause_thread(&mut self, thread: usize, at: Time) {
        self.token[thread] += 1; // invalidate its Complete event
        self.on_core[thread] = None;
        if let Some(inflight) = self.current[thread].as_mut() {
            if let Some(started) = inflight.started.take() {
                let ran = at.since(started);
                inflight.remaining = inflight.remaining - ran;
                // Each on-core interval is its own run span, so a
                // preempted request's timeline shows the gap.
                self.cfg.tracer.span_arg(
                    inflight.req.trace,
                    syrup_trace::Stage::Run,
                    started.as_nanos(),
                    at.as_nanos(),
                    thread as u64,
                );
            }
        }
    }

    fn on_thread_start(&mut self, now: Time, thread: usize, core: CoreId, token: u64) {
        if self.token[thread] != token {
            return; // superseded
        }
        self.on_core[thread] = Some(core);
        if self.current[thread].is_none() {
            // Fresh dispatch: take the head request from the socket.
            let Some(req) = self.group.recv(thread) else {
                // Spurious wakeup: nothing to do, block again.
                let assignments =
                    self.sched
                        .as_dyn()
                        .thread_stopped(ThreadId(thread as u32), core, now);
                self.apply(now, assignments);
                return;
            };
            let c = if req.class == RequestClass::Scan {
                class::SCAN
            } else {
                class::GET
            };
            let _ = self.class_map.update_u64(thread as u32, c);
            let enqueued_at = req.arrival + self.cfg.stack.standard_rx_latency();
            self.cfg.tracer.span_arg(
                req.trace,
                syrup_trace::Stage::SockQueue,
                enqueued_at.as_nanos(),
                now.as_nanos(),
                thread as u64,
            );
            self.set_ghost_trace(thread, req.trace);
            self.current[thread] = Some(InFlight {
                req,
                remaining: self.cfg.per_request_overhead + req.service,
                started: None,
            });
        }
        let inflight = self.current[thread].as_mut().expect("set above");
        inflight.started = Some(now);
        self.queue.push_keyed(
            now + inflight.remaining,
            thread as u64,
            Ev::Complete { thread, token },
        );
    }

    fn on_complete(&mut self, now: Time, thread: usize, token: u64) {
        if self.token[thread] != token {
            return; // the thread was preempted before finishing
        }
        let inflight = self.current[thread].take().expect("was running");
        let core = self.on_core[thread].expect("completing thread is on a core");
        if let Some(started) = inflight.started {
            self.cfg.tracer.span_arg(
                inflight.req.trace,
                syrup_trace::Stage::Run,
                started.as_nanos(),
                now.as_nanos(),
                thread as u64,
            );
        }
        self.cfg.tracer.finish(inflight.req.trace, now.as_nanos());
        if inflight.req.measured {
            match inflight.req.class {
                RequestClass::Scan => self.scan_rec.record(inflight.req.arrival, now),
                _ => self.get_rec.record(inflight.req.arrival, now),
            }
        }
        // More work queued? The thread keeps its core and loops.
        if let Some(req) = self.group.recv(thread) {
            let c = if req.class == RequestClass::Scan {
                class::SCAN
            } else {
                class::GET
            };
            let _ = self.class_map.update_u64(thread as u32, c);
            let enqueued_at = req.arrival + self.cfg.stack.standard_rx_latency();
            self.cfg.tracer.span_arg(
                req.trace,
                syrup_trace::Stage::SockQueue,
                enqueued_at.as_nanos(),
                now.as_nanos(),
                thread as u64,
            );
            self.set_ghost_trace(thread, req.trace);
            self.token[thread] += 1;
            let new_token = self.token[thread];
            self.current[thread] = Some(InFlight {
                req,
                remaining: self.cfg.per_request_overhead + req.service,
                started: Some(now),
            });
            let remaining = self.cfg.per_request_overhead + req.service;
            self.queue.push_keyed(
                now + remaining,
                thread as u64,
                Ev::Complete {
                    thread,
                    token: new_token,
                },
            );
            return;
        }
        // Idle: release the core.
        let _ = self.class_map.update_u64(thread as u32, class::GET);
        self.set_ghost_trace(thread, syrup_trace::TraceCtx::none());
        self.on_core[thread] = None;
        self.token[thread] += 1;
        let assignments = self
            .sched
            .as_dyn()
            .thread_stopped(ThreadId(thread as u32), core, now);
        self.apply(now, assignments);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(policy: SocketPolicyKind, sched: SchedKind, load: f64) -> MtResult {
        let mut cfg = MtConfig::fig8(policy, sched, load, 11);
        cfg.warmup = Duration::from_millis(50);
        cfg.measure = Duration::from_millis(400);
        run(&cfg)
    }

    #[test]
    fn low_load_completes_everything() {
        let r = quick(SocketPolicyKind::ScanAvoid, SchedKind::Cfs, 2_000.0);
        assert!(r.completed > 500, "completed {}", r.completed);
        assert_eq!(r.dropped, 0);
    }

    #[test]
    fn ghost_preempts_scans_for_gets() {
        let r = quick(SocketPolicyKind::Vanilla, SchedKind::Ghost, 4_000.0);
        assert!(r.preemptions > 0, "GET-priority policy should preempt");
    }

    #[test]
    fn cross_layer_beats_single_layer_on_get_tail() {
        let load = 6_000.0;
        let socket_only = quick(SocketPolicyKind::ScanAvoid, SchedKind::Cfs, load);
        let thread_only = quick(SocketPolicyKind::Vanilla, SchedKind::Ghost, load);
        let both = quick(SocketPolicyKind::ScanAvoid, SchedKind::Ghost, load);
        let (so, to, bo) = (socket_only.get.p99(), thread_only.get.p99(), both.get.p99());
        assert!(
            bo < so && bo < to,
            "cross-layer GET p99 {bo} vs socket-only {so} / thread-only {to}"
        );
    }

    #[test]
    fn thread_only_get_tail_is_high_even_at_low_load() {
        // §5.3: "GET tail latency is very high (>800µs) even for very low
        // load as GETs can still get stuck behind SCANs in a network
        // socket."
        let r = quick(SocketPolicyKind::Vanilla, SchedKind::Ghost, 3_000.0);
        assert!(
            r.get.p99() > Duration::from_micros(300),
            "thread-only GET p99 {}",
            r.get.p99()
        );
    }

    #[test]
    fn deterministic_under_seed() {
        let a = quick(SocketPolicyKind::ScanAvoid, SchedKind::Ghost, 5_000.0);
        let b = quick(SocketPolicyKind::ScanAvoid, SchedKind::Ghost, 5_000.0);
        assert_eq!(a.completed, b.completed);
        assert_eq!(a.get.p99(), b.get.p99());
    }
}
