//! The pinned-thread server world: Figures 2, 6, and 7.
//!
//! §5.2's deployment: N RocksDB server threads, each pinned to its own
//! core and owning one `SO_REUSEPORT` UDP socket; an open-loop client
//! offers Poisson arrivals over a fixed set of 5-tuples; a Syrup
//! socket-select policy (deployed through `syrupd`) decides which socket —
//! and therefore which thread — handles each datagram.
//!
//! The world is a discrete-event simulation:
//!
//! ```text
//! arrival ──(stack latency)──► socket-select hook ──► socket FIFO ──►
//!   worker thread (syscall overhead + service time) ──► completion
//! ```
//!
//! Full buffers and policy `DROP`s are counted against offered load
//! (Figure 2b); completions record client-observed latency (arrival →
//! completion), from which the harness extracts p99 (Figures 2a, 6) and
//! per-user goodput (Figure 7).

use std::collections::HashMap;

use syrup_core::{AppId, Hook, HookMeta, PolicySource, Syrupd};
use syrup_ghost::ghost::class;
use syrup_net::socket::{Delivery, ReuseportGroup};
use syrup_net::{flow, AppHeader, Frame, RequestClass, StackCosts};
use syrup_policies::{RoundRobinPolicy, ScanAvoidPolicy, SitaPolicy, TokenPolicy, VanillaPolicy};
use syrup_sim::{
    ArrivalGen, Duration, EventQueue, LatencyRecorder, LatencySummary, RequestMix, RunStats,
    SimRng, Time,
};

use crate::rocksdb::RocksDbModel;
use crate::token_agent::TokenAgent;

/// Which paper policy to deploy at the socket-select hook.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SocketPolicyKind {
    /// No policy: Linux's default 5-tuple-hash reuseport selection
    /// ("Vanilla Linux").
    Vanilla,
    /// Figure 5a round robin.
    RoundRobin,
    /// Figure 5c SCAN Avoid (kernel half) + Figure 5b userspace updates.
    ScanAvoid,
    /// Figure 5d SITA.
    Sita,
    /// §5.2.2 token-based QoS with the userspace refill agent.
    TokenBased {
        /// LS token generation rate per second (the paper: 350K).
        rate_per_sec: u64,
    },
}

/// A tenant issuing requests (Figure 7 has an LS and a BE user).
#[derive(Debug, Clone, Copy)]
pub struct Tenant {
    /// Wire user id.
    pub user_id: u32,
    /// Offered load share (weights normalized across tenants).
    pub weight: f64,
}

/// Experiment parameters.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Server threads (= cores = sockets).
    pub threads: usize,
    /// The UDP port all sockets share.
    pub port: u16,
    /// Number of distinct client 5-tuples (Figure 2 uses 50).
    pub num_flows: usize,
    /// Socket receive-buffer capacity in datagrams.
    pub socket_capacity: usize,
    /// Total offered load in requests per second.
    pub load_rps: f64,
    /// GET fraction; the rest are SCANs.
    pub get_fraction: f64,
    /// Service-time model.
    pub model: RocksDbModel,
    /// Per-request syscall work on the worker (recvmsg + sendmsg).
    pub per_request_overhead: Duration,
    /// RX path cost model.
    pub stack: StackCosts,
    /// The deployed policy.
    pub policy: SocketPolicyKind,
    /// Deploy the policy as compiled-and-verified eBPF bytecode instead of
    /// the native fast path — the full §3.1 pipeline exercised per packet.
    /// Slower to simulate; decision behaviour is identical (asserted by
    /// the `ebpf_end_to_end` integration test).
    pub use_ebpf: bool,
    /// Tenants (single anonymous tenant if empty).
    pub tenants: Vec<Tenant>,
    /// Warm-up interval excluded from statistics.
    pub warmup: Duration,
    /// Measured interval.
    pub measure: Duration,
    /// RNG seed (sweeps vary this for error bars).
    pub seed: u64,
    /// Request tracer (disabled by default — the fast path stays free).
    /// An enabled tracer samples ingresses and records a span per stage
    /// each traced request crosses: stack RX, the socket-select hook (and
    /// the VM, when `use_ebpf`), socket residency, and on-thread run.
    pub tracer: syrup_trace::Tracer,
}

impl ServerConfig {
    /// The §5.2 baseline setup: 6 threads, 50 flows, Figure 2's GET-only
    /// workload at `load_rps`.
    pub fn fig2(policy: SocketPolicyKind, load_rps: f64, seed: u64) -> Self {
        ServerConfig {
            threads: 6,
            port: 8080,
            num_flows: 50,
            socket_capacity: 256,
            load_rps,
            get_fraction: 1.0,
            model: RocksDbModel::default(),
            per_request_overhead: Duration::from_micros(2),
            stack: StackCosts::default(),
            policy,
            use_ebpf: false,
            tenants: Vec::new(),
            warmup: Duration::from_millis(50),
            measure: Duration::from_millis(300),
            seed,
            tracer: syrup_trace::Tracer::disabled(),
        }
    }

    /// Figure 6's mix: 99.5% GET / 0.5% SCAN.
    pub fn fig6(policy: SocketPolicyKind, load_rps: f64, seed: u64) -> Self {
        ServerConfig {
            get_fraction: 0.995,
            ..ServerConfig::fig2(policy, load_rps, seed)
        }
    }

    /// Figure 7's two-tenant GET-only workload: total load fixed, split
    /// between the LS user (id 0) and the BE user (id 1).
    pub fn fig7(policy: SocketPolicyKind, ls_rps: f64, be_rps: f64, seed: u64) -> Self {
        ServerConfig {
            load_rps: ls_rps + be_rps,
            get_fraction: 1.0,
            // Saturation for Figure 7 sits near 400K RPS in the paper's
            // setup; a heavier syscall path reproduces that.
            per_request_overhead: Duration::from_micros(4),
            tenants: vec![
                Tenant {
                    user_id: 0,
                    weight: ls_rps,
                },
                Tenant {
                    user_id: 1,
                    weight: be_rps,
                },
            ],
            ..ServerConfig::fig2(policy, ls_rps + be_rps, seed)
        }
    }
}

/// Per-tenant outcome.
#[derive(Debug, Clone)]
pub struct TenantStats {
    /// Requests offered post warm-up.
    pub offered: u64,
    /// Requests completed and measured.
    pub completed: u64,
    /// Requests dropped (policy or buffer).
    pub dropped: u64,
    /// Latency order statistics.
    pub latency: LatencySummary,
}

impl TenantStats {
    /// Goodput over the measured window.
    pub fn throughput_rps(&self, measure: Duration) -> f64 {
        self.completed as f64 / measure.as_secs_f64()
    }
}

/// The result of one run.
#[derive(Debug, Clone)]
pub struct ServerResult {
    /// Aggregate statistics.
    pub overall: RunStats,
    /// Per-tenant breakdown (empty unless tenants were configured).
    pub per_tenant: HashMap<u32, TenantStats>,
    /// Per-class latency (GET vs SCAN), for Figure 6 commentary.
    pub per_class: HashMap<u32, LatencySummary>,
    /// End-of-run metrics exported by `syrupd` and the substrates
    /// (dispatch/verdict counters, VM cycle histograms, socket drops).
    pub telemetry: syrup_telemetry::Snapshot,
}

#[derive(Debug, Clone, Copy)]
struct Req {
    arrival: Time,
    class: RequestClass,
    user: u32,
    service: Duration,
    flow_hash: u32,
    /// Set once the request survives admission, for warm-up accounting.
    measured: bool,
    /// Trace context (untraced unless the world's tracer sampled it).
    trace: syrup_trace::TraceCtx,
}

enum Ev {
    Arrival,
    Deliver(Req),
    Complete { thread: usize },
    TokenEpoch,
}

struct PendingTenant {
    recorder: LatencyRecorder,
    offered: u64,
    completed: u64,
    dropped: u64,
}

/// Runs one experiment and returns its statistics.
pub fn run(cfg: &ServerConfig) -> ServerResult {
    World::new(cfg).run()
}

struct World<'c> {
    cfg: &'c ServerConfig,
    rng: SimRng,
    queue: EventQueue<Ev>,
    syrupd: Syrupd,
    app: AppId,
    group: ReuseportGroup<Req>,
    /// Current request per thread (None = idle).
    busy: Vec<Option<Req>>,
    /// Pre-built datagram per (class, user), handed to the hook.
    templates: HashMap<(u64, u32), Vec<u8>>,
    arrivals: ArrivalGen,
    mix: RequestMix,
    tenant_pick: Vec<(f64, u32)>,
    flow_hashes: Vec<u32>,
    recorder: LatencyRecorder,
    per_class: HashMap<u32, Vec<u64>>,
    tenants: HashMap<u32, PendingTenant>,
    offered: u64,
    dropped: u64,
    warmup_end: Time,
    end: Time,
    scan_map: Option<syrup_core::MapRef>,
    token_agent: Option<TokenAgent>,
}

impl<'c> World<'c> {
    fn new(cfg: &'c ServerConfig) -> Self {
        let mut rng = SimRng::new(cfg.seed);
        let syrupd = Syrupd::new();
        let (app, maps) = syrupd
            .register_app("rocksdb", &[cfg.port])
            .expect("fresh daemon has no port conflicts");

        let n = cfg.threads as u32;
        let mut scan_map = None;
        let mut token_agent = None;
        let deploy = |source: PolicySource| {
            syrupd
                .deploy(app, Hook::SocketSelect, source)
                .expect("policy deploys")
        };
        match cfg.policy {
            SocketPolicyKind::Vanilla => {
                deploy(PolicySource::Native(Box::new(VanillaPolicy)));
            }
            SocketPolicyKind::RoundRobin => {
                if cfg.use_ebpf {
                    deploy(PolicySource::C {
                        source: syrup_policies::c_sources::ROUND_ROBIN.to_string(),
                        options: syrup_core::CompileOptions::new()
                            .define("NUM_THREADS", i64::from(n)),
                    });
                } else {
                    deploy(PolicySource::Native(Box::new(RoundRobinPolicy::new(n))));
                }
            }
            SocketPolicyKind::ScanAvoid => {
                if cfg.use_ebpf {
                    let handle = deploy(PolicySource::C {
                        source: syrup_policies::c_sources::SCAN_AVOID.to_string(),
                        options: syrup_core::CompileOptions::new()
                            .define("NUM_THREADS", i64::from(n))
                            .define("GET", class::GET as i64),
                    });
                    let map = maps
                        .open(&handle.pinned_maps["scan_map"])
                        .expect("policy pinned its scan map");
                    for i in 0..n {
                        map.update_u64(i, class::GET).expect("in range");
                    }
                    scan_map = Some(map);
                } else {
                    let map = maps
                        .create_pinned("scan_map", syrup_core::MapDef::u64_array(64))
                        .expect("create scan map");
                    // All threads start "serving GETs".
                    for i in 0..n {
                        map.update_u64(i, class::GET).expect("in range");
                    }
                    deploy(PolicySource::Native(Box::new(ScanAvoidPolicy::new(
                        map.clone(),
                        n,
                        cfg.seed ^ 0xABCD,
                    ))));
                    scan_map = Some(map);
                }
            }
            SocketPolicyKind::Sita => {
                if cfg.use_ebpf {
                    deploy(PolicySource::C {
                        source: syrup_policies::c_sources::SITA.to_string(),
                        options: syrup_core::CompileOptions::new()
                            .define("NUM_THREADS", i64::from(n))
                            .define("SCAN", RequestClass::Scan.code() as i64),
                    });
                } else {
                    deploy(PolicySource::Native(Box::new(SitaPolicy::new(n))));
                }
            }
            SocketPolicyKind::TokenBased { rate_per_sec } => {
                let map = if cfg.use_ebpf {
                    let handle = deploy(PolicySource::C {
                        source: syrup_policies::c_sources::TOKEN_BASED.to_string(),
                        options: syrup_core::CompileOptions::new()
                            .define("NUM_THREADS", i64::from(n)),
                    });
                    maps.open(&handle.pinned_maps["token_map"])
                        .expect("policy pinned its token map")
                } else {
                    let map = maps
                        .create_pinned("token_map", syrup_core::MapDef::u64_array(16))
                        .expect("create token map");
                    deploy(PolicySource::Native(Box::new(TokenPolicy::new(
                        map.clone(),
                        n,
                    ))));
                    map
                };
                let mut agent =
                    TokenAgent::new(map, Duration::from_micros(100), rate_per_sec, 0, 1);
                agent.on_epoch();
                token_agent = Some(agent);
            }
        }

        // Client flow set and their kernel flow hashes.
        let flows = flow::client_flows(cfg.num_flows, cfg.port, &mut rng);
        let flow_hashes: Vec<u32> = flows.iter().map(|f| f.flow_hash()).collect();

        // Datagram templates per (class, user) — policies read only the
        // class/user/key fields, so requests can share buffers.
        let mut templates = HashMap::new();
        let users: Vec<u32> = if cfg.tenants.is_empty() {
            vec![0]
        } else {
            cfg.tenants.iter().map(|t| t.user_id).collect()
        };
        for class in [RequestClass::Get, RequestClass::Scan] {
            for &user in &users {
                let frame = Frame::build(
                    &flows[0],
                    &AppHeader {
                        req_type: class.code(),
                        user_id: user,
                        key_hash: 0,
                        req_id: 0,
                    },
                );
                templates.insert((class.code(), user), frame.datagram().to_vec());
            }
        }

        let tenant_total: f64 = cfg.tenants.iter().map(|t| t.weight.max(0.0)).sum();
        let mut acc = 0.0;
        let tenant_pick = cfg
            .tenants
            .iter()
            .filter(|t| t.weight > 0.0)
            .map(|t| {
                acc += t.weight / tenant_total;
                (acc, t.user_id)
            })
            .collect();

        let warmup_end = Time::ZERO + cfg.warmup;
        let end = warmup_end + cfg.measure;
        let tenants = cfg
            .tenants
            .iter()
            .map(|t| {
                (
                    t.user_id,
                    PendingTenant {
                        recorder: LatencyRecorder::new(warmup_end),
                        offered: 0,
                        completed: 0,
                        dropped: 0,
                    },
                )
            })
            .collect();

        let mut group = ReuseportGroup::new(cfg.threads, cfg.socket_capacity);
        group.attach_telemetry(syrupd.telemetry(), "sock");
        group.attach_tracer(&cfg.tracer);
        syrupd.attach_tracer(&cfg.tracer);

        World {
            cfg,
            queue: EventQueue::new(),
            syrupd,
            app,
            group,
            busy: vec![None; cfg.threads],
            templates,
            arrivals: ArrivalGen::poisson(cfg.load_rps),
            mix: RequestMix::new(&[
                (RequestClass::Get.class_id(), cfg.get_fraction),
                (RequestClass::Scan.class_id(), 1.0 - cfg.get_fraction),
            ]),
            tenant_pick,
            flow_hashes,
            recorder: LatencyRecorder::new(warmup_end),
            per_class: HashMap::new(),
            tenants,
            offered: 0,
            dropped: 0,
            warmup_end,
            end,
            scan_map,
            token_agent,
            rng,
        }
    }

    fn pick_tenant(&mut self) -> u32 {
        if self.tenant_pick.is_empty() {
            return 0;
        }
        let u: f64 = self.rng.gen_range(0.0..1.0);
        for &(cum, id) in &self.tenant_pick {
            if u < cum {
                return id;
            }
        }
        self.tenant_pick.last().map(|&(_, id)| id).unwrap_or(0)
    }

    fn run(mut self) -> ServerResult {
        if let Some(t0) = self.arrivals.next_arrival(&mut self.rng) {
            self.queue.push(t0, Ev::Arrival);
        }
        if self.token_agent.is_some() {
            self.queue
                .push(Time::ZERO + Duration::from_micros(100), Ev::TokenEpoch);
        }

        while let Some((now, ev)) = self.queue.pop() {
            match ev {
                Ev::Arrival => self.on_arrival(now),
                Ev::Deliver(req) => self.on_deliver(now, req),
                Ev::Complete { thread } => self.on_complete(now, thread),
                Ev::TokenEpoch => {
                    if let Some(agent) = self.token_agent.as_mut() {
                        agent.on_epoch();
                        if now < self.end {
                            self.queue.push(now + agent.epoch, Ev::TokenEpoch);
                        }
                    }
                }
            }
        }

        let overall =
            RunStats::from_recorder(&self.recorder, self.offered, self.dropped, self.cfg.measure);
        // Export per-tenant aggregates into the registry so downstream
        // consumers (the fig7 harness) can work from the snapshot alone.
        let registry = self.syrupd.telemetry().clone();
        for (id, t) in &self.tenants {
            let p = format!("tenant{id}");
            registry.counter(&format!("{p}/offered")).add(t.offered);
            registry.counter(&format!("{p}/completed")).add(t.completed);
            registry.counter(&format!("{p}/dropped")).add(t.dropped);
            let hist = registry.histogram(&format!("{p}/latency_ns"));
            for &ns in t.recorder.summary().samples() {
                hist.record(ns);
            }
        }
        let telemetry = self.syrupd.telemetry_snapshot();
        let per_tenant = self
            .tenants
            .into_iter()
            .map(|(id, t)| {
                (
                    id,
                    TenantStats {
                        offered: t.offered,
                        completed: t.completed,
                        dropped: t.dropped,
                        latency: t.recorder.summary(),
                    },
                )
            })
            .collect();
        let per_class = self
            .per_class
            .into_iter()
            .map(|(c, samples)| (c, LatencySummary::from_nanos(samples)))
            .collect();
        ServerResult {
            overall,
            per_tenant,
            per_class,
            telemetry,
        }
    }

    fn on_arrival(&mut self, now: Time) {
        // Schedule the next arrival first (open loop).
        if let Some(next) = self.arrivals.next_arrival(&mut self.rng) {
            if next < self.end {
                self.queue.push(next, Ev::Arrival);
            }
        }
        let class = if self.mix.sample(&mut self.rng) == RequestClass::Scan.class_id() {
            RequestClass::Scan
        } else {
            RequestClass::Get
        };
        let user = self.pick_tenant();
        let flow = self.rng.index(self.flow_hashes.len());
        let measured = now >= self.warmup_end;
        if measured {
            self.offered += 1;
            if let Some(t) = self.tenants.get_mut(&user) {
                t.offered += 1;
            }
        }
        let trace = self.cfg.tracer.ingress(now.as_nanos());
        let deliver_at = now + self.cfg.stack.standard_rx_latency();
        self.cfg.tracer.span(
            trace,
            syrup_trace::Stage::StackRx,
            now.as_nanos(),
            deliver_at.as_nanos(),
        );
        let req = Req {
            arrival: now,
            class,
            user,
            service: self.cfg.model.sample(class, &mut self.rng),
            flow_hash: self.flow_hashes[flow],
            measured,
            trace,
        };
        self.queue.push(deliver_at, Ev::Deliver(req));
    }

    fn on_deliver(&mut self, now: Time, req: Req) {
        let key = (req.class.code(), req.user);
        let mut template = self.templates.get(&key).cloned().unwrap_or_default();
        let meta = HookMeta {
            now_ns: now.as_nanos(),
            cpu: 0,
            rx_queue: 0,
            dst_port: self.cfg.port,
            trace: req.trace,
        };
        let (_app, decision) = self
            .syrupd
            .schedule(Hook::SocketSelect, &mut template, &meta);
        debug_assert!(_app.is_none() || _app == Some(self.app));
        match self
            .group
            .deliver_traced(req, req.flow_hash, decision, req.trace, now.as_nanos())
        {
            Delivery::Enqueued(socket) => {
                if self.busy[socket].is_none() {
                    self.start_next(now, socket);
                }
            }
            Delivery::Dropped { .. } => {
                if req.measured {
                    self.dropped += 1;
                    if let Some(t) = self.tenants.get_mut(&req.user) {
                        t.dropped += 1;
                    }
                }
            }
        }
    }

    fn start_next(&mut self, now: Time, thread: usize) {
        let Some(req) = self.group.recv(thread) else {
            return;
        };
        // Figure 5b's userspace half: publish what this thread is serving.
        if let Some(map) = &self.scan_map {
            let c = if req.class == RequestClass::Scan {
                class::SCAN
            } else {
                class::GET
            };
            let _ = map.update_u64(thread as u32, c);
        }
        let busy_for = self.cfg.per_request_overhead + req.service;
        // Residency: from the post-hook enqueue until this `recvmsg`.
        let enqueued_at = req.arrival + self.cfg.stack.standard_rx_latency();
        self.cfg.tracer.span_arg(
            req.trace,
            syrup_trace::Stage::SockQueue,
            enqueued_at.as_nanos(),
            now.as_nanos(),
            thread as u64,
        );
        self.cfg.tracer.span_arg(
            req.trace,
            syrup_trace::Stage::Run,
            now.as_nanos(),
            (now + busy_for).as_nanos(),
            thread as u64,
        );
        self.busy[thread] = Some(req);
        self.queue.push(now + busy_for, Ev::Complete { thread });
    }

    fn on_complete(&mut self, now: Time, thread: usize) {
        if let Some(req) = self.busy[thread].take() {
            self.cfg.tracer.finish(req.trace, now.as_nanos());
            if req.measured {
                self.recorder.record(req.arrival, now);
                self.per_class
                    .entry(req.class.class_id())
                    .or_default()
                    .push(now.since(req.arrival).as_nanos());
                if let Some(t) = self.tenants.get_mut(&req.user) {
                    t.completed += 1;
                    t.recorder.record(req.arrival, now);
                }
            }
        }
        if let Some(map) = &self.scan_map {
            let _ = map.update_u64(thread as u32, class::GET);
        }
        self.start_next(now, thread);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(policy: SocketPolicyKind, load: f64, get_frac: f64) -> ServerResult {
        let mut cfg = ServerConfig::fig2(policy, load, 42);
        cfg.get_fraction = get_frac;
        cfg.warmup = Duration::from_millis(20);
        cfg.measure = Duration::from_millis(120);
        run(&cfg)
    }

    #[test]
    fn low_load_latency_is_near_service_time() {
        let r = quick(SocketPolicyKind::RoundRobin, 50_000.0, 1.0);
        let p50 = r.overall.latency.p50().as_micros_f64();
        // ~11µs service + ~4µs stack + 2µs syscall, plus light queueing.
        assert!((14.0..40.0).contains(&p50), "p50 {p50}us");
        assert_eq!(r.overall.dropped, 0);
        assert!(r.overall.completed > 4_000);
    }

    #[test]
    fn fig2_vanilla_drops_and_explodes_where_rr_does_not() {
        // At 350K RPS: vanilla's hottest hash bucket saturates; RR is fine.
        let mut vanilla_bad = 0;
        for seed in [1, 2, 3] {
            let mut cfg = ServerConfig::fig2(SocketPolicyKind::Vanilla, 350_000.0, seed);
            cfg.warmup = Duration::from_millis(20);
            cfg.measure = Duration::from_millis(150);
            let v = run(&cfg);
            if v.overall.drop_pct() > 0.5 || v.overall.latency.p99() > Duration::from_micros(500) {
                vanilla_bad += 1;
            }
        }
        assert!(
            vanilla_bad >= 2,
            "vanilla should struggle at 350K in most seeds"
        );

        let mut cfg = ServerConfig::fig2(SocketPolicyKind::RoundRobin, 350_000.0, 1);
        cfg.warmup = Duration::from_millis(20);
        cfg.measure = Duration::from_millis(150);
        let rr = run(&cfg);
        assert_eq!(rr.overall.dropped, 0, "RR balances perfectly");
        assert!(
            rr.overall.latency.p99() < Duration::from_micros(200),
            "RR p99 {}",
            rr.overall.latency.p99()
        );
    }

    #[test]
    fn fig6_sita_beats_scan_avoid_beats_rr() {
        let load = 150_000.0;
        let rr = quick(SocketPolicyKind::RoundRobin, load, 0.995);
        let sa = quick(SocketPolicyKind::ScanAvoid, load, 0.995);
        let sita = quick(SocketPolicyKind::Sita, load, 0.995);
        let (rr99, sa99, sita99) = (
            rr.overall.latency.p99(),
            sa.overall.latency.p99(),
            sita.overall.latency.p99(),
        );
        // SCANs dominate RR's tail; SCAN-Avoid and SITA keep it low.
        assert!(rr99 > Duration::from_micros(600), "RR p99 {rr99}");
        assert!(sa99 < rr99, "SCAN-Avoid {sa99} vs RR {rr99}");
        assert!(sita99 < Duration::from_micros(200), "SITA p99 {sita99}");
    }

    #[test]
    fn fig7_token_policy_caps_ls_latency() {
        // Offered 400K total (above the ~370K effective capacity); the
        // token policy admits only 350K so the LS user stays fast.
        let mut cfg = ServerConfig::fig7(
            SocketPolicyKind::TokenBased {
                rate_per_sec: 350_000,
            },
            200_000.0,
            200_000.0,
            7,
        );
        cfg.warmup = Duration::from_millis(30);
        cfg.measure = Duration::from_millis(150);
        let r = run(&cfg);
        let ls = &r.per_tenant[&0];
        let be = &r.per_tenant[&1];
        assert!(
            ls.latency.p99() < Duration::from_micros(400),
            "LS p99 {}",
            ls.latency.p99()
        );
        // Drops happen (admission control) but BE still gets leftovers.
        assert!(be.completed > 0);
        assert!(
            r.overall.dropped > 0,
            "admission control must drop something"
        );
    }

    #[test]
    fn telemetry_snapshot_covers_the_stack() {
        let r = quick(SocketPolicyKind::RoundRobin, 50_000.0, 1.0);
        let t = &r.telemetry;
        assert_eq!(t.counter("syrupd/deploys"), 1);
        // Every datagram went through the socket-select hook once...
        assert!(t.counter("syrupd/dispatches") > r.overall.completed);
        // ...and was delivered to some socket (warm-up included, so the
        // exported count exceeds the measured completions).
        assert!(t.counter("sock/delivered") >= r.overall.completed);
        assert_eq!(t.counter("sock/policy_drops"), 0);
        // The native RR policy's per-app verdict counters line up.
        let app = r.telemetry.filter_prefix("app1/");
        assert_eq!(
            app.counter("socket-select/verdict_executor"),
            t.counter("syrupd/dispatches") - t.counter("syrupd/unmatched")
        );
        // The exact run latencies mirror into the telemetry histogram.
        assert_eq!(r.overall.latency_hist.count(), r.overall.completed);
        assert_eq!(
            r.overall.latency_hist.max(),
            r.overall.latency.max().as_nanos()
        );
    }

    #[test]
    fn deterministic_under_seed() {
        let a = quick(SocketPolicyKind::RoundRobin, 100_000.0, 0.995);
        let b = quick(SocketPolicyKind::RoundRobin, 100_000.0, 0.995);
        assert_eq!(a.overall.completed, b.overall.completed);
        assert_eq!(a.overall.latency.p99(), b.overall.latency.p99());
        assert_eq!(a.overall.dropped, b.overall.dropped);
    }

    #[test]
    fn overload_explodes_tail_for_everyone() {
        // 800K on ~460K capacity: open-loop queues grow without bound.
        let r = quick(SocketPolicyKind::RoundRobin, 800_000.0, 1.0);
        assert!(
            r.overall.latency.p99() > Duration::from_millis(1) || r.overall.drop_pct() > 5.0,
            "overload must be visible"
        );
    }
}
