//! Flow locality via the CPU-redirect hook (paper §2.1's RFS example).
//!
//! §2.1 motivates scheduling *flexibility* with a counter-example to
//! round robin: "Optimizations like Linux's Receive Flow Steering (RFS)
//! that places network processing on the same core as the receiving
//! application would be impossible without hash-based scheduling. A
//! netperf TCP_RR test that uses RFS has been shown to achieve up to 200%
//! higher throughput than one without RFS."
//!
//! This world reproduces that trade: packets are steered to cores for
//! network-stack processing through the CPU-redirect hook. A Syrup
//! RFS-like policy reads a flow→core Map the application maintains and
//! processes each packet on its consumer's core (warm caches, no
//! cross-core handoff); the baseline hashes flows across cores, paying a
//! cold-cache application pass plus an inter-core handoff.

use std::collections::HashMap;

use syrup_core::{Decision, Hook, HookMeta, MapDef, MapRef, PolicySource, Syrupd};
use syrup_net::socket::SocketBuf;
use syrup_sim::{ArrivalGen, Duration, EventQueue, LatencyRecorder, LatencySummary, SimRng, Time};

/// Steering discipline at the CPU-redirect hook.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Steering {
    /// Hash the flow across cores (no locality).
    Hash,
    /// RFS-like: process on the flow's consumer core, per the shared Map.
    Rfs,
}

/// Experiment parameters.
#[derive(Debug, Clone)]
pub struct RfsConfig {
    /// Cores (one application thread each).
    pub cores: usize,
    /// Client flows.
    pub flows: usize,
    /// Offered load (RPS).
    pub load_rps: f64,
    /// Steering discipline.
    pub steering: Steering,
    /// Network-stack processing per packet.
    pub stack_cost: Duration,
    /// Application processing with a warm cache (same core).
    pub app_warm: Duration,
    /// Application processing after a cross-core handoff (cold cache).
    pub app_cold: Duration,
    /// Cross-core handoff cost charged to the consumer core.
    pub handoff: Duration,
    /// Warm-up interval.
    pub warmup: Duration,
    /// Measured interval.
    pub measure: Duration,
    /// RNG seed.
    pub seed: u64,
}

impl RfsConfig {
    /// The netperf-style request/response setup at `load_rps`.
    pub fn netperf(steering: Steering, load_rps: f64, seed: u64) -> Self {
        RfsConfig {
            cores: 4,
            flows: 32,
            load_rps,
            steering,
            stack_cost: Duration::from_nanos(1_500),
            app_warm: Duration::from_nanos(1_500),
            app_cold: Duration::from_nanos(6_000),
            handoff: Duration::from_nanos(2_500),
            warmup: Duration::from_millis(30),
            measure: Duration::from_millis(200),
            seed,
        }
    }
}

/// Outcome of one run.
#[derive(Debug, Clone)]
pub struct RfsResult {
    /// Request latency order statistics.
    pub latency: LatencySummary,
    /// Completed requests.
    pub completed: u64,
    /// Goodput over the measured interval.
    pub throughput_rps: f64,
}

#[derive(Debug, Clone, Copy)]
struct Work {
    arrival: Time,
    flow: u32,
    /// Second stage (application pass) after cross-core handoff.
    app_stage: bool,
    measured: bool,
}

enum Ev {
    Arrival,
    Enqueue { core: usize, work: Work },
    Done { core: usize },
}

/// Runs one configuration.
pub fn run(cfg: &RfsConfig) -> RfsResult {
    let mut rng = SimRng::new(cfg.seed);
    let syrupd = Syrupd::new();
    let (app, maps) = syrupd
        .register_app("netperf", &[4242])
        .expect("fresh daemon");

    // The application maintains flow → consumer-core in a Map; the
    // RFS-like policy is just a lookup (a two-line Syrup policy).
    let flow_core: MapRef = maps
        .create_pinned("flow_core", MapDef::u64_array(4096))
        .expect("create flow map");
    for f in 0..cfg.flows as u32 {
        flow_core
            .update_u64(f, u64::from(f) % cfg.cores as u64)
            .expect("in range");
    }
    if cfg.steering == Steering::Rfs {
        let map = flow_core.clone();
        syrupd
            .deploy(
                app,
                Hook::CpuRedirect,
                PolicySource::Native(Box::new(move |pkt: &mut [u8], _m: &HookMeta| {
                    // The flow id rides in the first four bytes here.
                    let flow = u32::from_le_bytes(pkt[..4].try_into().expect("4 bytes"));
                    match map.lookup_u64(flow) {
                        Ok(Some(core)) => Decision::Executor(core as u32),
                        _ => Decision::Pass,
                    }
                })),
            )
            .expect("deploy rfs policy");
    }

    let warmup_end = Time::ZERO + cfg.warmup;
    let end = warmup_end + cfg.measure;
    let mut queue: EventQueue<Ev> = EventQueue::new();
    let mut arrivals = ArrivalGen::poisson(cfg.load_rps);
    let mut cores: Vec<SocketBuf<Work>> = (0..cfg.cores).map(|_| SocketBuf::new(8192)).collect();
    let mut busy = vec![false; cfg.cores];
    let mut recorder = LatencyRecorder::new(warmup_end);
    // Per-flow hash steering for the baseline/PASS path.
    let flow_hash: HashMap<u32, usize> = (0..cfg.flows as u32)
        .map(|f| (f, (f.wrapping_mul(0x9E37_79B9) >> 16) as usize % cfg.cores))
        .collect();

    if let Some(t) = arrivals.next_arrival(&mut rng) {
        queue.push(t, Ev::Arrival);
    }

    let cost_of = |work: &Work, core: usize, cfg: &RfsConfig, home: usize| -> Duration {
        if work.app_stage {
            // The consumer core's pass after a handoff: cold cache.
            cfg.handoff + cfg.app_cold
        } else if core == home {
            // Stack + warm application pass fused on one core.
            cfg.stack_cost + cfg.app_warm
        } else {
            // Stack pass only; the application stage is forwarded.
            cfg.stack_cost
        }
    };

    while let Some((now, ev)) = queue.pop() {
        match ev {
            Ev::Arrival => {
                if let Some(t) = arrivals.next_arrival(&mut rng) {
                    if t < end {
                        queue.push(t, Ev::Arrival);
                    }
                }
                let flow = rng.index(cfg.flows) as u32;
                let mut pkt = flow.to_le_bytes().to_vec();
                pkt.extend_from_slice(&[0u8; 28]);
                let meta = HookMeta {
                    dst_port: 4242,
                    ..HookMeta::default()
                };
                let (_, decision) = syrupd.schedule(Hook::CpuRedirect, &mut pkt, &meta);
                let core = match decision {
                    Decision::Executor(c) => c as usize % cfg.cores,
                    _ => flow_hash[&flow],
                };
                let work = Work {
                    arrival: now,
                    flow,
                    app_stage: false,
                    measured: now >= warmup_end,
                };
                queue.push(now + Duration::from_nanos(900), Ev::Enqueue { core, work });
            }
            Ev::Enqueue { core, work } => {
                if cores[core].push(work) && !busy[core] {
                    busy[core] = true;
                    let home = flow_core.lookup_u64(work.flow).ok().flatten().unwrap_or(0) as usize;
                    let head = *cores[core].peek().expect("just pushed");
                    queue.push(now + cost_of(&head, core, cfg, home), Ev::Done { core });
                }
            }
            Ev::Done { core } => {
                let work = cores[core].pop().expect("in service");
                let home = flow_core.lookup_u64(work.flow).ok().flatten().unwrap_or(0) as usize;
                if work.app_stage || core == home {
                    // Request finished (either fused warm pass or the
                    // post-handoff application pass). Completions after the
                    // measurement window (queue drain) are excluded so
                    // goodput is not inflated under overload.
                    if work.measured && now < end {
                        recorder.record(work.arrival, now);
                    }
                } else {
                    // Hand off to the consumer's core for the app pass.
                    queue.push(
                        now + Duration::from_nanos(500),
                        Ev::Enqueue {
                            core: home,
                            work: Work {
                                app_stage: true,
                                ..work
                            },
                        },
                    );
                }
                if let Some(next) = cores[core].peek().copied() {
                    let next_home =
                        flow_core.lookup_u64(next.flow).ok().flatten().unwrap_or(0) as usize;
                    queue.push(
                        now + cost_of(&next, core, cfg, next_home),
                        Ev::Done { core },
                    );
                } else {
                    busy[core] = false;
                }
            }
        }
    }

    RfsResult {
        latency: recorder.summary(),
        completed: recorder.len() as u64,
        throughput_rps: recorder.len() as f64 / cfg.measure.as_secs_f64(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(steering: Steering, load: f64) -> RfsResult {
        let mut cfg = RfsConfig::netperf(steering, load, 5);
        cfg.warmup = Duration::from_millis(20);
        cfg.measure = Duration::from_millis(120);
        run(&cfg)
    }

    #[test]
    fn rfs_latency_beats_hash_at_moderate_load() {
        let load = 600_000.0;
        let rfs = quick(Steering::Rfs, load);
        let hash = quick(Steering::Hash, load);
        assert!(
            rfs.latency.p99() < hash.latency.p99(),
            "RFS {} vs hash {}",
            rfs.latency.p99(),
            hash.latency.p99()
        );
    }

    #[test]
    fn rfs_sustains_much_higher_throughput() {
        // Past the hash capacity (~4 cores / 5.5us spread over stages),
        // RFS still completes nearly everything.
        let load = 1_600_000.0;
        let rfs = quick(Steering::Rfs, load);
        let hash = quick(Steering::Hash, load);
        assert!(
            rfs.throughput_rps > 2.0 * hash.throughput_rps,
            "RFS {} vs hash {}",
            rfs.throughput_rps,
            hash.throughput_rps
        );
    }

    #[test]
    fn low_load_both_complete() {
        let rfs = quick(Steering::Rfs, 50_000.0);
        let hash = quick(Steering::Hash, 50_000.0);
        assert!(rfs.completed > 1_000);
        assert!(hash.completed > 1_000);
    }
}
