//! The userspace token-refill agent (§3.4, §5.2.2).
//!
//! "Our token-based policy periodically, i.e., every 100µs, generates
//! tokens the LS user consumes every time one of her requests is served.
//! After each epoch, any leftover tokens are gifted to the BE user." The
//! agent runs in userspace and communicates with the kernel policy purely
//! through the token Map — the paper's cross-layer flow.

use syrup_core::MapRef;
use syrup_sim::Duration;

/// The refill agent. The simulation world fires [`TokenAgent::on_epoch`]
/// every [`TokenAgent::epoch`].
#[derive(Debug)]
pub struct TokenAgent {
    map: MapRef,
    /// Refill period (the paper uses 100µs).
    pub epoch: Duration,
    /// Latency-sensitive user's token grant per epoch.
    ls_per_epoch: u64,
    ls_user: u32,
    be_user: u32,
    /// Cap on banked BE tokens, in epochs of LS grant, so gifted tokens
    /// cannot accumulate into unbounded bursts.
    be_cap_epochs: u64,
}

impl TokenAgent {
    /// Creates the agent over the policy's token map.
    ///
    /// `rate_per_sec` is the LS token generation rate (the paper picks
    /// 350K/s, "slightly below saturation" of the 6-core setup).
    pub fn new(
        map: MapRef,
        epoch: Duration,
        rate_per_sec: u64,
        ls_user: u32,
        be_user: u32,
    ) -> Self {
        let ls_per_epoch = (rate_per_sec as u128 * epoch.as_nanos() as u128 / 1_000_000_000) as u64;
        TokenAgent {
            map,
            epoch,
            ls_per_epoch: ls_per_epoch.max(1),
            ls_user,
            be_user,
            be_cap_epochs: 2,
        }
    }

    /// Tokens granted to the LS user per epoch.
    pub fn ls_per_epoch(&self) -> u64 {
        self.ls_per_epoch
    }

    /// One refill tick: unspent LS tokens are gifted to the BE user, then
    /// the LS bucket is set to a fresh grant.
    pub fn on_epoch(&mut self) {
        let leftover = self
            .map
            .lookup_u64(self.ls_user)
            .ok()
            .flatten()
            .unwrap_or(0);
        let banked = self
            .map
            .lookup_u64(self.be_user)
            .ok()
            .flatten()
            .unwrap_or(0);
        let cap = self.ls_per_epoch * self.be_cap_epochs;
        let gifted = (banked + leftover).min(cap);
        let _ = self.map.update_u64(self.be_user, gifted);
        let _ = self.map.update_u64(self.ls_user, self.ls_per_epoch);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use syrup_core::{MapDef, MapRegistry};

    fn agent(rate: u64) -> (TokenAgent, MapRef) {
        let reg = MapRegistry::new();
        let map = reg.get(reg.create(MapDef::u64_array(4))).unwrap();
        let a = TokenAgent::new(map.clone(), Duration::from_micros(100), rate, 0, 1);
        (a, map)
    }

    #[test]
    fn grant_matches_rate_and_epoch() {
        let (a, _) = agent(350_000);
        // 350K/s over 100µs = 35 tokens.
        assert_eq!(a.ls_per_epoch(), 35);
    }

    #[test]
    fn refill_sets_ls_bucket() {
        let (mut a, map) = agent(350_000);
        a.on_epoch();
        assert_eq!(map.lookup_u64(0).unwrap(), Some(35));
        assert_eq!(map.lookup_u64(1).unwrap(), Some(0));
    }

    #[test]
    fn leftovers_are_gifted_to_be() {
        let (mut a, map) = agent(350_000);
        a.on_epoch();
        // LS consumed only 5 of 35 tokens this epoch.
        map.update_u64(0, 30).unwrap();
        a.on_epoch();
        assert_eq!(map.lookup_u64(1).unwrap(), Some(30));
        assert_eq!(map.lookup_u64(0).unwrap(), Some(35));
    }

    #[test]
    fn be_bank_is_capped() {
        let (mut a, map) = agent(350_000);
        for _ in 0..10 {
            a.on_epoch(); // LS never consumes: 35 gifted per epoch
        }
        let banked = map.lookup_u64(1).unwrap().unwrap();
        assert!(banked <= 70, "banked {banked} exceeds the 2-epoch cap");
    }

    #[test]
    fn tiny_rates_still_grant_something() {
        let (a, _) = agent(1);
        assert_eq!(a.ls_per_epoch(), 1);
    }
}
