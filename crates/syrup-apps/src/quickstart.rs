//! The quickstart scenario: one traced request pipeline across the stack.
//!
//! A compact, deterministic end-to-end run used by `syrupctl trace
//! record` and the observability docs. It wires the real substrates
//! together the way §3–§4 describe — NIC steering, the XDP driver hook
//! (an eBPF policy through the verifier and VM), the CPU-redirect hook,
//! kernel RX processing, the socket-select hook, a `SO_REUSEPORT` group,
//! and per-socket worker threads — and pushes a few hundred requests
//! through while a [`syrup_trace::Tracer`] records every stage each
//! sampled request crosses.
//!
//! Unlike the figure worlds, time here is hand-laid-out (fixed per-stage
//! latencies, round-robin policies, no RNG in the data path), so the
//! resulting timelines are easy to eyeball in Perfetto and stable for the
//! CLI smoke tests.

use syrup_core::{AppId, CompileOptions, Hook, HookMeta, PolicySource, Syrupd};
use syrup_net::socket::{Delivery, ReuseportGroup};
use syrup_net::{flow, AppHeader, Frame, Nic, QueueKind};
use syrup_policies::RoundRobinPolicy;
use syrup_sim::{ShardQueueStats, ShardedQueue, SimRng, Time};
use syrup_trace::Stage;

/// The UDP port the quickstart application owns.
pub const PORT: u16 = 9090;

/// Worker threads (= sockets = NIC queues).
pub const THREADS: usize = 4;

/// Requests pushed through by [`run_default`].
pub const DEFAULT_REQUESTS: usize = 64;

/// The artifacts of one quickstart run.
pub struct Quickstart {
    /// The daemon, still holding the three deployed policies — `syrupctl
    /// prog list/stats` and `map dump` introspect it after the run.
    pub syrupd: Syrupd,
    /// The registered application.
    pub app: AppId,
    /// Requests that reached a worker and completed.
    pub completed: u64,
    /// Every span record the tracer captured.
    pub records: Vec<syrup_trace::SpanRecord>,
    /// The records grouped into per-request timelines.
    pub timelines: Vec<syrup_trace::Timeline>,
    /// The NIC, rings intact — `syrupctl queue list` reads occupancy and
    /// drop counters from it after the run.
    pub nic: Nic<usize>,
    /// The reuseport group (FIFO by default, PIFO in the ranked variant).
    pub group: ReuseportGroup<usize>,
    /// Per-wheel accounting from the ingress [`ShardedQueue`] (one entry
    /// per shard): pushes, pops, cascades, and the clamp/drift figures
    /// attributed to the shard that owned each key. `syrupctl metrics
    /// --shards N` renders this breakdown; the shared registry stays
    /// shard-count invariant.
    pub shard_stats: Vec<ShardQueueStats>,
}

/// Runs the scenario with [`DEFAULT_REQUESTS`] requests.
pub fn run_default(tracer: &syrup_trace::Tracer) -> Quickstart {
    run(tracer, DEFAULT_REQUESTS)
}

/// Pushes `requests` requests through the pipeline, recording spans for
/// every input `tracer` samples.
pub fn run(tracer: &syrup_trace::Tracer, requests: usize) -> Quickstart {
    run_profiled(tracer, &syrup_profile::Profiler::disabled(), requests)
}

/// [`run`] with a cycle-attribution profiler attached: the VM charges
/// every interpreted instruction to a `(prog, pc)` bucket, and the NIC
/// rings and reuseport sockets contribute one depth sample per request
/// to the pressure report.
pub fn run_profiled(
    tracer: &syrup_trace::Tracer,
    profiler: &syrup_profile::Profiler,
    requests: usize,
) -> Quickstart {
    run_scenario(tracer, profiler, requests, false)
}

/// The rank-extension variant: the socket-select policy is compiled C
/// returning an `(executor, rank)` pair, ranks are opted in for the hook,
/// and the reuseport sockets are PIFO-backed so the most urgent service
/// class is served first. Everything else matches [`run`] exactly.
pub fn run_ranked(tracer: &syrup_trace::Tracer, requests: usize) -> Quickstart {
    run_scenario(tracer, &syrup_profile::Profiler::disabled(), requests, true)
}

/// The fully-parameterised scenario: [`run_profiled`] when `ranked` is
/// false, [`run_ranked`] with a profiler attached when true.
pub fn run_scenario(
    tracer: &syrup_trace::Tracer,
    profiler: &syrup_profile::Profiler,
    requests: usize,
    ranked: bool,
) -> Quickstart {
    run_observed(
        tracer,
        profiler,
        &syrup_blackbox::Recorder::disabled(),
        requests,
        ranked,
        &mut |_, _, _| {},
    )
}

/// [`run_scenario`] with a flight recorder wired through every layer and
/// a per-request observer.
///
/// The recorder is attached to `syrupd` (dispatch verdicts and VM
/// events), the NIC rings, and the reuseport sockets — the latter two
/// with a depth threshold of 1 so every enqueue/dequeue pair emits a
/// crossing, giving the postmortem visibility into queue motion even
/// when nothing drops. `observe` runs after each completed request with
/// `(completed, now_ns, &syrupd)`; `syrupctl watch` uses it to render
/// live telemetry deltas between requests.
pub fn run_observed(
    tracer: &syrup_trace::Tracer,
    profiler: &syrup_profile::Profiler,
    recorder: &syrup_blackbox::Recorder,
    requests: usize,
    ranked: bool,
    observe: &mut dyn FnMut(u64, u64, &Syrupd),
) -> Quickstart {
    run_driven(tracer, profiler, recorder, requests, ranked, 1, observe)
}

/// [`run`] with the ingress schedule spread over `shards` timer wheels.
///
/// The scenario itself is byte-identical for every shard count: requests
/// are keyed by flow hash into a [`ShardedQueue`], and the merge pops
/// them back in `(time, seq)` order — ingress instants are strictly
/// increasing, so the replay order (and with it every policy decision,
/// span, and telemetry counter the scenario emits) cannot depend on the
/// routing. What sharding *adds* is the `sim/wheel_*` telemetry the
/// queue publishes into the daemon's registry, which is how `syrupctl
/// metrics --shards N` surfaces wheel drift and clamp accounting.
pub fn run_sharded(tracer: &syrup_trace::Tracer, requests: usize, shards: usize) -> Quickstart {
    run_driven(
        tracer,
        &syrup_profile::Profiler::disabled(),
        &syrup_blackbox::Recorder::disabled(),
        requests,
        false,
        shards,
        &mut |_, _, _| {},
    )
}

/// The most general entry point: [`run_observed`] with the ingress
/// schedule driven through a [`ShardedQueue`] of `shards` timer wheels
/// (see [`run_sharded`] for why the result is shard-count invariant).
#[allow(clippy::too_many_arguments)]
pub fn run_driven(
    tracer: &syrup_trace::Tracer,
    profiler: &syrup_profile::Profiler,
    recorder: &syrup_blackbox::Recorder,
    requests: usize,
    ranked: bool,
    shards: usize,
    observe: &mut dyn FnMut(u64, u64, &Syrupd),
) -> Quickstart {
    let mut rng = SimRng::new(7);
    let syrupd = Syrupd::new();
    syrupd.attach_tracer(tracer);
    syrupd.attach_profiler(profiler);
    syrupd.attach_blackbox(recorder);
    let (app, _maps) = syrupd
        .register_app("quickstart", &[PORT])
        .expect("fresh daemon has no port conflicts");

    // Three policies on one input path: the XDP-tier one is compiled C
    // running in the eBPF VM (so traces show vm-exec spans with cycle
    // accounts); the lower-cost hooks use the native forms.
    syrupd
        .deploy(
            app,
            Hook::XdpDrv,
            PolicySource::C {
                source: syrup_policies::c_sources::ROUND_ROBIN.to_string(),
                options: CompileOptions::new().define("NUM_THREADS", THREADS as i64),
            },
        )
        .expect("xdp policy deploys");
    syrupd
        .deploy(
            app,
            Hook::CpuRedirect,
            PolicySource::Native(Box::new(RoundRobinPolicy::new(THREADS as u32))),
        )
        .expect("cpu-redirect policy deploys");
    if ranked {
        // The rank path end to end: a C policy returning `(q, rank)`, the
        // per-hook opt-in, and PIFO sockets that honour the rank.
        syrupd
            .deploy(
                app,
                Hook::SocketSelect,
                PolicySource::C {
                    source: syrup_policies::c_sources::RANKED_SRPT.to_string(),
                    options: CompileOptions::new().define("NUM_THREADS", THREADS as i64),
                },
            )
            .expect("ranked socket policy deploys");
        syrupd.enable_ranks(app, Hook::SocketSelect);
    } else {
        syrupd
            .deploy(
                app,
                Hook::SocketSelect,
                PolicySource::Native(Box::new(RoundRobinPolicy::new(THREADS as u32))),
            )
            .expect("socket policy deploys");
    }

    let mut nic: Nic<usize> = Nic::new(THREADS, 64);
    nic.attach_tracer(tracer);
    nic.attach_profiler(profiler);
    nic.attach_blackbox(recorder, 1);
    let sock_kind = if ranked {
        QueueKind::Pifo
    } else {
        QueueKind::Fifo
    };
    let mut group: ReuseportGroup<usize> = ReuseportGroup::new_with(THREADS, 64, sock_kind);
    group.attach_tracer(tracer);
    group.attach_profiler(profiler);
    group.attach_blackbox(recorder, 1);

    let flows = flow::client_flows(8, PORT, &mut rng);
    let mut free_at = [0u64; THREADS];
    let mut completed = 0u64;

    // The ingress schedule lives in the simulation core's sharded timer
    // wheel rather than a counter: each request is keyed by its flow hash
    // and popped back in global `(time, seq)` order. Attaching the queue
    // to the daemon's registry is what puts `sim/wheel_*` (pushes,
    // cascades, clamp count, drift gauge) into `syrupctl metrics`.
    let mut ingress: ShardedQueue<usize> = ShardedQueue::new(shards);
    ingress.attach_telemetry(syrupd.telemetry(), "sim");
    for i in 0..requests {
        let fl = &flows[i % flows.len()];
        let t0 = 1_000 + (i as u64) * 2_000;
        ingress.push_keyed(Time::from_nanos(t0), u64::from(fl.flow_hash()), i);
    }

    while let Some((at, i)) = ingress.pop() {
        let t0 = at.as_nanos();
        let ctx = tracer.ingress(t0);
        let fl = &flows[i % flows.len()];

        // NIC: steer to an RX queue, sit in the ring until the driver poll.
        let q = nic.select_queue_traced(fl, None, ctx, t0);
        nic.enqueue(q, i);
        nic.sample_depths(t0);
        let t_poll = t0 + 300;
        tracer.span(ctx, Stage::NicQueue, t0, t_poll);
        let _ = nic.dequeue(q);

        // XDP driver hook: the eBPF policy sees the raw datagram.
        let frame = Frame::build(
            fl,
            &AppHeader {
                req_type: 0,
                user_id: 0,
                key_hash: i as u64,
                req_id: i as u64,
            },
        );
        let mut pkt = frame.datagram().to_vec();
        let meta = HookMeta {
            now_ns: t_poll,
            cpu: q,
            rx_queue: q,
            dst_port: PORT,
            trace: ctx,
        };
        let (_, _xdp) = syrupd.schedule(Hook::XdpDrv, &mut pkt, &meta);

        // CPU redirect, then protocol processing up to the socket layer.
        let t_redirect = t_poll + 250;
        let meta = HookMeta {
            now_ns: t_redirect,
            ..meta
        };
        let (_, _cpu) = syrupd.schedule(Hook::CpuRedirect, &mut pkt, &meta);
        let t_sock = t_redirect + 600;
        tracer.span(ctx, Stage::StackRx, t_redirect, t_sock);

        // Socket select + enqueue on the chosen reuseport socket.
        let meta = HookMeta {
            now_ns: t_sock,
            ..meta
        };
        // `schedule_verdict` forces the rank to 0 unless the hook opted
        // in, so the FIFO scenario is unchanged by asking for it.
        let (_, verdict) = syrupd.schedule_verdict(Hook::SocketSelect, &mut pkt, &meta);
        let socket = match group.deliver_verdict_traced(i, fl.flow_hash(), verdict, ctx, t_sock) {
            Delivery::Enqueued(s) => s,
            // Round robin never drops, but keep the path honest: a drop
            // already closed the timeline inside `deliver_traced`.
            Delivery::Dropped { .. } => continue,
        };
        group.sample_depths(t_sock);

        // Worker thread: one request at a time per socket, FIFO.
        let _ = group.recv(socket);
        let start = free_at[socket].max(t_sock);
        tracer.span_arg(ctx, Stage::SockQueue, t_sock, start, socket as u64);
        let service = 3_000 + (i as u64 % 4) * 2_000;
        tracer.span_arg(ctx, Stage::Run, start, start + service, socket as u64);
        free_at[socket] = start + service;
        tracer.finish(ctx, start + service);
        completed += 1;
        observe(completed, start + service, &syrupd);
    }

    let records = tracer.peek();
    let timelines = syrup_trace::reconstruct(&records);
    let shard_stats = ingress.per_shard_stats();
    Quickstart {
        syrupd,
        app,
        completed,
        records,
        timelines,
        nic,
        group,
        shard_stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_timeline_is_valid_and_multi_hook() {
        let tracer = syrup_trace::Tracer::new();
        let q = run_default(&tracer);
        assert_eq!(q.completed, DEFAULT_REQUESTS as u64);
        assert_eq!(q.timelines.len(), DEFAULT_REQUESTS);
        for tl in &q.timelines {
            tl.validate().expect("quickstart timelines are well formed");
            assert!(
                tl.distinct_hook_stages() >= 3,
                "trace {} crossed only {} hooks",
                tl.trace_id,
                tl.distinct_hook_stages()
            );
        }
    }

    #[test]
    fn breakdown_covers_nic_to_thread() {
        let tracer = syrup_trace::Tracer::new();
        let q = run_default(&tracer);
        let breakdown = syrup_trace::StageBreakdown::from_timelines(&q.timelines);
        let stages: Vec<&str> = breakdown.stages.iter().map(|s| s.stage.as_str()).collect();
        for want in [
            "nic-queue",
            "xdp-drv",
            "vm-exec",
            "socket-select",
            "sock-queue",
            "run",
        ] {
            assert!(stages.contains(&want), "missing stage {want} in {stages:?}");
        }
    }

    #[test]
    fn sampling_traces_a_subset() {
        let tracer = syrup_trace::Tracer::with_config(syrup_trace::TraceConfig {
            sample_every: 8,
            ..syrup_trace::TraceConfig::default()
        });
        let q = run(&tracer, 64);
        assert_eq!(q.completed, 64);
        assert_eq!(q.timelines.len(), 8, "one in eight ingresses sampled");
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let tracer = syrup_trace::Tracer::disabled();
        let q = run_default(&tracer);
        assert_eq!(q.completed, DEFAULT_REQUESTS as u64);
        assert!(q.records.is_empty());
        assert!(q.timelines.is_empty());
    }

    #[test]
    fn profiled_run_attributes_all_vm_cycles() {
        let tracer = syrup_trace::Tracer::disabled();
        let profiler = syrup_profile::Profiler::new();
        let q = run_profiled(&tracer, &profiler, DEFAULT_REQUESTS);
        assert_eq!(q.completed, DEFAULT_REQUESTS as u64);

        // Attribution covers the VM's own telemetry total exactly.
        let total = q
            .syrupd
            .telemetry_snapshot()
            .histogram("vm/run_cycles")
            .expect("vm publishes run_cycles")
            .sum();
        let report = profiler.report(Some(total), 10);
        assert_eq!(report.attributed_cycles, total);
        assert!(report.coverage >= 0.95, "coverage {}", report.coverage);
        // One VM run per request (only the XDP policy is eBPF).
        assert_eq!(report.runs, DEFAULT_REQUESTS as u64);

        // Both network components contributed depth samples.
        let p = profiler.pressure();
        let comps: Vec<&str> = p.components.iter().map(|c| c.component.as_str()).collect();
        assert!(
            comps.contains(&"nic") && comps.contains(&"sock"),
            "{comps:?}"
        );

        // The folded flame graph has VM frames with cycle counts.
        let flame = profiler.flame();
        assert!(flame.lines().any(|l| l.starts_with("vm;syrupd_dispatch;")));
    }

    #[test]
    fn unprofiled_run_matches_profiled_run() {
        // The profiler must observe, not perturb: decisions and telemetry
        // are identical with and without it attached.
        let plain = run(&syrup_trace::Tracer::disabled(), 32);
        let profiled = run_profiled(
            &syrup_trace::Tracer::disabled(),
            &syrup_profile::Profiler::new(),
            32,
        );
        assert_eq!(plain.completed, profiled.completed);
        let a = plain.syrupd.telemetry_snapshot();
        let b = profiled.syrupd.telemetry_snapshot();
        assert_eq!(
            a.histogram("vm/run_cycles").map(|h| (h.count(), h.sum())),
            b.histogram("vm/run_cycles").map(|h| (h.count(), h.sum())),
        );
    }

    #[test]
    fn ranked_run_uses_pifo_sockets_and_completes() {
        let tracer = syrup_trace::Tracer::disabled();
        let q = run_ranked(&tracer, DEFAULT_REQUESTS);
        assert_eq!(q.completed, DEFAULT_REQUESTS as u64);
        assert_eq!(q.group.kind(), QueueKind::Pifo);
        assert_eq!(q.nic.kind(), QueueKind::Fifo);
        assert!(q.syrupd.ranks_enabled(q.app, Hook::SocketSelect));
        // The socket-select policy is now eBPF too (two VM programs).
        let rows = q.syrupd.deployed();
        let (_, _, native) = rows
            .iter()
            .find(|(_, h, _)| *h == Hook::SocketSelect)
            .expect("socket-select deployed");
        assert!(!native);
    }

    #[test]
    fn ranked_profiled_run_samples_sock_rank_bands() {
        let tracer = syrup_trace::Tracer::disabled();
        let profiler = syrup_profile::Profiler::new();
        let q = run_scenario(&tracer, &profiler, DEFAULT_REQUESTS, true);
        assert_eq!(q.completed, DEFAULT_REQUESTS as u64);
        let p = profiler.pressure();
        let sock_bands = p
            .rank_bands
            .iter()
            .find(|b| b.component == "sock")
            .expect("ranked sockets report per-band occupancy");
        assert!(sock_bands.samples > 0);
        // Ranks 0/100/200/300 spread the four service classes over the
        // first three bands; the >4095 band stays empty.
        assert!(sock_bands.mean_depths.iter().take(3).any(|&d| d > 0.0));
        // The unranked scenario must not grow a band series.
        let plain = syrup_profile::Profiler::new();
        let _ = run_profiled(&tracer, &plain, DEFAULT_REQUESTS);
        assert!(plain.pressure().rank_bands.is_empty());
    }

    #[test]
    fn observed_run_feeds_three_stack_layers_into_the_recorder() {
        use syrup_blackbox::{EventKind, Layer, Recorder};
        let tracer = syrup_trace::Tracer::disabled();
        let rec = Recorder::new();
        let mut calls = 0u64;
        let q = run_observed(
            &tracer,
            &syrup_profile::Profiler::disabled(),
            &rec,
            16,
            false,
            &mut |completed, now_ns, _d| {
                calls += 1;
                assert_eq!(completed, calls);
                assert!(now_ns > 0);
            },
        );
        assert_eq!(q.completed, 16);
        assert_eq!(calls, 16);
        // Three dispatches per request, every one with the packed
        // `(rank << 32) | executor` return word.
        let dispatches = rec.events(Layer::Syrupd);
        assert_eq!(dispatches.len(), 3 * 16);
        assert!(dispatches.iter().all(|e| e.kind == EventKind::Dispatch));
        // Depth threshold 1 turns every enqueue/dequeue into a crossing.
        assert!(!rec.events(Layer::Nic).is_empty());
        assert!(!rec.events(Layer::Sock).is_empty());
    }

    #[test]
    fn disabled_recorder_leaves_the_run_untouched() {
        let tracer = syrup_trace::Tracer::disabled();
        let plain = run(&tracer, 32);
        let rec = syrup_blackbox::Recorder::disabled();
        let observed = run_observed(
            &tracer,
            &syrup_profile::Profiler::disabled(),
            &rec,
            32,
            false,
            &mut |_, _, _| {},
        );
        assert_eq!(plain.completed, observed.completed);
        assert_eq!(
            plain.syrupd.telemetry_snapshot(),
            observed.syrupd.telemetry_snapshot()
        );
        for layer in [
            syrup_blackbox::Layer::Syrupd,
            syrup_blackbox::Layer::Nic,
            syrup_blackbox::Layer::Sock,
        ] {
            assert!(rec.events(layer).is_empty());
        }
    }

    #[test]
    fn sharded_run_is_shard_count_invariant() {
        // One wheel or eight, the replay is the same scenario: ingress
        // instants are strictly increasing, so the sharded merge cannot
        // reorder anything. Spans, completions, and daemon telemetry
        // must match byte for byte; only wheel-internal motion counters
        // (cascades, instantaneous depth) are allowed to depend on how
        // entries were spread across wheels.
        let strip_layout = |q: &Quickstart| {
            let mut s = q.syrupd.telemetry_snapshot();
            s.counters.remove("sim/wheel_cascades");
            s.gauges.remove("sim/wheel_depth");
            s
        };
        let tracer = syrup_trace::Tracer::new();
        let base = run_sharded(&tracer, DEFAULT_REQUESTS, 1);
        for shards in [2usize, 8] {
            let tracer = syrup_trace::Tracer::new();
            let q = run_sharded(&tracer, DEFAULT_REQUESTS, shards);
            assert_eq!(q.completed, base.completed, "shards={shards}");
            assert_eq!(q.records, base.records, "shards={shards}");
            assert_eq!(strip_layout(&q), strip_layout(&base), "shards={shards}");
            // The wheel metrics the run added are visible in the daemon
            // registry — that is what `syrupctl metrics` renders.
            let snap = q.syrupd.telemetry_snapshot();
            assert_eq!(snap.counter("sim/wheel_pushes"), DEFAULT_REQUESTS as u64);
            assert_eq!(snap.counter("sim/wheel_clamped"), 0);
            assert_eq!(snap.gauge("sim/wheel_drift_ns"), 0);
            // The per-shard breakdown reconciles with the registry totals
            // without ever entering it (which would break the invariance
            // just asserted).
            assert_eq!(q.shard_stats.len(), shards);
            let pushes: u64 = q.shard_stats.iter().map(|s| s.pushes).sum();
            assert_eq!(pushes, DEFAULT_REQUESTS as u64);
            assert!(q.shard_stats.iter().all(|s| s.clamped == 0 && s.len == 0));
        }
    }

    #[test]
    fn deployed_rows_cover_three_hooks() {
        let tracer = syrup_trace::Tracer::disabled();
        let q = run_default(&tracer);
        let rows = q.syrupd.deployed();
        assert_eq!(rows.len(), 3);
        // The XDP policy is eBPF (not native) and has per-invocation stats.
        let (app, _, native) = rows
            .iter()
            .find(|(_, h, _)| *h == Hook::XdpDrv)
            .expect("xdp-drv deployed");
        assert!(!native);
        let (insns, cycles) = q
            .syrupd
            .policy_stats(*app, Hook::XdpDrv)
            .expect("ebpf policy has stats");
        assert!(insns > 0.0 && cycles > 0.0);
    }
}
