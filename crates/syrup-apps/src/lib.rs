//! Application models and experiment worlds.
//!
//! This crate assembles the substrates — the event engine (`syrup-sim`),
//! the network path (`syrup-net`), the thread schedulers (`syrup-ghost`),
//! and the Syrup framework itself (`syrup-core`) — into the three
//! simulated testbeds the paper's evaluation runs on:
//!
//! * [`rocksdb`] — the RocksDB-like request server: GET (10–12µs) and
//!   SCAN (~700µs) service times.
//! * [`server_world`] — §5.2's deployment: N server threads pinned to N
//!   cores, one `SO_REUSEPORT` UDP socket each, an open-loop client, and
//!   a Syrup socket-select policy deployed through `syrupd`. Regenerates
//!   Figures 2, 6, and 7.
//! * [`mt_world`] — §5.3's deployment: 36 threads multiplexed on 6 cores
//!   by either a CFS-like kernel scheduler or a ghOSt agent running the
//!   GET-priority Syrup policy, combined with socket-level scheduling.
//!   Regenerates Figure 8.
//! * [`mica`] — §5.4's MICA-like partitioned KVS with AF_XDP delivery and
//!   three steering placements (application software redirect, Syrup SW
//!   in the kernel XDP hook, Syrup HW on the NIC). Regenerates Figure 9.
//! * [`token_agent`] — the userspace token-refill agent of §5.2.2
//!   (epoch-based replenishment, leftover gifting to best-effort).
//! * [`quickstart`] — a compact deterministic pipeline (NIC → XDP → CPU
//!   redirect → socket → worker) used by `syrupctl trace record` and the
//!   tracing docs.
//! * [`late_world`] — the §6.3 extension experiment: early vs late
//!   binding of datagrams to threads on the Figure 6 workload.
//! * [`rfs_world`] — §2.1's RFS motivation: flow-locality steering at the
//!   CPU-redirect hook vs hash steering.
//!
//! Every world routes each simulated input through the real `syrupd`
//! dispatch (port isolation and all); the policies are the native
//! implementations from `syrup-policies`, whose decision equivalence with
//! the compiled C is tested separately.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod late_world;
pub mod mica;
pub mod mt_world;
pub mod quickstart;
pub mod rfs_world;
pub mod rocksdb;
pub mod server_world;
pub mod token_agent;

pub use late_world::{Binding, LateConfig, LateResult};
pub use mica::{MicaConfig, MicaMode, MicaResult};
pub use mt_world::{MtConfig, MtResult, SchedKind};
pub use quickstart::Quickstart;
pub use rfs_world::{RfsConfig, RfsResult, Steering};
pub use rocksdb::RocksDbModel;
pub use server_world::{ServerConfig, ServerResult, SocketPolicyKind};
pub use token_agent::TokenAgent;
