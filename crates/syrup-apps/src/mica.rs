//! The MICA-like partitioned key-value store: Figure 9.
//!
//! MICA partitions data across cores and steers each request to its key's
//! "home" core. §5.4 compares three placements of that steering decision
//! with Syrup, using an AF_XDP backend:
//!
//! * **SW Redirect (original MICA)** — the NIC RSS-hashes packets to
//!   queues; whichever thread owns the queue parses the request and, for
//!   the ~7/8 of requests whose home is elsewhere, forwards it over a
//!   software queue ("packet redirection at the application layer may
//!   require 2 data movements").
//! * **Syrup SW** — the paper's hash policy runs at the kernel XDP hook
//!   and redirects each packet straight to the home thread's AF_XDP
//!   socket: the core-to-core forward disappears, but delivery crosses
//!   cores inside the kernel.
//! * **Syrup HW** — the same policy runs on the programmable NIC and
//!   picks the home RX queue, whose interrupt targets the home core's
//!   hyperthread buddy: "eliminates all end-host data movement".
//!
//! Since the Netronome NIC in set B does not support zero-copy, all three
//! run the AF_XDP *generic* path (§5.4 notes overall numbers are lower
//! than MICA's originals for exactly this reason).
//!
//! The three configurations differ only in per-request CPU costs and hop
//! latencies; saturation (where the 99.9% latency explodes) follows from
//! the bottleneck thread's occupancy, which is how the paper's 1.7–1.8 /
//! 2.7–2.8 / 3.2–3.3 MRPS knees arise.

use syrup_core::{Decision, Hook, HookMeta, MapDef, PolicySource, Syrupd};
use syrup_net::socket::SocketBuf;
use syrup_net::{flow, AppHeader, Frame, RequestClass, Toeplitz};
use syrup_policies::MicaHomePolicy;
use syrup_sim::{
    ArrivalGen, Duration, EventQueue, LatencyRecorder, LatencySummary, RequestMix, SimRng, Time,
};

/// Steering placement (the figure's three series).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MicaMode {
    /// Application-layer software redirect (original MICA server-side
    /// fallback).
    SwRedirect,
    /// Syrup policy at the kernel XDP hook → home AF_XDP socket.
    SyrupSw,
    /// Syrup policy offloaded to the NIC → home RX queue.
    SyrupHw,
}

impl MicaMode {
    /// Figure legend label.
    pub fn label(self) -> &'static str {
        match self {
            MicaMode::SwRedirect => "SW Redirect (Original MICA)",
            MicaMode::SyrupSw => "Syrup SW (Kernel)",
            MicaMode::SyrupHw => "Syrup HW (NIC)",
        }
    }
}

/// Per-request CPU/latency cost model for the three paths.
#[derive(Debug, Clone, Copy)]
pub struct MicaCosts {
    /// Hash/partition work per request (GET).
    pub process_get: Duration,
    /// Store work per request (PUT).
    pub process_put: Duration,
    /// AF_XDP generic receive when the packet arrived on the thread's own
    /// queue (descriptor + copy, warm cache).
    pub afxdp_local_rx: Duration,
    /// AF_XDP receive when the XDP program redirected from another
    /// queue's core (cold descriptor ring, cache-line transfer).
    pub afxdp_remote_rx: Duration,
    /// Parsing a request to find its home partition (ingress thread,
    /// SW-redirect mode only).
    pub parse: Duration,
    /// Enqueueing onto another thread's software queue.
    pub forward_tx: Duration,
    /// Dequeueing from the inter-thread software queue at the home core.
    pub forward_rx: Duration,
    /// Wire→userspace latency component (not CPU occupancy).
    pub delivery_latency: Duration,
    /// Extra latency of one core-to-core hop.
    pub hop_latency: Duration,
}

impl Default for MicaCosts {
    fn default() -> Self {
        MicaCosts {
            process_get: Duration::from_nanos(1_850),
            process_put: Duration::from_nanos(1_950),
            afxdp_local_rx: Duration::from_nanos(560),
            afxdp_remote_rx: Duration::from_nanos(1_010),
            parse: Duration::from_nanos(350),
            forward_tx: Duration::from_nanos(750),
            forward_rx: Duration::from_nanos(700),
            delivery_latency: Duration::from_nanos(1_900),
            hop_latency: Duration::from_nanos(700),
        }
    }
}

/// Experiment parameters.
#[derive(Debug, Clone)]
pub struct MicaConfig {
    /// Server threads (= cores = partitions; the paper: 8).
    pub threads: usize,
    /// UDP port.
    pub port: u16,
    /// Offered load (requests per second).
    pub load_rps: f64,
    /// GET fraction (the rest are PUTs): 0.5 or 0.95 in Figure 9.
    pub get_fraction: f64,
    /// Steering placement.
    pub mode: MicaMode,
    /// Zero-copy AF_XDP (the Intel 82599 XDP_DRV path of §5.4's closing
    /// note). The programmable Netronome NIC of set B forces the generic
    /// copy path (`false`), which is why the figure's absolute numbers sit
    /// below MICA's originals.
    pub zero_copy: bool,
    /// Cost model.
    pub costs: MicaCosts,
    /// Per-thread work-queue capacity.
    pub queue_capacity: usize,
    /// Warm-up interval.
    pub warmup: Duration,
    /// Measured interval.
    pub measure: Duration,
    /// RNG seed.
    pub seed: u64,
}

impl MicaConfig {
    /// The §5.4 setup at a given load and mix.
    pub fn fig9(mode: MicaMode, get_fraction: f64, load_rps: f64, seed: u64) -> Self {
        MicaConfig {
            threads: 8,
            port: 9090,
            load_rps,
            get_fraction,
            mode,
            zero_copy: false,
            costs: MicaCosts::default(),
            queue_capacity: 4096,
            warmup: Duration::from_millis(20),
            measure: Duration::from_millis(120),
            seed,
        }
    }
}

/// Outcome of one run.
#[derive(Debug, Clone)]
pub struct MicaResult {
    /// Latency order statistics (the figure plots p99.9).
    pub latency: LatencySummary,
    /// Completed requests.
    pub completed: u64,
    /// Requests dropped at full queues.
    pub dropped: u64,
}

#[derive(Debug, Clone, Copy)]
struct Req {
    arrival: Time,
    class: RequestClass,
    key_hash: u64,
    measured: bool,
}

#[derive(Debug, Clone, Copy)]
enum Work {
    /// Parse + (maybe) forward at the ingress thread (SW redirect only).
    Ingress(Req),
    /// Process at the home thread; `remote_rx` selects the receive cost.
    Home {
        req: Req,
        remote_rx: bool,
        via_queue: bool,
    },
}

enum Ev {
    Arrival,
    Enqueue { thread: usize, work: Work },
    Done { thread: usize },
}

/// Runs one Figure 9 configuration.
pub fn run(cfg: &MicaConfig) -> MicaResult {
    let mut rng = SimRng::new(cfg.seed);
    let syrupd = Syrupd::new();
    let (app, _maps) = syrupd
        .register_app("mica", &[cfg.port])
        .expect("fresh daemon");

    // Deploy the home-core policy at the hook the mode dictates. The
    // decision logic is identical — that is the portability claim of §5.4.
    let hook = match cfg.mode {
        MicaMode::SwRedirect => None,
        MicaMode::SyrupSw => Some(Hook::XdpSkb),
        MicaMode::SyrupHw => Some(Hook::XdpOffload),
    };
    if let Some(hook) = hook {
        syrupd
            .deploy(
                app,
                hook,
                PolicySource::Native(Box::new(MicaHomePolicy::new(cfg.threads as u32))),
            )
            .expect("deploy mica policy");
        // The executor count could also come from a map (§3.3); create it
        // for parity with the C version even though the native policy
        // carries the count.
        let core_map = syrupd.registry().create(MapDef::u64_array(1));
        let _ = syrupd
            .registry()
            .get(core_map)
            .map(|m| m.update_u64(0, cfg.threads as u64));
    }

    let flows = flow::client_flows(256, cfg.port, &mut rng);
    let toeplitz = Toeplitz::default();

    // §5.4's closing note: with a zero-copy (XDP_DRV) NIC the AF_XDP
    // receive path sheds its copy, and throughput approaches MICA's
    // original numbers.
    let mut costs = cfg.costs;
    if cfg.zero_copy {
        costs.afxdp_local_rx = Duration::from_nanos(220);
        costs.afxdp_remote_rx = Duration::from_nanos(520);
        costs.delivery_latency = Duration::from_nanos(1_100);
    }
    let cfg = &MicaConfig {
        costs,
        ..cfg.clone()
    };

    let warmup_end = Time::ZERO + cfg.warmup;
    let end = warmup_end + cfg.measure;

    let mut queue: EventQueue<Ev> = EventQueue::new();
    let mut arrivals = ArrivalGen::poisson(cfg.load_rps);
    let mix = RequestMix::new(&[
        (RequestClass::Get.class_id(), cfg.get_fraction),
        (RequestClass::Put.class_id(), 1.0 - cfg.get_fraction),
    ]);
    let mut threads: Vec<SocketBuf<Work>> = (0..cfg.threads)
        .map(|_| SocketBuf::new(cfg.queue_capacity))
        .collect();
    let mut busy = vec![false; cfg.threads];
    let mut recorder = LatencyRecorder::new(warmup_end);
    let mut dropped: u64 = 0;
    let mut offered_measured = false;

    if let Some(t0) = arrivals.next_arrival(&mut rng) {
        queue.push(t0, Ev::Arrival);
    }

    // One shared template packet, rewritten with each request's key hash;
    // the deployed policy reads only the key-hash field.
    let template = Frame::build(
        &flows[0],
        &AppHeader {
            req_type: 1,
            user_id: 0,
            key_hash: 0,
            req_id: 0,
        },
    );

    while let Some((now, ev)) = queue.pop() {
        match ev {
            Ev::Arrival => {
                if let Some(next) = arrivals.next_arrival(&mut rng) {
                    if next < end {
                        queue.push(next, Ev::Arrival);
                    }
                }
                let class = if mix.sample(&mut rng) == RequestClass::Put.class_id() {
                    RequestClass::Put
                } else {
                    RequestClass::Get
                };
                let key_hash = rng.gen_u64();
                let flow = &flows[rng.index(flows.len())];
                let req = Req {
                    arrival: now,
                    class,
                    key_hash,
                    measured: now >= warmup_end,
                };
                offered_measured |= req.measured;
                let home = (key_hash % cfg.threads as u64) as usize;

                let (thread, work, latency) = match cfg.mode {
                    MicaMode::SwRedirect => {
                        // NIC RSS picks the ingress queue/thread.
                        let q = toeplitz.queue_for(flow, cfg.threads as u32) as usize;
                        (q, Work::Ingress(req), cfg.costs.delivery_latency)
                    }
                    MicaMode::SyrupSw => {
                        // Kernel XDP hook redirects to the home socket.
                        let mut pkt = template.datagram().to_vec();
                        pkt[20..28].copy_from_slice(&key_hash.to_le_bytes());
                        let meta = HookMeta {
                            now_ns: now.as_nanos(),
                            cpu: 0,
                            rx_queue: toeplitz.queue_for(flow, cfg.threads as u32),
                            dst_port: cfg.port,
                            ..HookMeta::default()
                        };
                        let (_, d) = syrupd.schedule(Hook::XdpSkb, &mut pkt, &meta);
                        let target = match d {
                            Decision::Executor(i) => i as usize % cfg.threads,
                            _ => home,
                        };
                        let remote = meta.rx_queue as usize != target;
                        (
                            target,
                            Work::Home {
                                req,
                                remote_rx: remote,
                                via_queue: false,
                            },
                            cfg.costs.delivery_latency
                                + if remote {
                                    cfg.costs.hop_latency
                                } else {
                                    Duration::ZERO
                                },
                        )
                    }
                    MicaMode::SyrupHw => {
                        // The NIC-resident policy picks the home RX queue;
                        // delivery lands on the home core directly.
                        let mut pkt = template.datagram().to_vec();
                        pkt[20..28].copy_from_slice(&key_hash.to_le_bytes());
                        let meta = HookMeta {
                            now_ns: now.as_nanos(),
                            cpu: 0,
                            rx_queue: 0,
                            dst_port: cfg.port,
                            ..HookMeta::default()
                        };
                        let (_, d) = syrupd.schedule(Hook::XdpOffload, &mut pkt, &meta);
                        let target = match d {
                            Decision::Executor(i) => i as usize % cfg.threads,
                            _ => home,
                        };
                        (
                            target,
                            Work::Home {
                                req,
                                remote_rx: false,
                                via_queue: false,
                            },
                            cfg.costs.delivery_latency,
                        )
                    }
                };
                queue.push(now + latency, Ev::Enqueue { thread, work });
            }
            Ev::Enqueue { thread, work } => {
                let measured = match &work {
                    Work::Ingress(r) | Work::Home { req: r, .. } => r.measured,
                };
                if threads[thread].push(work) {
                    if !busy[thread] {
                        busy[thread] = true;
                        start_next(&mut queue, &mut threads, thread, now, cfg);
                    }
                } else if measured {
                    dropped += 1;
                }
            }
            Ev::Done { thread } => {
                // The item at the head of this thread's queue just
                // finished; act on it.
                let work = threads[thread].pop().expect("a work item was in service");
                match work {
                    Work::Ingress(req) => {
                        let home = (req.key_hash % cfg.threads as u64) as usize;
                        if home == thread {
                            // Local: process immediately on this thread by
                            // re-enqueueing the home work at the front of
                            // its own queue — modelled as a fresh enqueue.
                            queue.push(
                                now,
                                Ev::Enqueue {
                                    thread,
                                    work: Work::Home {
                                        req,
                                        remote_rx: false,
                                        via_queue: false,
                                    },
                                },
                            );
                        } else {
                            queue.push(
                                now + cfg.costs.hop_latency,
                                Ev::Enqueue {
                                    thread: home,
                                    work: Work::Home {
                                        req,
                                        remote_rx: false,
                                        via_queue: true,
                                    },
                                },
                            );
                        }
                    }
                    Work::Home { req, .. } => {
                        if req.measured {
                            recorder.record(req.arrival, now);
                        }
                    }
                }
                if threads[thread].is_empty() {
                    busy[thread] = false;
                } else {
                    start_next(&mut queue, &mut threads, thread, now, cfg);
                }
            }
        }
    }
    let _ = offered_measured;

    MicaResult {
        latency: recorder.summary(),
        completed: recorder.len() as u64,
        dropped,
    }
}

/// Schedules the completion of the head work item on `thread`.
fn start_next(
    queue: &mut EventQueue<Ev>,
    threads: &mut [SocketBuf<Work>],
    thread: usize,
    now: Time,
    cfg: &MicaConfig,
) {
    let Some(work) = threads[thread].peek() else {
        return;
    };
    let cost = match *work {
        Work::Ingress(_) => {
            // Receive + parse (+ forward for the remote case, charged here
            // unconditionally approximating that 7/8 of requests forward).
            cfg.costs.afxdp_local_rx + cfg.costs.parse + cfg.costs.forward_tx
        }
        Work::Home {
            req,
            remote_rx,
            via_queue,
        } => {
            let rx = if via_queue {
                cfg.costs.forward_rx
            } else if remote_rx {
                cfg.costs.afxdp_remote_rx
            } else {
                cfg.costs.afxdp_local_rx
            };
            rx + match req.class {
                RequestClass::Put => cfg.costs.process_put,
                _ => cfg.costs.process_get,
            }
        }
    };
    queue.push(now + cost, Ev::Done { thread });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(mode: MicaMode, load: f64) -> MicaResult {
        run(&MicaConfig::fig9(mode, 0.5, load, 3))
    }

    #[test]
    fn low_load_latency_is_microseconds() {
        let r = quick(MicaMode::SyrupHw, 100_000.0);
        assert!(r.completed > 5_000);
        assert_eq!(r.dropped, 0);
        let p50 = r.latency.p50().as_micros_f64();
        assert!((2.0..15.0).contains(&p50), "p50 {p50}us");
    }

    #[test]
    fn capacity_ordering_matches_figure9() {
        // At 2.4 MRPS: SW redirect is saturated, the Syrup modes are not.
        let app = quick(MicaMode::SwRedirect, 2_400_000.0);
        let sw = quick(MicaMode::SyrupSw, 2_400_000.0);
        let hw = quick(MicaMode::SyrupHw, 2_400_000.0);
        let (a, s, h) = (app.latency.p999(), sw.latency.p999(), hw.latency.p999());
        assert!(
            a > Duration::from_millis(1),
            "SW redirect should be saturated at 2.4M (p999 {a})"
        );
        assert!(s < Duration::from_millis(1), "Syrup SW p999 {s}");
        assert!(h < s, "Syrup HW {h} should beat Syrup SW {s}");
    }

    #[test]
    fn syrup_hw_outlasts_syrup_sw() {
        // At 3.0 MRPS: SW nears its knee, HW still comfortable.
        let sw = quick(MicaMode::SyrupSw, 3_000_000.0);
        let hw = quick(MicaMode::SyrupHw, 3_000_000.0);
        assert!(
            hw.latency.p999() < sw.latency.p999(),
            "HW {} vs SW {}",
            hw.latency.p999(),
            sw.latency.p999()
        );
        assert!(hw.latency.p999() < Duration::from_millis(1));
    }

    #[test]
    fn deterministic_under_seed() {
        let a = quick(MicaMode::SyrupSw, 1_000_000.0);
        let b = quick(MicaMode::SyrupSw, 1_000_000.0);
        assert_eq!(a.completed, b.completed);
        assert_eq!(a.latency.p999(), b.latency.p999());
    }

    #[test]
    fn zero_copy_raises_the_knee() {
        // §5.4's closing note: the zero-copy Intel path outperforms the
        // Netronome generic path at the same load.
        let mut zc = MicaConfig::fig9(MicaMode::SyrupHw, 0.5, 3_400_000.0, 4);
        zc.zero_copy = true;
        let copy = run(&MicaConfig::fig9(MicaMode::SyrupHw, 0.5, 3_400_000.0, 4));
        let zero = run(&zc);
        assert!(
            zero.latency.p999() < copy.latency.p999(),
            "zero-copy {} vs generic {}",
            zero.latency.p999(),
            copy.latency.p999()
        );
        assert!(zero.latency.p999() < Duration::from_micros(300));
    }

    #[test]
    fn mix_affects_put_cost() {
        // 95% GET is slightly cheaper than 50% GET near saturation.
        let mostly_get = run(&MicaConfig::fig9(MicaMode::SyrupHw, 0.95, 3_100_000.0, 5));
        let half = run(&MicaConfig::fig9(MicaMode::SyrupHw, 0.5, 3_100_000.0, 5));
        assert!(mostly_get.latency.p999() <= half.latency.p999());
    }
}
