//! The RocksDB-like request server model.
//!
//! §5.1.2: "GETs are very short, having a service time of 10–12µs, while
//! SCANs last for much longer, around 700µs." The model is exactly that —
//! a per-class service-time generator — because the experiments exercise
//! scheduling, not storage: the paper's RocksDB instance serves from
//! memory and its only relevant property is the service-time distribution.

use syrup_net::RequestClass;
use syrup_sim::{Duration, ServiceDist, SimRng};

/// Service-time model for the RocksDB-like server.
#[derive(Debug, Clone, Copy)]
pub struct RocksDbModel {
    /// GET service time (default: uniform 10–12µs).
    pub get: ServiceDist,
    /// SCAN service time (default: uniform 680–720µs, centred on the
    /// paper's "around 700µs").
    pub scan: ServiceDist,
}

impl Default for RocksDbModel {
    fn default() -> Self {
        RocksDbModel {
            get: ServiceDist::Uniform(Duration::from_micros(10), Duration::from_micros(12)),
            scan: ServiceDist::Uniform(Duration::from_micros(680), Duration::from_micros(720)),
        }
    }
}

impl RocksDbModel {
    /// Samples a service time for `class` (PUTs behave like GETs here; the
    /// MICA model has its own costs).
    pub fn sample(&self, class: RequestClass, rng: &mut SimRng) -> Duration {
        match class {
            RequestClass::Get | RequestClass::Put => self.get.sample(rng),
            RequestClass::Scan => self.scan.sample(rng),
        }
    }

    /// Mean service time under `mix` (fractions summing to 1), used for
    /// capacity arithmetic in tests and the harness.
    pub fn mean_for_mix(&self, get_frac: f64) -> Duration {
        let g = self.get.mean().as_nanos() as f64;
        let s = self.scan.mean().as_nanos() as f64;
        Duration::from_nanos((get_frac * g + (1.0 - get_frac) * s) as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn service_times_match_the_paper() {
        let model = RocksDbModel::default();
        let mut rng = SimRng::new(3);
        for _ in 0..1_000 {
            let g = model.sample(RequestClass::Get, &mut rng).as_micros_f64();
            assert!((10.0..=12.0).contains(&g), "GET {g}us");
            let s = model.sample(RequestClass::Scan, &mut rng).as_micros_f64();
            assert!((680.0..=720.0).contains(&s), "SCAN {s}us");
        }
    }

    #[test]
    fn mix_mean_is_weighted() {
        let model = RocksDbModel::default();
        // 99.5% GET / 0.5% SCAN, the Figure 6 mix: mean ≈ 14.4µs.
        let mean = model.mean_for_mix(0.995).as_micros_f64();
        assert!((14.0..15.0).contains(&mean), "{mean}");
        // 50/50, the Figure 8 mix: mean ≈ 355µs.
        let mean = model.mean_for_mix(0.5).as_micros_f64();
        assert!((350.0..360.0).contains(&mean), "{mean}");
    }
}
