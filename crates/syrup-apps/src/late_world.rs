//! Early vs late binding (paper §6.3) on the head-of-line workload.
//!
//! Early binding commits each datagram to a socket at arrival; late
//! binding stages datagrams centrally and matches one to a thread when
//! that thread calls `recvmsg` — §6.3's proposed extension. On the
//! Figure 6 mix (99.5% GET / 0.5% SCAN) the difference is the classic
//! d-FCFS vs c-FCFS gap: with early binding a GET can be stuck behind a
//! SCAN on its socket while other threads sit idle; with late binding
//! that cannot happen.

use syrup_core::{Decision, HookMeta, PacketPolicy};
use syrup_net::socket::{Delivery, ReuseportGroup};
use syrup_net::{FifoPick, LateBindingGroup, RequestClass, StackCosts};
use syrup_policies::RoundRobinPolicy;
use syrup_sim::{
    ArrivalGen, Duration, EventQueue, LatencyRecorder, LatencySummary, RequestMix, SimRng, Time,
};

use crate::rocksdb::RocksDbModel;

/// Binding discipline under test.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Binding {
    /// Commit to a socket at arrival (round-robin, the best early-binding
    /// policy for this homogeneous-thread setup).
    Early,
    /// Stage centrally; bind when a thread becomes available (§6.3).
    Late,
}

/// Experiment parameters.
#[derive(Debug, Clone)]
pub struct LateConfig {
    /// Worker threads (= cores).
    pub threads: usize,
    /// Offered load (RPS).
    pub load_rps: f64,
    /// GET fraction (rest are SCANs).
    pub get_fraction: f64,
    /// Binding discipline.
    pub binding: Binding,
    /// Staging/socket capacity.
    pub capacity: usize,
    /// Warm-up, excluded from statistics.
    pub warmup: Duration,
    /// Measured interval.
    pub measure: Duration,
    /// RNG seed.
    pub seed: u64,
}

impl LateConfig {
    /// The Figure 6 workload shape at `load_rps`.
    pub fn fig6_style(binding: Binding, load_rps: f64, seed: u64) -> Self {
        LateConfig {
            threads: 6,
            load_rps,
            get_fraction: 0.995,
            binding,
            capacity: 1536,
            warmup: Duration::from_millis(50),
            measure: Duration::from_millis(300),
            seed,
        }
    }
}

/// Outcome of one run.
#[derive(Debug, Clone)]
pub struct LateResult {
    /// Overall latency order statistics.
    pub latency: LatencySummary,
    /// Completed requests.
    pub completed: u64,
    /// Dropped requests (full buffers).
    pub dropped: u64,
}

#[derive(Debug, Clone, Copy)]
struct Req {
    arrival: Time,
    service: Duration,
    measured: bool,
}

enum Ev {
    Arrival,
    Deliver(Req),
    Complete { thread: usize },
}

/// Runs one configuration.
pub fn run(cfg: &LateConfig) -> LateResult {
    let mut rng = SimRng::new(cfg.seed);
    let model = RocksDbModel::default();
    let stack = StackCosts::default();
    let mut queue: EventQueue<Ev> = EventQueue::new();
    let mut arrivals = ArrivalGen::poisson(cfg.load_rps);
    let mix = RequestMix::new(&[
        (RequestClass::Get.class_id(), cfg.get_fraction),
        (RequestClass::Scan.class_id(), 1.0 - cfg.get_fraction),
    ]);

    let mut early: ReuseportGroup<Req> = ReuseportGroup::new(cfg.threads, cfg.capacity);
    let mut early_policy = RoundRobinPolicy::new(cfg.threads as u32);
    let mut late: LateBindingGroup<Req> = LateBindingGroup::new(cfg.capacity, Box::new(FifoPick));
    let mut busy = vec![false; cfg.threads];

    let warmup_end = Time::ZERO + cfg.warmup;
    let end = warmup_end + cfg.measure;
    let mut recorder = LatencyRecorder::new(warmup_end);
    let mut dropped = 0u64;
    let overhead = Duration::from_micros(2);
    let mut inflight: Vec<Option<Req>> = vec![None; cfg.threads];

    if let Some(t) = arrivals.next_arrival(&mut rng) {
        queue.push(t, Ev::Arrival);
    }

    while let Some((now, ev)) = queue.pop() {
        match ev {
            Ev::Arrival => {
                if let Some(t) = arrivals.next_arrival(&mut rng) {
                    if t < end {
                        queue.push(t, Ev::Arrival);
                    }
                }
                let class = if mix.sample(&mut rng) == RequestClass::Scan.class_id() {
                    RequestClass::Scan
                } else {
                    RequestClass::Get
                };
                let req = Req {
                    arrival: now,
                    service: model.sample(class, &mut rng),
                    measured: now >= warmup_end,
                };
                queue.push(now + stack.standard_rx_latency(), Ev::Deliver(req));
            }
            Ev::Deliver(req) => match cfg.binding {
                Binding::Early => {
                    let decision = match early_policy.schedule(&mut [], &HookMeta::default()) {
                        d @ Decision::Executor(_) => d,
                        _ => Decision::Pass,
                    };
                    match early.deliver(req, 0, decision) {
                        Delivery::Enqueued(thread) => {
                            if !busy[thread] {
                                if let Some(r) = early.recv(thread) {
                                    busy[thread] = true;
                                    queue.push(now + overhead + r.service, Ev::Complete { thread });
                                    // Stash latency info via a parallel slot.
                                    inflight_store(&mut inflight, thread, r);
                                }
                            }
                        }
                        Delivery::Dropped { .. } => {
                            if req.measured {
                                dropped += 1;
                            }
                        }
                    }
                }
                Binding::Late => {
                    if !late.stage(req) {
                        if req.measured {
                            dropped += 1;
                        }
                    } else if let Some(thread) = busy.iter().position(|&b| !b) {
                        let r = late.pull(thread as u32).expect("just staged");
                        busy[thread] = true;
                        queue.push(now + overhead + r.service, Ev::Complete { thread });
                        inflight_store(&mut inflight, thread, r);
                    }
                }
            },
            Ev::Complete { thread } => {
                let done = inflight_take(&mut inflight, thread);
                if done.measured {
                    recorder.record(done.arrival, now);
                }
                busy[thread] = false;
                let next = match cfg.binding {
                    Binding::Early => early.recv(thread),
                    Binding::Late => late.pull(thread as u32),
                };
                if let Some(r) = next {
                    busy[thread] = true;
                    queue.push(now + overhead + r.service, Ev::Complete { thread });
                    inflight_store(&mut inflight, thread, r);
                }
            }
        }
    }

    LateResult {
        latency: recorder.summary(),
        completed: recorder.len() as u64,
        dropped,
    }
}

// In-flight request per thread, kept outside the event loop.
fn inflight_store(slots: &mut [Option<Req>], thread: usize, req: Req) {
    slots[thread] = Some(req);
}

fn inflight_take(slots: &mut [Option<Req>], thread: usize) -> Req {
    slots[thread]
        .take()
        .expect("thread had an in-flight request")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(binding: Binding, load: f64) -> LateResult {
        let mut cfg = LateConfig::fig6_style(binding, load, 9);
        cfg.warmup = Duration::from_millis(20);
        cfg.measure = Duration::from_millis(150);
        run(&cfg)
    }

    #[test]
    fn late_binding_beats_early_on_the_tail() {
        let load = 200_000.0;
        let early = quick(Binding::Early, load);
        let late = quick(Binding::Late, load);
        assert!(
            late.latency.p99() < early.latency.p99(),
            "late {} vs early {}",
            late.latency.p99(),
            early.latency.p99()
        );
    }

    #[test]
    fn both_disciplines_complete_offered_load_when_underloaded() {
        let early = quick(Binding::Early, 50_000.0);
        let late = quick(Binding::Late, 50_000.0);
        assert_eq!(early.dropped, 0);
        assert_eq!(late.dropped, 0);
        let ratio = early.completed as f64 / late.completed.max(1) as f64;
        assert!((0.9..1.1).contains(&ratio));
    }
}
