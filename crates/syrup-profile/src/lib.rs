//! Cross-stack cycle-attribution profiling.
//!
//! `syrup-telemetry` reports *how much* each layer costs (per-run cycle
//! histograms); `syrup-trace` reports *where a sampled request's* time
//! went. This crate answers the remaining question — *where inside a
//! policy do the cycles go, and which executor is building pressure* —
//! the introspection a perf-style profiler gives a real deployment:
//!
//! * [`Profiler`] — a shared sink (clone = handle) the eBPF interpreter
//!   reports per-`(prog, pc)` and per-helper cycle attribution into,
//!   tail-call aware so `prog_array` chains fold into full stacks. The
//!   NIC / reuseport models feed it per-queue depth samples and ghOSt
//!   feeds per-thread time-in-state and scheduling-latency samples.
//! * [`ProfileReport`] — hotspot table (top PCs annotated with their
//!   disassembled instruction), per-program and per-helper breakdowns,
//!   and the attribution coverage against a total cycle account.
//! * Collapsed-stack flamegraph export ([`Profiler::flame`]) — folded
//!   `layer;prog;pc-range;helper count` lines loadable in inferno or
//!   speedscope.
//! * [`PressureReport`] — queue imbalance (max/mean ratio, Gini
//!   coefficient) per component plus executor starvation flags.
//! * [`SloMonitor`] — sliding-window percentile rules over
//!   `syrup-telemetry` histogram snapshots emitting structured
//!   [`BurnEvent`]s.
//!
//! Cost contract: like telemetry and tracing, every sample site on a
//! disabled profiler ([`Profiler::disabled`]) is a single branch —
//! enforced by `cargo bench -p bench --bench profile` (≤5ns budget).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod pressure;
mod profiler;
mod slo;

pub use pressure::{
    gini, LatencySummary, PressureReport, QueuePressure, RankBandPressure, StarvationEvent,
    ThreadPressure,
};
pub use profiler::{HelperCost, Hotspot, ProfileReport, Profiler, ProgCycles, ThreadState, VmSpan};
pub use slo::{AnomalyNote, BurnEvent, SloMonitor, SloRule, SloStatus};
