//! SLO monitoring: sliding-window percentile rules over telemetry
//! histograms, emitting structured burn events.

use std::collections::VecDeque;

use serde::{Serialize, SerializeStruct, Serializer};
use syrup_blackbox::Recorder;
use syrup_telemetry::{CounterHandle, GaugeHandle, Registry, Snapshot};

/// A threshold rule over one histogram's quantile.
#[derive(Debug, Clone, PartialEq)]
pub struct SloRule {
    /// Histogram name in the registry (e.g. `vm/run_cycles`).
    pub metric: String,
    /// Quantile to track, in `[0, 1]` (e.g. `0.99`).
    pub quantile: f64,
    /// Burn when the tracked quantile exceeds this value.
    pub threshold: u64,
    /// Sliding-window length, in observations.
    pub window: usize,
}

impl SloRule {
    /// A rule with the default 16-observation window.
    pub fn new(metric: impl Into<String>, quantile: f64, threshold: u64) -> Self {
        SloRule {
            metric: metric.into(),
            quantile,
            threshold,
            window: 16,
        }
    }
}

#[derive(Debug)]
struct RuleState {
    rule: SloRule,
    recent: VecDeque<u64>,
    consecutive: u32,
}

impl RuleState {
    fn windowed_mean(&self) -> f64 {
        if self.recent.is_empty() {
            0.0
        } else {
            self.recent.iter().sum::<u64>() as f64 / self.recent.len() as f64
        }
    }
}

/// A structured burn event: one observation found a rule's quantile
/// over its threshold.
#[derive(Debug, Clone, PartialEq)]
pub struct BurnEvent {
    /// The rule's histogram.
    pub metric: String,
    /// The tracked quantile.
    pub quantile: f64,
    /// The observed quantile value.
    pub value: u64,
    /// Mean of the sliding window including this observation.
    pub windowed_mean: f64,
    /// The rule's threshold.
    pub threshold: u64,
    /// Observation time (virtual ns).
    pub at_ns: u64,
    /// Consecutive over-threshold observations, including this one.
    pub consecutive: u32,
}

impl Serialize for BurnEvent {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut s = serializer.serialize_struct("BurnEvent", 7)?;
        s.serialize_field("metric", &self.metric)?;
        s.serialize_field("quantile", &self.quantile)?;
        s.serialize_field("value", &self.value)?;
        s.serialize_field("windowed_mean", &self.windowed_mean)?;
        s.serialize_field("threshold", &self.threshold)?;
        s.serialize_field("at_ns", &self.at_ns)?;
        s.serialize_field("consecutive", &self.consecutive)?;
        s.end()
    }
}

/// A rule's standing after the most recent observation.
#[derive(Debug, Clone, PartialEq)]
pub struct SloStatus {
    /// The rule's histogram.
    pub metric: String,
    /// The tracked quantile.
    pub quantile: f64,
    /// The rule's threshold.
    pub threshold: u64,
    /// Most recent observed value (absent before any observation or
    /// when the metric is missing from the snapshot).
    pub value: Option<u64>,
    /// Mean over the sliding window.
    pub windowed_mean: f64,
    /// Whether the most recent observation was over threshold.
    pub burning: bool,
}

impl Serialize for SloStatus {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut s = serializer.serialize_struct("SloStatus", 6)?;
        s.serialize_field("metric", &self.metric)?;
        s.serialize_field("quantile", &self.quantile)?;
        s.serialize_field("threshold", &self.threshold)?;
        s.serialize_field("value", &self.value)?;
        s.serialize_field("windowed_mean", &self.windowed_mean)?;
        s.serialize_field("burning", &self.burning)?;
        s.end()
    }
}

/// A time-series anomaly noted to the monitor by a syrup-scope
/// detector: the SLO view of "this series broke from its baseline".
/// Primitive fields only — the monitor stays decoupled from the
/// detector's internals.
#[derive(Debug, Clone, PartialEq)]
pub struct AnomalyNote {
    /// The offending series name.
    pub series: String,
    /// Observation time (virtual ns).
    pub at_ns: u64,
    /// The observed value.
    pub value: f64,
    /// Robust z-score of the observation.
    pub z: f64,
}

impl Serialize for AnomalyNote {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut s = serializer.serialize_struct("AnomalyNote", 4)?;
        s.serialize_field("series", &self.series)?;
        s.serialize_field("at_ns", &self.at_ns)?;
        s.serialize_field("value", &self.value)?;
        s.serialize_field("z", &self.z)?;
        s.end()
    }
}

/// Tracks a set of [`SloRule`]s against successive registry snapshots.
#[derive(Debug, Default)]
pub struct SloMonitor {
    rules: Vec<RuleState>,
    anomalies: Vec<AnomalyNote>,
    burns_total: CounterHandle,
    rules_burning: GaugeHandle,
    anomalies_total: CounterHandle,
    recorder: Recorder,
}

impl SloMonitor {
    /// An empty monitor.
    pub fn new() -> Self {
        SloMonitor::default()
    }

    /// Adds a rule (builder style).
    pub fn with_rule(mut self, rule: SloRule) -> Self {
        self.add_rule(rule);
        self
    }

    /// Adds a rule.
    pub fn add_rule(&mut self, rule: SloRule) {
        self.rules.push(RuleState {
            rule,
            recent: VecDeque::new(),
            consecutive: 0,
        });
    }

    /// Exports burn accounting into `registry`: `slo/burns_total`
    /// (burn events emitted), `slo/rules_burning` (rules currently over
    /// threshold), and `slo/anomalies_total` (time-series anomalies
    /// noted by syrup-scope detectors).
    pub fn attach_telemetry(&mut self, registry: &Registry) {
        self.burns_total = registry.counter("slo/burns_total");
        self.rules_burning = registry.gauge("slo/rules_burning");
        self.anomalies_total = registry.counter("slo/anomalies_total");
    }

    /// Streams burn events into the flight recorder (rule index =
    /// position in rule-registration order).
    pub fn attach_blackbox(&mut self, recorder: &Recorder) {
        self.recorder = recorder.clone();
    }

    /// Observes `snapshot` at `now_ns`: evaluates every rule's quantile,
    /// advances its sliding window, and returns the burn events this
    /// observation produced. Metrics missing from the snapshot (or with
    /// no samples yet) are skipped without resetting their windows.
    pub fn observe(&mut self, now_ns: u64, snapshot: &Snapshot) -> Vec<BurnEvent> {
        let mut burns = Vec::new();
        for (idx, rs) in self.rules.iter_mut().enumerate() {
            let Some(hist) = snapshot.histogram(&rs.rule.metric) else {
                continue;
            };
            if hist.count() == 0 {
                continue;
            }
            let value = hist.quantile(rs.rule.quantile);
            rs.recent.push_back(value);
            while rs.recent.len() > rs.rule.window.max(1) {
                rs.recent.pop_front();
            }
            if value > rs.rule.threshold {
                rs.consecutive += 1;
                if self.recorder.is_enabled() {
                    self.recorder.slo_burn(
                        now_ns,
                        idx as u16,
                        value,
                        rs.rule.threshold,
                        &format!(
                            "{} q{} = {value} > {}",
                            rs.rule.metric, rs.rule.quantile, rs.rule.threshold
                        ),
                    );
                }
                burns.push(BurnEvent {
                    metric: rs.rule.metric.clone(),
                    quantile: rs.rule.quantile,
                    value,
                    windowed_mean: rs.windowed_mean(),
                    threshold: rs.rule.threshold,
                    at_ns: now_ns,
                    consecutive: rs.consecutive,
                });
            } else {
                rs.consecutive = 0;
            }
        }
        self.burns_total.add(burns.len() as u64);
        self.rules_burning
            .set(self.rules.iter().filter(|rs| rs.consecutive > 0).count() as i64);
        burns
    }

    /// Records a time-series anomaly flagged by a syrup-scope detector,
    /// so SLO health and anomaly health read from one place (the
    /// continuous-signal feed ROADMAP's policy-rollback item triggers
    /// on). Bumps `slo/anomalies_total` when telemetry is attached.
    pub fn note_anomaly(&mut self, at_ns: u64, series: &str, value: f64, z: f64) {
        self.anomalies_total.inc();
        self.anomalies.push(AnomalyNote {
            series: series.to_string(),
            at_ns,
            value,
            z,
        });
    }

    /// Anomalies noted so far, in arrival order.
    pub fn anomalies(&self) -> &[AnomalyNote] {
        &self.anomalies
    }

    /// Each rule's standing after the most recent observation.
    pub fn statuses(&self) -> Vec<SloStatus> {
        self.rules
            .iter()
            .map(|rs| SloStatus {
                metric: rs.rule.metric.clone(),
                quantile: rs.rule.quantile,
                threshold: rs.rule.threshold,
                value: rs.recent.back().copied(),
                windowed_mean: rs.windowed_mean(),
                burning: rs.consecutive > 0,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use syrup_telemetry::Registry;

    fn snapshot_with(metric: &str, values: &[u64]) -> Snapshot {
        let registry = Registry::new();
        let h = registry.histogram(metric);
        for &v in values {
            h.record(v);
        }
        registry.snapshot()
    }

    #[test]
    fn burns_when_quantile_exceeds_threshold() {
        let mut mon = SloMonitor::new().with_rule(SloRule::new("vm/run_cycles", 0.99, 100));
        // Healthy: everything under threshold.
        let burns = mon.observe(1_000, &snapshot_with("vm/run_cycles", &[50; 100]));
        assert!(burns.is_empty());
        assert!(!mon.statuses()[0].burning);
        // The tail blows past the threshold (5% of samples at 4000).
        let mut degraded = vec![50u64; 95];
        degraded.extend([4_000; 5]);
        let burns = mon.observe(2_000, &snapshot_with("vm/run_cycles", &degraded));
        assert_eq!(burns.len(), 1);
        let b = &burns[0];
        assert_eq!(b.metric, "vm/run_cycles");
        assert!(b.value > 100);
        assert_eq!(b.at_ns, 2_000);
        assert_eq!(b.consecutive, 1);
        // Second consecutive burn increments the streak.
        let burns = mon.observe(3_000, &snapshot_with("vm/run_cycles", &degraded));
        assert_eq!(burns[0].consecutive, 2);
        assert!(mon.statuses()[0].burning);
        // Recovery resets it.
        let burns = mon.observe(4_000, &snapshot_with("vm/run_cycles", &[50]));
        assert!(burns.is_empty());
        assert!(!mon.statuses()[0].burning);
    }

    #[test]
    fn window_slides() {
        let mut mon = SloMonitor::new().with_rule(SloRule {
            metric: "m".into(),
            quantile: 0.5,
            threshold: u64::MAX,
            window: 2,
        });
        for v in [10u64, 20, 30] {
            mon.observe(0, &snapshot_with("m", &[v]));
        }
        let status = &mon.statuses()[0];
        // Window of 2 keeps the last two medians (~20, ~30).
        assert_eq!(status.value, Some(30));
        assert!(status.windowed_mean > 20.0 && status.windowed_mean <= 30.0);
    }

    #[test]
    fn missing_metric_is_skipped() {
        let mut mon = SloMonitor::new().with_rule(SloRule::new("absent", 0.99, 1));
        let burns = mon.observe(0, &snapshot_with("other", &[10]));
        assert!(burns.is_empty());
        assert_eq!(mon.statuses()[0].value, None);
    }

    #[test]
    fn burns_flow_into_telemetry_counters() {
        let registry = Registry::new();
        let mut mon = SloMonitor::new().with_rule(SloRule::new("m", 0.99, 100));
        mon.attach_telemetry(&registry);
        mon.observe(1, &snapshot_with("m", &[50]));
        assert_eq!(registry.snapshot().counter("slo/burns_total"), 0);
        assert_eq!(registry.snapshot().gauge("slo/rules_burning"), 0);
        mon.observe(2, &snapshot_with("m", &[5_000]));
        mon.observe(3, &snapshot_with("m", &[5_000]));
        let snap = registry.snapshot();
        assert_eq!(snap.counter("slo/burns_total"), 2);
        assert_eq!(snap.gauge("slo/rules_burning"), 1);
        // Recovery clears the gauge but the counter stays.
        mon.observe(4, &snapshot_with("m", &[50]));
        let snap = registry.snapshot();
        assert_eq!(snap.counter("slo/burns_total"), 2);
        assert_eq!(snap.gauge("slo/rules_burning"), 0);
    }

    #[test]
    fn burns_flow_into_the_flight_recorder() {
        use syrup_blackbox::{EventKind, Layer, Recorder};
        let rec = Recorder::new();
        let mut mon = SloMonitor::new()
            .with_rule(SloRule::new("quiet", 0.5, u64::MAX))
            .with_rule(SloRule::new("m", 0.99, 100));
        mon.attach_blackbox(&rec);
        mon.observe(7_000, &snapshot_with("m", &[5_000]));
        let events = rec.events(Layer::Slo);
        assert_eq!(events.len(), 1);
        let e = &events[0];
        assert_eq!(e.kind, EventKind::SloBurn);
        assert_eq!(e.at_ns, 7_000);
        assert_eq!(e.id, 1, "rule index follows registration order");
        assert_eq!(e.w0, 5_000);
        assert_eq!(e.w1, 100);
        // An armed recorder freezes on the burn.
        assert!(rec.frozen());
    }

    #[test]
    fn anomaly_notes_accumulate_and_count() {
        let registry = Registry::new();
        let mut mon = SloMonitor::new();
        mon.attach_telemetry(&registry);
        mon.note_anomaly(5_000, "shard1/events", 9_000.0, 8.2);
        mon.note_anomaly(6_000, "imbalance/gini", 0.9, 6.5);
        assert_eq!(mon.anomalies().len(), 2);
        assert_eq!(mon.anomalies()[0].series, "shard1/events");
        assert_eq!(mon.anomalies()[1].at_ns, 6_000);
        assert_eq!(registry.snapshot().counter("slo/anomalies_total"), 2);
        let json = serde::json::to_string(&mon.anomalies().to_vec()).unwrap();
        assert!(json.contains("\"series\":\"shard1/events\""), "{json}");
    }

    #[test]
    fn burn_event_serializes_to_json() {
        let mut mon = SloMonitor::new().with_rule(SloRule::new("m", 0.99, 1));
        let burns = mon.observe(7, &snapshot_with("m", &[500]));
        let json = serde::json::to_string(&burns).unwrap();
        let value = serde::json::from_str(&json).expect("burns parse");
        let arr = value.as_array().unwrap();
        assert_eq!(arr[0].get("metric").and_then(|v| v.as_str()), Some("m"));
        assert_eq!(arr[0].get("at_ns").and_then(|v| v.as_u64()), Some(7));
    }
}
