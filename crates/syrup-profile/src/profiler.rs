//! The profiler sink and the cycle-attribution report.

use std::collections::BTreeMap;
use std::sync::Arc;

use parking_lot::Mutex;
use serde::{Serialize, SerializeStruct, Serializer};

use crate::pressure::{self, QueueSeries, ThreadAgg};
use crate::PressureReport;

/// PCs are folded into ranges of this many instructions in flamegraph
/// frames, so long unrolled bodies (SCAN Avoid) stay readable.
pub(crate) const PC_RANGE: u32 = 16;

/// Default starvation threshold: an executor runnable-but-unserved for
/// longer than this (virtual ns) is flagged in the pressure report.
const DEFAULT_STARVATION_NS: u64 = 1_000_000;

/// Scheduler state of a profiled thread, for time-in-state accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ThreadState {
    /// Ready to run, waiting for a core.
    Runnable,
    /// On a core.
    Running,
    /// Off the runqueue (sleeping / waiting for work).
    Blocked,
}

impl ThreadState {
    /// Stable lowercase name.
    pub fn as_str(self) -> &'static str {
        match self {
            ThreadState::Runnable => "runnable",
            ThreadState::Running => "running",
            ThreadState::Blocked => "blocked",
        }
    }
}

#[derive(Debug, Default)]
pub(crate) struct ProfState {
    /// Completed VM invocations flushed into the sink.
    pub(crate) runs: u64,
    /// Cycles attributed per `(prog, pc)`.
    pub(crate) pc_cycles: BTreeMap<(String, u32), u64>,
    /// Per-helper `(calls, cycles)`.
    pub(crate) helpers: BTreeMap<&'static str, (u64, u64)>,
    /// Folded flamegraph frames (`vm;prog;…;pcN-M[;helper]`) → cycles.
    pub(crate) folded: BTreeMap<String, u64>,
    /// Rendered instruction text per program, indexed by pc.
    pub(crate) disasm: BTreeMap<String, Vec<String>>,
    /// Per-component queue-depth series.
    pub(crate) queues: BTreeMap<String, QueueSeries>,
    /// Per-component rank-band occupancy series (ranked executors only;
    /// one slot per band of `syrup-sched`'s fixed band partition).
    pub(crate) rank_bands: BTreeMap<String, QueueSeries>,
    /// Per-thread time-in-state accounting.
    pub(crate) threads: BTreeMap<u64, ThreadAgg>,
    /// Scheduling-latency samples: `(count, sum, max)`.
    pub(crate) sched_latency: (u64, u64, u64),
    /// Starvation events (runnable beyond the threshold).
    pub(crate) starvation: Vec<crate::StarvationEvent>,
    /// Runnable-interval length that counts as starvation.
    pub(crate) starvation_threshold_ns: u64,
    /// Flight recorder mirror for starvation flags (disabled by default).
    pub(crate) recorder: syrup_blackbox::Recorder,
}

#[derive(Debug)]
pub(crate) struct Inner {
    pub(crate) state: Mutex<ProfState>,
}

/// The cross-stack profiler sink. Cloning is cheap and shares state
/// (handle semantics, like `Registry` and `Tracer`); a
/// [`Profiler::disabled`] handle makes every sample site a single
/// branch.
#[derive(Debug, Clone, Default)]
pub struct Profiler {
    inner: Option<Arc<Inner>>,
}

impl Profiler {
    /// An enabled profiler with the default starvation threshold.
    pub fn new() -> Self {
        let state = ProfState {
            starvation_threshold_ns: DEFAULT_STARVATION_NS,
            ..ProfState::default()
        };
        Profiler {
            inner: Some(Arc::new(Inner {
                state: Mutex::new(state),
            })),
        }
    }

    /// A disabled profiler: every operation is a no-op branch.
    pub fn disabled() -> Self {
        Profiler { inner: None }
    }

    /// Whether samples are being collected.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Registers a program's rendered instructions so hotspots can be
    /// annotated with their disassembly. Idempotent per name.
    pub fn register_program(&self, name: &str, insns: Vec<String>) {
        let Some(inner) = &self.inner else { return };
        inner.state.lock().disasm.insert(name.to_string(), insns);
    }

    /// Opens a per-invocation recording scope rooted at `prog`. The
    /// fixed invocation cost is attributed to the entry `(prog, pc 0)`
    /// bucket so the attributed sum matches the VM's cycle account
    /// exactly. The scope flushes into the sink when dropped.
    #[inline]
    pub fn vm_enter(&self, prog: &str, invoke_cycles: u64) -> VmSpan {
        match &self.inner {
            None => VmSpan { rec: None },
            Some(inner) => VmSpan::open(inner.clone(), prog, invoke_cycles),
        }
    }

    /// Records one per-queue depth snapshot for `component` (e.g.
    /// `"nic"`, `"sock"`). Series with differing lengths grow to the
    /// widest snapshot seen.
    #[inline]
    pub fn queue_depths(&self, component: &str, now_ns: u64, depths: &[usize]) {
        let Some(inner) = &self.inner else { return };
        Self::queue_depths_slow(inner, component, now_ns, depths);
    }

    #[cold]
    fn queue_depths_slow(inner: &Inner, component: &str, now_ns: u64, depths: &[usize]) {
        let mut st = inner.state.lock();
        let series = st.queues.entry(component.to_string()).or_default();
        series.push(now_ns, depths);
    }

    /// Records one rank-band occupancy snapshot for `component`: how many
    /// queued items currently sit in each rank band of a ranked executor
    /// (PIFO / bucket queue). Band semantics come from
    /// `syrup_sched::rank_band`; FIFO executors never call this.
    #[inline]
    pub fn queue_rank_bands(&self, component: &str, now_ns: u64, bands: &[usize]) {
        let Some(inner) = &self.inner else { return };
        Self::queue_rank_bands_slow(inner, component, now_ns, bands);
    }

    #[cold]
    fn queue_rank_bands_slow(inner: &Inner, component: &str, now_ns: u64, bands: &[usize]) {
        let mut st = inner.state.lock();
        let series = st.rank_bands.entry(component.to_string()).or_default();
        series.push(now_ns, bands);
    }

    /// Records a thread's transition into `state` at `now_ns`,
    /// accumulating the elapsed interval into the previous state's
    /// bucket. A runnable→running transition longer than the starvation
    /// threshold emits a [`crate::StarvationEvent`].
    #[inline]
    pub fn thread_state(&self, tid: u64, state: ThreadState, now_ns: u64) {
        let Some(inner) = &self.inner else { return };
        Self::thread_state_slow(inner, tid, state, now_ns);
    }

    #[cold]
    fn thread_state_slow(inner: &Inner, tid: u64, state: ThreadState, now_ns: u64) {
        let mut st = inner.state.lock();
        let threshold = st.starvation_threshold_ns;
        let agg = st
            .threads
            .entry(tid)
            .or_insert_with(|| ThreadAgg::new(state, now_ns));
        if let Some(runnable_ns) = agg.transition(state, now_ns, threshold) {
            st.starvation.push(crate::StarvationEvent {
                tid,
                runnable_ns,
                at_ns: now_ns,
            });
            st.recorder.starvation(now_ns, tid, runnable_ns);
        }
    }

    /// Records one scheduling-latency sample (decision commit → thread
    /// placed), in virtual ns.
    #[inline]
    pub fn sched_latency(&self, ns: u64) {
        let Some(inner) = &self.inner else { return };
        Self::sched_latency_slow(inner, ns);
    }

    #[cold]
    fn sched_latency_slow(inner: &Inner, ns: u64) {
        let mut st = inner.state.lock();
        st.sched_latency.0 += 1;
        st.sched_latency.1 += ns;
        st.sched_latency.2 = st.sched_latency.2.max(ns);
    }

    /// Overrides the runnable-interval length flagged as starvation.
    pub fn set_starvation_threshold(&self, ns: u64) {
        if let Some(inner) = &self.inner {
            inner.state.lock().starvation_threshold_ns = ns;
        }
    }

    /// Mirrors starvation flags into the flight recorder, arming its
    /// [`syrup_blackbox::TriggerCause::Starvation`] trigger path.
    pub fn attach_blackbox(&self, recorder: &syrup_blackbox::Recorder) {
        if let Some(inner) = &self.inner {
            inner.state.lock().recorder = recorder.clone();
        }
    }

    /// Builds the cycle-attribution report. `total_cycles` is the
    /// ground-truth account to compute coverage against (typically the
    /// `vm/run_cycles` histogram sum); `None` uses the attributed sum
    /// itself. `top_n` bounds the hotspot table.
    pub fn report(&self, total_cycles: Option<u64>, top_n: usize) -> ProfileReport {
        let Some(inner) = &self.inner else {
            return ProfileReport::default();
        };
        let st = inner.state.lock();
        let attributed: u64 = st.pc_cycles.values().sum();
        let total = total_cycles.unwrap_or(attributed);
        let coverage = if total == 0 {
            0.0
        } else {
            attributed as f64 / total as f64
        };

        let mut per_prog: BTreeMap<&str, u64> = BTreeMap::new();
        for ((prog, _), cycles) in &st.pc_cycles {
            *per_prog.entry(prog.as_str()).or_default() += cycles;
        }
        let mut progs: Vec<ProgCycles> = per_prog
            .into_iter()
            .map(|(prog, cycles)| ProgCycles {
                prog: prog.to_string(),
                cycles,
                share: if attributed == 0 {
                    0.0
                } else {
                    cycles as f64 / attributed as f64
                },
            })
            .collect();
        progs.sort_by(|a, b| b.cycles.cmp(&a.cycles).then(a.prog.cmp(&b.prog)));

        let mut hotspots: Vec<Hotspot> = st
            .pc_cycles
            .iter()
            .map(|((prog, pc), cycles)| Hotspot {
                prog: prog.clone(),
                pc: *pc,
                cycles: *cycles,
                insn: st
                    .disasm
                    .get(prog)
                    .and_then(|lines| lines.get(*pc as usize))
                    .cloned(),
            })
            .collect();
        hotspots.sort_by(|a, b| {
            b.cycles
                .cmp(&a.cycles)
                .then(a.prog.cmp(&b.prog))
                .then(a.pc.cmp(&b.pc))
        });
        hotspots.truncate(top_n);

        let mut helpers: Vec<HelperCost> = st
            .helpers
            .iter()
            .map(|(name, (calls, cycles))| HelperCost {
                helper: name.to_string(),
                calls: *calls,
                cycles: *cycles,
            })
            .collect();
        helpers.sort_by(|a, b| b.cycles.cmp(&a.cycles).then(a.helper.cmp(&b.helper)));

        ProfileReport {
            runs: st.runs,
            total_cycles: total,
            attributed_cycles: attributed,
            coverage,
            progs,
            hotspots,
            helpers,
        }
    }

    /// Renders the collapsed-stack flamegraph: one
    /// `vm;prog[;prog…];pcN-M[;helper] cycles` line per folded frame,
    /// loadable by inferno / speedscope / flamegraph.pl.
    pub fn flame(&self) -> String {
        let Some(inner) = &self.inner else {
            return String::new();
        };
        let st = inner.state.lock();
        let mut out = String::new();
        for (frame, cycles) in &st.folded {
            out.push_str(frame);
            out.push(' ');
            out.push_str(&cycles.to_string());
            out.push('\n');
        }
        out
    }

    /// Builds the executor-pressure report (queue imbalance, thread
    /// time-in-state, scheduling latency, starvation flags).
    pub fn pressure(&self) -> PressureReport {
        let Some(inner) = &self.inner else {
            return PressureReport::default();
        };
        pressure::build_report(&inner.state.lock())
    }
}

/// One recorded `(pc, cycles, helper)` sample inside a frame.
#[derive(Debug)]
struct Sample {
    pc: u32,
    cycles: u64,
    helper: Option<&'static str>,
}

/// One program frame of a tail-call chain.
#[derive(Debug)]
struct FrameRec {
    prog: String,
    samples: Vec<Sample>,
}

#[derive(Debug)]
struct VmRec {
    inner: Arc<Inner>,
    frames: Vec<FrameRec>,
}

/// A per-invocation recording scope handed out by
/// [`Profiler::vm_enter`]. All methods are a single branch when the
/// profiler is disabled; the scope flushes its samples on drop.
#[derive(Debug)]
pub struct VmSpan {
    rec: Option<Box<VmRec>>,
}

impl VmSpan {
    #[cold]
    fn open(inner: Arc<Inner>, prog: &str, invoke_cycles: u64) -> VmSpan {
        VmSpan {
            rec: Some(Box::new(VmRec {
                inner,
                frames: vec![FrameRec {
                    prog: prog.to_string(),
                    samples: vec![Sample {
                        pc: 0,
                        cycles: invoke_cycles,
                        helper: None,
                    }],
                }],
            })),
        }
    }

    /// Attributes `cycles` to the instruction at `pc` of the current
    /// chain frame.
    #[inline]
    pub fn insn(&mut self, pc: usize, cycles: u64) {
        let Some(rec) = self.rec.as_deref_mut() else {
            return;
        };
        if let Some(frame) = rec.frames.last_mut() {
            frame.samples.push(Sample {
                pc: pc as u32,
                cycles,
                helper: None,
            });
        }
    }

    /// Tags the most recent sample as a call to `helper`, so its cycles
    /// additionally land in the per-helper table and the flamegraph
    /// frame gains a helper leaf.
    #[inline]
    pub fn helper(&mut self, helper: &'static str) {
        let Some(rec) = self.rec.as_deref_mut() else {
            return;
        };
        if let Some(sample) = rec.frames.last_mut().and_then(|f| f.samples.last_mut()) {
            sample.helper = Some(helper);
        }
    }

    /// Pushes a new chain frame: a successful tail call into `prog`.
    #[inline]
    pub fn tail_call(&mut self, prog: &str) {
        let Some(rec) = self.rec.as_deref_mut() else {
            return;
        };
        rec.frames.push(FrameRec {
            prog: prog.to_string(),
            samples: Vec::new(),
        });
    }
}

impl Drop for VmSpan {
    fn drop(&mut self) {
        if let Some(rec) = self.rec.take() {
            flush(&rec);
        }
    }
}

#[cold]
fn flush(rec: &VmRec) {
    let mut st = rec.inner.state.lock();
    st.runs += 1;
    let mut chain = String::from("vm");
    for frame in &rec.frames {
        chain.push(';');
        chain.push_str(&frame.prog);
        // Fold repeated pcs (loops) locally before touching the maps,
        // so the per-run cost is bounded by *distinct* pcs.
        let mut per_pc: BTreeMap<(u32, Option<&'static str>), (u64, u64)> = BTreeMap::new();
        for s in &frame.samples {
            let e = per_pc.entry((s.pc, s.helper)).or_default();
            e.0 += s.cycles;
            e.1 += 1;
        }
        for ((pc, helper), (cycles, hits)) in per_pc {
            *st.pc_cycles.entry((frame.prog.clone(), pc)).or_default() += cycles;
            let lo = pc - pc % PC_RANGE;
            let hi = lo + PC_RANGE - 1;
            let key = match helper {
                Some(h) => {
                    let e = st.helpers.entry(h).or_default();
                    e.0 += hits;
                    e.1 += cycles;
                    format!("{chain};pc{lo}-{hi};{h}")
                }
                None => format!("{chain};pc{lo}-{hi}"),
            };
            *st.folded.entry(key).or_default() += cycles;
        }
    }
}

/// Cycles attributed to one program of the chain.
#[derive(Debug, Clone, PartialEq)]
pub struct ProgCycles {
    /// Program name.
    pub prog: String,
    /// Cycles attributed to its instructions.
    pub cycles: u64,
    /// Fraction of all attributed cycles.
    pub share: f64,
}

impl Serialize for ProgCycles {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut s = serializer.serialize_struct("ProgCycles", 3)?;
        s.serialize_field("prog", &self.prog)?;
        s.serialize_field("cycles", &self.cycles)?;
        s.serialize_field("share", &self.share)?;
        s.end()
    }
}

/// One hotspot row: a `(prog, pc)` bucket with its attributed cycles.
#[derive(Debug, Clone, PartialEq)]
pub struct Hotspot {
    /// Program name.
    pub prog: String,
    /// Instruction index.
    pub pc: u32,
    /// Cycles attributed to this pc.
    pub cycles: u64,
    /// Rendered instruction, when the program's disassembly was
    /// registered.
    pub insn: Option<String>,
}

impl Serialize for Hotspot {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut s = serializer.serialize_struct("Hotspot", 4)?;
        s.serialize_field("prog", &self.prog)?;
        s.serialize_field("pc", &u64::from(self.pc))?;
        s.serialize_field("cycles", &self.cycles)?;
        s.serialize_field("insn", &self.insn)?;
        s.end()
    }
}

/// Per-helper call counts and cycles.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HelperCost {
    /// Helper name (`map_lookup_elem`, …).
    pub helper: String,
    /// Executions attributed to this helper.
    pub calls: u64,
    /// Cycles spent in the helper.
    pub cycles: u64,
}

impl Serialize for HelperCost {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut s = serializer.serialize_struct("HelperCost", 3)?;
        s.serialize_field("helper", &self.helper)?;
        s.serialize_field("calls", &self.calls)?;
        s.serialize_field("cycles", &self.cycles)?;
        s.end()
    }
}

/// The cycle-attribution report: where the VM's cycles went.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ProfileReport {
    /// VM invocations flushed into the sink.
    pub runs: u64,
    /// Ground-truth total cycles (the `vm/run_cycles` sum when known).
    pub total_cycles: u64,
    /// Cycles attributed to concrete `(prog, pc)` buckets.
    pub attributed_cycles: u64,
    /// `attributed / total` — the acceptance bar is ≥ 0.95.
    pub coverage: f64,
    /// Per-program attribution, hottest first.
    pub progs: Vec<ProgCycles>,
    /// Top-N `(prog, pc)` buckets, hottest first.
    pub hotspots: Vec<Hotspot>,
    /// Per-helper attribution, hottest first.
    pub helpers: Vec<HelperCost>,
}

impl Serialize for ProfileReport {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut s = serializer.serialize_struct("ProfileReport", 7)?;
        s.serialize_field("runs", &self.runs)?;
        s.serialize_field("total_cycles", &self.total_cycles)?;
        s.serialize_field("attributed_cycles", &self.attributed_cycles)?;
        s.serialize_field("coverage", &self.coverage)?;
        s.serialize_field("progs", &self.progs)?;
        s.serialize_field("hotspots", &self.hotspots)?;
        s.serialize_field("helpers", &self.helpers)?;
        s.end()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_once(p: &Profiler) {
        let mut span = p.vm_enter("dispatch", 25);
        span.insn(0, 1);
        span.insn(1, 45);
        span.helper("tail_call");
        span.tail_call("rr");
        span.insn(0, 1);
        span.insn(1, 45);
        span.helper("map_lookup_elem");
        span.insn(2, 1);
    }

    #[test]
    fn disabled_profiler_is_empty() {
        let p = Profiler::disabled();
        run_once(&p);
        p.queue_depths("nic", 0, &[1, 2]);
        p.thread_state(1, ThreadState::Runnable, 0);
        p.sched_latency(10);
        assert!(!p.is_enabled());
        assert_eq!(p.report(None, 10), ProfileReport::default());
        assert_eq!(p.flame(), "");
    }

    #[test]
    fn attribution_covers_every_cycle() {
        let p = Profiler::new();
        run_once(&p);
        // 25 (invoke, pc0) + 1 + 45 in dispatch, 1 + 45 + 1 in rr.
        let report = p.report(None, 10);
        assert_eq!(report.runs, 1);
        assert_eq!(report.attributed_cycles, 25 + 1 + 45 + 1 + 45 + 1);
        assert_eq!(report.coverage, 1.0);
        assert_eq!(report.progs.len(), 2);
        assert_eq!(report.progs[0].prog, "dispatch"); // 71 > 47
        let shares: f64 = report.progs.iter().map(|p| p.share).sum();
        assert!((shares - 1.0).abs() < 1e-9);
        // Helper table: one tail_call, one map_lookup_elem.
        assert_eq!(report.helpers.len(), 2);
        assert!(report
            .helpers
            .iter()
            .any(|h| h.helper == "tail_call" && h.calls == 1 && h.cycles == 45));
    }

    #[test]
    fn coverage_uses_supplied_total() {
        let p = Profiler::new();
        run_once(&p);
        let report = p.report(Some(236), 10);
        assert_eq!(report.total_cycles, 236);
        assert!((report.coverage - 118.0 / 236.0).abs() < 1e-9);
    }

    #[test]
    fn tail_calls_fold_into_full_chains() {
        let p = Profiler::new();
        run_once(&p);
        let flame = p.flame();
        // The invoke cost folds into the root frame; the tail-called
        // policy's frames carry the full chain prefix.
        assert!(flame.contains("vm;dispatch;pc0-15 "), "{flame}");
        assert!(flame.contains("vm;dispatch;pc0-15;tail_call 45"), "{flame}");
        assert!(
            flame.contains("vm;dispatch;rr;pc0-15;map_lookup_elem 45"),
            "{flame}"
        );
        // Every line is `frames count` with a numeric suffix.
        for line in flame.lines() {
            let (frames, count) = line.rsplit_once(' ').expect("folded line");
            assert!(frames.contains(';'), "{line}");
            count.parse::<u64>().expect("numeric suffix");
        }
        // Folded cycles account for the whole run.
        let folded_total: u64 = flame
            .lines()
            .map(|l| l.rsplit_once(' ').unwrap().1.parse::<u64>().unwrap())
            .sum();
        assert_eq!(folded_total, p.report(None, 1).attributed_cycles);
    }

    #[test]
    fn hotspots_are_annotated_and_ranked() {
        let p = Profiler::new();
        p.register_program(
            "dispatch",
            vec!["r0 = 0".into(), "call tail_call".into(), "exit".into()],
        );
        run_once(&p);
        let report = p.report(None, 2);
        assert_eq!(report.hotspots.len(), 2);
        // pc1 of each prog carries the helper cost (45); dispatch pc0
        // carries invoke (25) + 1.
        assert_eq!(report.hotspots[0].cycles, 45);
        let annotated = report
            .hotspots
            .iter()
            .find(|h| h.prog == "dispatch" && h.pc == 1)
            .expect("dispatch pc1 in top-2");
        assert_eq!(annotated.insn.as_deref(), Some("call tail_call"));
    }

    #[test]
    fn loops_fold_per_distinct_pc() {
        let p = Profiler::new();
        let mut span = p.vm_enter("looper", 0);
        for _ in 0..100 {
            span.insn(3, 2);
        }
        drop(span);
        let report = p.report(None, 10);
        assert_eq!(report.attributed_cycles, 200);
        let hot = report
            .hotspots
            .iter()
            .find(|h| h.prog == "looper" && h.pc == 3)
            .expect("looped pc");
        assert_eq!(hot.cycles, 200);
    }

    #[test]
    fn report_serializes_to_json() {
        let p = Profiler::new();
        run_once(&p);
        let json = serde::json::to_string(&p.report(None, 5)).unwrap();
        let value = serde::json::from_str(&json).expect("report parses");
        assert_eq!(value.get("runs").and_then(|v| v.as_u64()), Some(1));
        assert!(value.get("coverage").and_then(|v| v.as_f64()).unwrap() > 0.99);
        let hotspots = value.get("hotspots").and_then(|v| v.as_array()).unwrap();
        assert!(!hotspots.is_empty());
        assert!(hotspots[0].get("prog").and_then(|v| v.as_str()).is_some());
    }
}
