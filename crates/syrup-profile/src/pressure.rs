//! Executor pressure: queue imbalance, time-in-state, starvation.

use serde::{Serialize, SerializeStruct, Serializer};

use crate::profiler::{ProfState, ThreadState};

/// Per-queue depth accumulation for one component.
#[derive(Debug, Default)]
pub(crate) struct QueueSeries {
    pub(crate) samples: u64,
    pub(crate) sum: Vec<u64>,
    pub(crate) max: Vec<u64>,
}

impl QueueSeries {
    pub(crate) fn push(&mut self, _now_ns: u64, depths: &[usize]) {
        if depths.len() > self.sum.len() {
            self.sum.resize(depths.len(), 0);
            self.max.resize(depths.len(), 0);
        }
        self.samples += 1;
        for (q, &d) in depths.iter().enumerate() {
            self.sum[q] += d as u64;
            self.max[q] = self.max[q].max(d as u64);
        }
    }
}

/// Per-thread time-in-state accumulation.
#[derive(Debug)]
pub(crate) struct ThreadAgg {
    state: ThreadState,
    since_ns: u64,
    pub(crate) runnable_ns: u64,
    pub(crate) running_ns: u64,
    pub(crate) blocked_ns: u64,
}

impl ThreadAgg {
    pub(crate) fn new(state: ThreadState, now_ns: u64) -> Self {
        ThreadAgg {
            state,
            since_ns: now_ns,
            runnable_ns: 0,
            running_ns: 0,
            blocked_ns: 0,
        }
    }

    /// Accumulates the elapsed interval into the previous state and
    /// switches to `state`. Returns the runnable interval when it ends
    /// in a dispatch (runnable → running) after exceeding `threshold`.
    pub(crate) fn transition(
        &mut self,
        state: ThreadState,
        now_ns: u64,
        threshold: u64,
    ) -> Option<u64> {
        let elapsed = now_ns.saturating_sub(self.since_ns);
        let was = self.state;
        match was {
            ThreadState::Runnable => self.runnable_ns += elapsed,
            ThreadState::Running => self.running_ns += elapsed,
            ThreadState::Blocked => self.blocked_ns += elapsed,
        }
        self.state = state;
        self.since_ns = now_ns;
        if was == ThreadState::Runnable && state == ThreadState::Running && elapsed > threshold {
            Some(elapsed)
        } else {
            None
        }
    }
}

/// Queue-depth imbalance for one component (`nic`, `sock`, …).
#[derive(Debug, Clone, PartialEq)]
pub struct QueuePressure {
    /// Component name.
    pub component: String,
    /// Number of queues observed.
    pub queues: usize,
    /// Depth snapshots recorded.
    pub samples: u64,
    /// Mean depth per queue over the series.
    pub mean_depths: Vec<f64>,
    /// Largest instantaneous depth seen on any queue.
    pub max_depth: u64,
    /// Hottest queue's mean depth over the all-queue mean (1.0 =
    /// perfectly balanced; Fig. 7's imbalance signal).
    pub max_mean_ratio: f64,
    /// Gini coefficient of the mean depths (0 = equal, →1 = one queue
    /// holds everything).
    pub gini: f64,
}

impl Serialize for QueuePressure {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut s = serializer.serialize_struct("QueuePressure", 7)?;
        s.serialize_field("component", &self.component)?;
        s.serialize_field("queues", &(self.queues as u64))?;
        s.serialize_field("samples", &self.samples)?;
        s.serialize_field("mean_depths", &self.mean_depths)?;
        s.serialize_field("max_depth", &self.max_depth)?;
        s.serialize_field("max_mean_ratio", &self.max_mean_ratio)?;
        s.serialize_field("gini", &self.gini)?;
        s.end()
    }
}

/// Rank-band occupancy for one ranked component: who is waiting, by
/// priority. A fat low band (band 0 = most urgent) with a starved tail
/// band is the signature of priority inversion pressure.
#[derive(Debug, Clone, PartialEq)]
pub struct RankBandPressure {
    /// Component name.
    pub component: String,
    /// Band snapshots recorded.
    pub samples: u64,
    /// Mean occupancy per band over the series.
    pub mean_depths: Vec<f64>,
    /// Largest instantaneous occupancy seen in any band.
    pub max_depth: u64,
}

impl Serialize for RankBandPressure {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut s = serializer.serialize_struct("RankBandPressure", 4)?;
        s.serialize_field("component", &self.component)?;
        s.serialize_field("samples", &self.samples)?;
        s.serialize_field("mean_depths", &self.mean_depths)?;
        s.serialize_field("max_depth", &self.max_depth)?;
        s.end()
    }
}

/// One thread's time-in-state totals.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ThreadPressure {
    /// Thread id.
    pub tid: u64,
    /// Total ns spent runnable-but-unserved.
    pub runnable_ns: u64,
    /// Total ns on a core.
    pub running_ns: u64,
    /// Total ns blocked.
    pub blocked_ns: u64,
    /// Whether any single runnable interval exceeded the starvation
    /// threshold.
    pub starved: bool,
}

impl Serialize for ThreadPressure {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut s = serializer.serialize_struct("ThreadPressure", 5)?;
        s.serialize_field("tid", &self.tid)?;
        s.serialize_field("runnable_ns", &self.runnable_ns)?;
        s.serialize_field("running_ns", &self.running_ns)?;
        s.serialize_field("blocked_ns", &self.blocked_ns)?;
        s.serialize_field("starved", &self.starved)?;
        s.end()
    }
}

/// A runnable interval that exceeded the starvation threshold.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StarvationEvent {
    /// The starved thread.
    pub tid: u64,
    /// How long it sat runnable before being served.
    pub runnable_ns: u64,
    /// When it was finally dispatched (virtual ns).
    pub at_ns: u64,
}

impl Serialize for StarvationEvent {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut s = serializer.serialize_struct("StarvationEvent", 3)?;
        s.serialize_field("tid", &self.tid)?;
        s.serialize_field("runnable_ns", &self.runnable_ns)?;
        s.serialize_field("at_ns", &self.at_ns)?;
        s.end()
    }
}

/// Scheduling-latency summary (decision commit → thread placed).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LatencySummary {
    /// Samples recorded.
    pub samples: u64,
    /// Mean latency, ns.
    pub mean_ns: f64,
    /// Worst latency, ns.
    pub max_ns: u64,
}

impl Serialize for LatencySummary {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut s = serializer.serialize_struct("LatencySummary", 3)?;
        s.serialize_field("samples", &self.samples)?;
        s.serialize_field("mean_ns", &self.mean_ns)?;
        s.serialize_field("max_ns", &self.max_ns)?;
        s.end()
    }
}

/// The executor-pressure report.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PressureReport {
    /// Per-component queue imbalance, in component-name order.
    pub components: Vec<QueuePressure>,
    /// Per-component rank-band occupancy (ranked executors only; empty
    /// when every executor is FIFO), in component-name order.
    pub rank_bands: Vec<RankBandPressure>,
    /// Per-thread time-in-state, in tid order.
    pub threads: Vec<ThreadPressure>,
    /// Scheduling-latency summary.
    pub sched_latency: LatencySummary,
    /// Starvation events, in occurrence order.
    pub starvation: Vec<StarvationEvent>,
}

impl Serialize for PressureReport {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut s = serializer.serialize_struct("PressureReport", 5)?;
        s.serialize_field("components", &self.components)?;
        s.serialize_field("rank_bands", &self.rank_bands)?;
        s.serialize_field("threads", &self.threads)?;
        s.serialize_field("sched_latency", &self.sched_latency)?;
        s.serialize_field("starvation", &self.starvation)?;
        s.end()
    }
}

/// Gini coefficient of a non-negative series; 0 for empty/all-zero.
/// 0 = perfectly even, →1 = concentrated on one element. Used for queue
/// imbalance here and for cross-shard event-count imbalance by
/// `syrup-scope` (O(n²) pairwise — fine at queue/shard counts).
pub fn gini(xs: &[f64]) -> f64 {
    let n = xs.len();
    if n == 0 {
        return 0.0;
    }
    let mean = xs.iter().sum::<f64>() / n as f64;
    if mean <= 0.0 {
        return 0.0;
    }
    let mut diff_sum = 0.0;
    for a in xs {
        for b in xs {
            diff_sum += (a - b).abs();
        }
    }
    diff_sum / (2.0 * (n * n) as f64 * mean)
}

pub(crate) fn build_report(st: &ProfState) -> PressureReport {
    let components = st
        .queues
        .iter()
        .map(|(component, series)| {
            let mean_depths: Vec<f64> = series
                .sum
                .iter()
                .map(|&s| {
                    if series.samples == 0 {
                        0.0
                    } else {
                        s as f64 / series.samples as f64
                    }
                })
                .collect();
            let overall = if mean_depths.is_empty() {
                0.0
            } else {
                mean_depths.iter().sum::<f64>() / mean_depths.len() as f64
            };
            let hottest = mean_depths.iter().cloned().fold(0.0_f64, f64::max);
            QueuePressure {
                component: component.clone(),
                queues: series.sum.len(),
                samples: series.samples,
                max_depth: series.max.iter().copied().max().unwrap_or(0),
                max_mean_ratio: if overall > 0.0 {
                    hottest / overall
                } else {
                    0.0
                },
                gini: gini(&mean_depths),
                mean_depths,
            }
        })
        .collect();

    let rank_bands = st
        .rank_bands
        .iter()
        .map(|(component, series)| {
            let mean_depths: Vec<f64> = series
                .sum
                .iter()
                .map(|&s| {
                    if series.samples == 0 {
                        0.0
                    } else {
                        s as f64 / series.samples as f64
                    }
                })
                .collect();
            RankBandPressure {
                component: component.clone(),
                samples: series.samples,
                max_depth: series.max.iter().copied().max().unwrap_or(0),
                mean_depths,
            }
        })
        .collect();

    let threads = st
        .threads
        .iter()
        .map(|(&tid, agg)| ThreadPressure {
            tid,
            runnable_ns: agg.runnable_ns,
            running_ns: agg.running_ns,
            blocked_ns: agg.blocked_ns,
            starved: st.starvation.iter().any(|e| e.tid == tid),
        })
        .collect();

    let (count, sum, max) = st.sched_latency;
    PressureReport {
        components,
        rank_bands,
        threads,
        sched_latency: LatencySummary {
            samples: count,
            mean_ns: if count == 0 {
                0.0
            } else {
                sum as f64 / count as f64
            },
            max_ns: max,
        },
        starvation: st.starvation.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Profiler;

    #[test]
    fn gini_extremes() {
        assert_eq!(gini(&[]), 0.0);
        assert_eq!(gini(&[0.0, 0.0]), 0.0);
        assert!(gini(&[1.0, 1.0, 1.0]).abs() < 1e-12);
        // One queue holds everything: G = (n-1)/n.
        let g = gini(&[12.0, 0.0, 0.0, 0.0]);
        assert!((g - 0.75).abs() < 1e-12, "{g}");
    }

    #[test]
    fn queue_imbalance_is_measured() {
        let p = Profiler::new();
        p.queue_depths("nic", 0, &[4, 0, 0, 0]);
        p.queue_depths("nic", 100, &[8, 0, 0, 0]);
        p.queue_depths("sock", 0, &[1, 1]);
        let report = p.pressure();
        assert_eq!(report.components.len(), 2);
        let nic = &report.components[0];
        assert_eq!(nic.component, "nic");
        assert_eq!(nic.samples, 2);
        assert_eq!(nic.max_depth, 8);
        assert_eq!(nic.mean_depths, vec![6.0, 0.0, 0.0, 0.0]);
        // One hot queue out of four: ratio 4, Gini 0.75.
        assert!((nic.max_mean_ratio - 4.0).abs() < 1e-12);
        assert!((nic.gini - 0.75).abs() < 1e-12);
        let sock = &report.components[1];
        assert!((sock.max_mean_ratio - 1.0).abs() < 1e-12);
        assert!(sock.gini.abs() < 1e-12);
    }

    #[test]
    fn time_in_state_and_starvation() {
        use crate::ThreadState::{Blocked, Runnable, Running};
        let p = Profiler::new();
        p.set_starvation_threshold(1_000);
        // Thread 1: runnable 500ns (served fast), runs 2000ns, blocks.
        p.thread_state(1, Runnable, 0);
        p.thread_state(1, Running, 500);
        p.thread_state(1, Blocked, 2_500);
        // Thread 2: runnable 5000ns before dispatch — starved.
        p.thread_state(2, Runnable, 0);
        p.thread_state(2, Running, 5_000);
        p.sched_latency(500);
        p.sched_latency(1_500);
        let report = p.pressure();
        assert_eq!(report.threads.len(), 2);
        let t1 = &report.threads[0];
        assert_eq!(
            (t1.runnable_ns, t1.running_ns, t1.blocked_ns),
            (500, 2_000, 0)
        );
        assert!(!t1.starved);
        let t2 = &report.threads[1];
        assert_eq!(t2.runnable_ns, 5_000);
        assert!(t2.starved);
        assert_eq!(report.starvation.len(), 1);
        assert_eq!(report.starvation[0].runnable_ns, 5_000);
        assert_eq!(report.sched_latency.samples, 2);
        assert!((report.sched_latency.mean_ns - 1_000.0).abs() < 1e-12);
        assert_eq!(report.sched_latency.max_ns, 1_500);
    }

    #[test]
    fn starvation_flags_mirror_into_the_flight_recorder() {
        use crate::ThreadState::{Runnable, Running};
        use syrup_blackbox::{EventKind, Layer, Recorder, TriggerCause};
        let p = Profiler::new();
        p.set_starvation_threshold(1_000);
        let rec = Recorder::new();
        p.attach_blackbox(&rec);
        // Fast dispatch: no flag, recorder untouched.
        p.thread_state(1, Runnable, 0);
        p.thread_state(1, Running, 500);
        assert!(rec.events(Layer::Ghost).is_empty());
        // Starved dispatch: event recorded, starvation trigger fires.
        p.thread_state(2, Runnable, 0);
        p.thread_state(2, Running, 5_000);
        let events = rec.events(Layer::Ghost);
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].kind, EventKind::Starvation);
        assert_eq!(events[0].w0, 2);
        assert_eq!(events[0].w1, 5_000);
        assert_eq!(rec.trigger().unwrap().cause, TriggerCause::Starvation);
    }

    #[test]
    fn rank_band_occupancy_is_reported() {
        let p = Profiler::new();
        p.queue_rank_bands("sock", 0, &[4, 2, 0, 0]);
        p.queue_rank_bands("sock", 100, &[0, 2, 2, 0]);
        let report = p.pressure();
        assert_eq!(report.rank_bands.len(), 1);
        let bands = &report.rank_bands[0];
        assert_eq!(bands.component, "sock");
        assert_eq!(bands.samples, 2);
        assert_eq!(bands.mean_depths, vec![2.0, 2.0, 1.0, 0.0]);
        assert_eq!(bands.max_depth, 4);
        // FIFO-only runs never sample bands: the section stays empty.
        let fifo_only = Profiler::new();
        fifo_only.queue_depths("nic", 0, &[1]);
        assert!(fifo_only.pressure().rank_bands.is_empty());
    }

    #[test]
    fn pressure_report_serializes_to_json() {
        let p = Profiler::new();
        p.queue_depths("nic", 0, &[3, 1]);
        let json = serde::json::to_string(&p.pressure()).unwrap();
        let value = serde::json::from_str(&json).expect("pressure parses");
        let comps = value.get("components").and_then(|v| v.as_array()).unwrap();
        assert_eq!(comps.len(), 1);
        assert_eq!(
            comps[0].get("component").and_then(|v| v.as_str()),
            Some("nic")
        );
        assert!(value.get("sched_latency").is_some());
        assert!(value.get("rank_bands").and_then(|v| v.as_array()).is_some());
    }
}
