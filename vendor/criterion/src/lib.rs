//! Offline stub for `criterion` 0.5.
//!
//! Real wall-clock measurement with warmup, calibrated iteration counts,
//! and per-benchmark mean/min/max reporting — but no HTML reports,
//! statistical regression, or CLI filtering. `cargo bench` output is a
//! plain `name  time: [min mean max]` line per benchmark. When invoked by
//! `cargo test` (which passes `--test` to bench targets), each benchmark
//! runs a single iteration as a smoke test.

use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting benchmarked
/// work. Forwards to `std::hint::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Top-level benchmark driver.
pub struct Criterion {
    smoke_test: bool,
    measure_target: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo test` runs bench targets with `--test`; run one iteration
        // per benchmark in that mode so the suite stays fast and green.
        let smoke_test = std::env::args().any(|a| a == "--test");
        Criterion {
            smoke_test,
            measure_target: Duration::from_millis(120),
        }
    }
}

impl Criterion {
    /// Runs one named benchmark.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run_one(id, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }

    fn run_one<F>(&mut self, id: &str, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            smoke_test: self.smoke_test,
            measure_target: self.measure_target,
            report: None,
        };
        f(&mut bencher);
        match bencher.report {
            Some(r) if !self.smoke_test => println!(
                "{:<40} time: [{} {} {}]",
                id,
                fmt_ns(r.min_ns),
                fmt_ns(r.mean_ns),
                fmt_ns(r.max_ns)
            ),
            _ => println!("{:<40} ok (smoke test)", id),
        }
    }
}

/// A group of benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark within the group.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        self.criterion.run_one(&full, f);
        self
    }

    /// Ends the group. (No-op; exists for API compatibility.)
    pub fn finish(self) {}
}

struct Report {
    min_ns: f64,
    mean_ns: f64,
    max_ns: f64,
}

/// Timer handed to each benchmark closure.
pub struct Bencher {
    smoke_test: bool,
    measure_target: Duration,
    report: Option<Report>,
}

impl Bencher {
    /// Measures `f`, amortizing timer overhead over calibrated batches.
    pub fn iter<O, F>(&mut self, mut f: F)
    where
        F: FnMut() -> O,
    {
        if self.smoke_test {
            black_box(f());
            return;
        }

        // Warmup + calibration: find how many calls fit in ~5ms.
        let mut batch: u64 = 1;
        let per_call = loop {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(5) || batch >= 1 << 30 {
                break elapsed.as_secs_f64() / batch as f64;
            }
            batch *= 8;
        };

        // Measurement: several batches sized so the whole run hits the
        // target budget, tracking per-batch means for min/mean/max.
        let samples: u64 = 12;
        let target = self.measure_target.as_secs_f64() / samples as f64;
        let per_sample = ((target / per_call.max(1e-9)) as u64).max(1);
        let (mut min, mut max, mut sum) = (f64::INFINITY, 0.0f64, 0.0f64);
        for _ in 0..samples {
            let start = Instant::now();
            for _ in 0..per_sample {
                black_box(f());
            }
            let ns = start.elapsed().as_nanos() as f64 / per_sample as f64;
            min = min.min(ns);
            max = max.max(ns);
            sum += ns;
        }
        self.report = Some(Report {
            min_ns: min,
            mean_ns: sum / samples as f64,
            max_ns: max,
        });
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.3} µs", ns / 1_000.0)
    } else {
        format!("{:.3} ms", ns / 1_000_000.0)
    }
}

/// Declares a benchmark group function runnable from `criterion_main!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench-target `main` that runs the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion {
            smoke_test: false,
            measure_target: Duration::from_millis(4),
        };
        let mut saw = 0.0;
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        // Direct Bencher use: the report has sane ordering.
        let mut bencher = Bencher {
            smoke_test: false,
            measure_target: Duration::from_millis(4),
            report: None,
        };
        bencher.iter(|| black_box(17u64.wrapping_mul(31)));
        let r = bencher.report.expect("report recorded");
        assert!(r.min_ns <= r.mean_ns && r.mean_ns <= r.max_ns);
        saw += r.mean_ns;
        assert!(saw >= 0.0);
    }

    #[test]
    fn smoke_mode_runs_once() {
        let mut bencher = Bencher {
            smoke_test: true,
            measure_target: Duration::from_millis(100),
            report: None,
        };
        let mut calls = 0u32;
        bencher.iter(|| calls += 1);
        assert_eq!(calls, 1);
        assert!(bencher.report.is_none());
    }
}
