//! Offline stub for `parking_lot`, backed by `std::sync`.
//!
//! Only the API surface this workspace uses is provided: [`Mutex`] and
//! [`RwLock`] whose guards come back without a poison `Result`. Lock
//! poisoning is transparently recovered (the data is returned as-is),
//! matching parking_lot's "no poisoning" semantics.

use std::fmt;
use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion primitive; `lock()` returns the guard directly.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner
            .lock()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

/// A reader-writer lock; `read()`/`write()` return guards directly.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new lock protecting `value`.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner
            .read()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner
            .write()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.inner.try_read() {
            Ok(g) => f.debug_struct("RwLock").field("data", &&*g).finish(),
            Err(_) => f.write_str("RwLock { <locked> }"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_guards_data() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_allows_many_readers() {
        let l = RwLock::new(7);
        let a = l.read();
        let b = l.read();
        assert_eq!(*a + *b, 14);
        drop((a, b));
        *l.write() = 9;
        assert_eq!(*l.read(), 9);
    }

    #[test]
    fn try_lock_reports_contention() {
        let m = Mutex::new(0);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }
}
