//! Offline stub for `rand` 0.8.
//!
//! Provides [`rngs::StdRng`] (xoshiro256** seeded via SplitMix64 — a
//! different stream than the real crate's ChaCha12, but this workspace only
//! relies on *determinism*, never on a specific stream), the [`Rng`] /
//! [`SeedableRng`] traits, and uniform range sampling via
//! [`distributions::uniform`]. Ranges use rejection sampling so integer
//! draws are unbiased.

/// Low-level entropy source: everything derives from `next_u64`.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable from raw bits ("Standard distribution" analogue).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// The user-facing sampling interface.
pub trait Rng: RngCore {
    /// Draws a value of type `T` from its standard distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Uniform draw from `range` (half-open or inclusive).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: distributions::uniform::SampleUniform,
        R: distributions::uniform::SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

pub mod rngs {
    //! Concrete generators.
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256**.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        fn from_splitmix(seed: u64) -> Self {
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng::from_splitmix(seed)
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod distributions {
    //! Distribution traits (uniform ranges only).

    pub mod uniform {
        //! Uniform sampling over ranges.
        use crate::RngCore;
        use std::ops::{Range, RangeInclusive};

        /// Types that can be drawn uniformly from a bounded range.
        pub trait SampleUniform: Sized + Copy + PartialOrd {
            /// Uniform draw from `[lo, hi]` (both inclusive); `lo <= hi`.
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;

            /// The largest representable value strictly below `v`, used to
            /// convert half-open ranges to inclusive ones.
            fn just_below(v: Self) -> Self;
        }

        /// Unbiased draw from `[0, span]` by rejection sampling.
        fn span_draw<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
            if span == u64::MAX {
                return rng.next_u64();
            }
            let n = span + 1;
            // Largest multiple of n that fits in u64: reject above it.
            let zone = u64::MAX - (u64::MAX % n) - 1;
            loop {
                let v = rng.next_u64();
                if v <= zone {
                    return v % n;
                }
            }
        }

        macro_rules! impl_uniform_uint {
            ($($t:ty),*) => {$(
                impl SampleUniform for $t {
                    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                        debug_assert!(lo <= hi);
                        let span = (hi as u64).wrapping_sub(lo as u64);
                        lo.wrapping_add(span_draw(rng, span) as $t)
                    }
                    fn just_below(v: Self) -> Self {
                        v - 1
                    }
                }
            )*};
        }
        impl_uniform_uint!(u8, u16, u32, u64, usize);

        macro_rules! impl_uniform_int {
            ($($t:ty => $u:ty),*) => {$(
                impl SampleUniform for $t {
                    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                        debug_assert!(lo <= hi);
                        let span = (hi as $u).wrapping_sub(lo as $u) as u64;
                        lo.wrapping_add(span_draw(rng, span) as $t)
                    }
                    fn just_below(v: Self) -> Self {
                        v - 1
                    }
                }
            )*};
        }
        impl_uniform_int!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

        impl SampleUniform for f64 {
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                lo + u * (hi - lo)
            }
            fn just_below(v: Self) -> Self {
                // Half-open float ranges: `gen::<f64>() in [0,1)` never hits
                // 1.0, so the inclusive bound is effectively exclusive.
                v
            }
        }

        impl SampleUniform for f32 {
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let u = (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32);
                lo + u * (hi - lo)
            }
            fn just_below(v: Self) -> Self {
                v
            }
        }

        /// Range forms accepted by `Rng::gen_range`.
        pub trait SampleRange<T> {
            /// Draws one value from the range.
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
        }

        impl<T: SampleUniform> SampleRange<T> for Range<T> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
                assert!(self.start < self.end, "gen_range: empty range");
                T::sample_inclusive(rng, self.start, T::just_below(self.end))
            }
        }

        impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "gen_range: empty range");
                T::sample_inclusive(rng, lo, hi)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn determinism() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(1);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    use super::RngCore;

    #[test]
    fn ranges_respect_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v: u64 = r.gen_range(10..20);
            assert!((10..20).contains(&v));
            let w: u64 = r.gen_range(5..=5);
            assert_eq!(w, 5);
            let f: f64 = r.gen_range(0.0..1.0);
            assert!((0.0..1.0).contains(&f));
            let i: i32 = r.gen_range(-64..64);
            assert!((-64..64).contains(&i));
        }
    }

    #[test]
    fn f64_standard_is_unit_interval() {
        let mut r = StdRng::seed_from_u64(3);
        let mut acc = 0.0;
        for _ in 0..10_000 {
            let f: f64 = r.gen();
            assert!((0.0..1.0).contains(&f));
            acc += f;
        }
        let mean = acc / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn usize_range_covers_domain() {
        let mut r = StdRng::seed_from_u64(11);
        let mut seen = [false; 6];
        for _ in 0..1_000 {
            seen[r.gen_range(0..6usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
