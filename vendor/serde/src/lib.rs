//! Offline stub for `serde`.
//!
//! Keeps the real crate's shape — a [`Serialize`] trait visiting a
//! [`Serializer`] with compound sub-serializers — so hand-written impls
//! read exactly like expanded `#[derive(Serialize)]` output. Two
//! deliberate divergences, both because this build is offline:
//! no proc-macro derive (impls are written by hand), and a built-in
//! [`json`] backend standing in for `serde_json`.

/// A value that can drive a [`Serializer`].
pub trait Serialize {
    /// Visits `serializer` with this value's structure.
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error>;
}

/// A data-format backend.
pub trait Serializer: Sized {
    /// Value returned on success.
    type Ok;
    /// Format error type.
    type Error;
    /// Sub-serializer for sequences.
    type SerializeSeq: SerializeSeq<Ok = Self::Ok, Error = Self::Error>;
    /// Sub-serializer for maps.
    type SerializeMap: SerializeMap<Ok = Self::Ok, Error = Self::Error>;
    /// Sub-serializer for structs.
    type SerializeStruct: SerializeStruct<Ok = Self::Ok, Error = Self::Error>;

    /// Serializes a boolean.
    fn serialize_bool(self, v: bool) -> Result<Self::Ok, Self::Error>;
    /// Serializes a signed integer.
    fn serialize_i64(self, v: i64) -> Result<Self::Ok, Self::Error>;
    /// Serializes an unsigned integer.
    fn serialize_u64(self, v: u64) -> Result<Self::Ok, Self::Error>;
    /// Serializes a float.
    fn serialize_f64(self, v: f64) -> Result<Self::Ok, Self::Error>;
    /// Serializes a string.
    fn serialize_str(self, v: &str) -> Result<Self::Ok, Self::Error>;
    /// Serializes a unit value / `None`.
    fn serialize_none(self) -> Result<Self::Ok, Self::Error>;
    /// Serializes `Some(value)`.
    fn serialize_some<T: Serialize + ?Sized>(self, value: &T) -> Result<Self::Ok, Self::Error>;
    /// Begins a sequence of `len` elements (if known).
    fn serialize_seq(self, len: Option<usize>) -> Result<Self::SerializeSeq, Self::Error>;
    /// Begins a map of `len` entries (if known).
    fn serialize_map(self, len: Option<usize>) -> Result<Self::SerializeMap, Self::Error>;
    /// Begins a struct with `len` fields.
    fn serialize_struct(
        self,
        name: &'static str,
        len: usize,
    ) -> Result<Self::SerializeStruct, Self::Error>;
}

/// Sequence sub-serializer.
pub trait SerializeSeq {
    /// See [`Serializer::Ok`].
    type Ok;
    /// See [`Serializer::Error`].
    type Error;
    /// Appends one element.
    fn serialize_element<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Self::Error>;
    /// Closes the sequence.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Map sub-serializer.
pub trait SerializeMap {
    /// See [`Serializer::Ok`].
    type Ok;
    /// See [`Serializer::Error`].
    type Error;
    /// Appends one key/value entry.
    fn serialize_entry<K: Serialize + ?Sized, V: Serialize + ?Sized>(
        &mut self,
        key: &K,
        value: &V,
    ) -> Result<(), Self::Error>;
    /// Closes the map.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Struct sub-serializer.
pub trait SerializeStruct {
    /// See [`Serializer::Ok`].
    type Ok;
    /// See [`Serializer::Error`].
    type Error;
    /// Appends one named field.
    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        key: &'static str,
        value: &T,
    ) -> Result<(), Self::Error>;
    /// Closes the struct.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

macro_rules! impl_serialize_int {
    (signed: $($s:ty),*; unsigned: $($u:ty),*) => {
        $(impl Serialize for $s {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                serializer.serialize_i64(*self as i64)
            }
        })*
        $(impl Serialize for $u {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                serializer.serialize_u64(*self as u64)
            }
        })*
    };
}
impl_serialize_int!(signed: i8, i16, i32, i64, isize; unsigned: u8, u16, u32, u64, usize);

impl Serialize for bool {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_bool(*self)
    }
}

impl Serialize for f64 {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_f64(*self)
    }
}

impl Serialize for f32 {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_f64(f64::from(*self))
    }
}

impl Serialize for str {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl Serialize for String {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        match self {
            Some(v) => serializer.serialize_some(v),
            None => serializer.serialize_none(),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut seq = serializer.serialize_seq(Some(self.len()))?;
        for item in self {
            seq.serialize_element(item)?;
        }
        seq.end()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        self.as_slice().serialize(serializer)
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        self.as_slice().serialize(serializer)
    }
}

impl<K: Serialize, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut map = serializer.serialize_map(Some(self.len()))?;
        for (k, v) in self {
            map.serialize_entry(k, v)?;
        }
        map.end()
    }
}

impl<K: Serialize, V: Serialize> Serialize for std::collections::HashMap<K, V> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut map = serializer.serialize_map(Some(self.len()))?;
        for (k, v) in self {
            map.serialize_entry(k, v)?;
        }
        map.end()
    }
}

pub mod json {
    //! Built-in JSON backend (stands in for `serde_json`).
    use super::*;
    use std::fmt::Write as _;

    /// Error type; JSON emission into a `String` cannot actually fail.
    pub type Error = std::fmt::Error;

    /// Serializes `value` to a compact JSON string.
    pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
        let mut out = String::new();
        value.serialize(JsonSerializer { out: &mut out })?;
        Ok(out)
    }

    struct JsonSerializer<'a> {
        out: &'a mut String,
    }

    fn push_json_str(out: &mut String, s: &str) {
        out.push('"');
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\r' => out.push_str("\\r"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => {
                    let _ = write!(out, "\\u{:04x}", c as u32);
                }
                c => out.push(c),
            }
        }
        out.push('"');
    }

    /// Compound JSON writer shared by seq/map/struct.
    pub struct JsonCompound<'a> {
        out: &'a mut String,
        close: char,
        first: bool,
    }

    impl JsonCompound<'_> {
        fn comma(&mut self) {
            if self.first {
                self.first = false;
            } else {
                self.out.push(',');
            }
        }
    }

    impl<'a> Serializer for JsonSerializer<'a> {
        type Ok = ();
        type Error = Error;
        type SerializeSeq = JsonCompound<'a>;
        type SerializeMap = JsonCompound<'a>;
        type SerializeStruct = JsonCompound<'a>;

        fn serialize_bool(self, v: bool) -> Result<(), Error> {
            self.out.push_str(if v { "true" } else { "false" });
            Ok(())
        }

        fn serialize_i64(self, v: i64) -> Result<(), Error> {
            write!(self.out, "{v}")
        }

        fn serialize_u64(self, v: u64) -> Result<(), Error> {
            write!(self.out, "{v}")
        }

        fn serialize_f64(self, v: f64) -> Result<(), Error> {
            if v.is_finite() {
                write!(self.out, "{v}")
            } else {
                // JSON has no NaN/Inf; mirror serde_json's strictness is
                // unhelpful offline, so emit null instead of failing.
                self.out.push_str("null");
                Ok(())
            }
        }

        fn serialize_str(self, v: &str) -> Result<(), Error> {
            push_json_str(self.out, v);
            Ok(())
        }

        fn serialize_none(self) -> Result<(), Error> {
            self.out.push_str("null");
            Ok(())
        }

        fn serialize_some<T: Serialize + ?Sized>(self, value: &T) -> Result<(), Error> {
            value.serialize(self)
        }

        fn serialize_seq(self, _len: Option<usize>) -> Result<JsonCompound<'a>, Error> {
            self.out.push('[');
            Ok(JsonCompound {
                out: self.out,
                close: ']',
                first: true,
            })
        }

        fn serialize_map(self, _len: Option<usize>) -> Result<JsonCompound<'a>, Error> {
            self.out.push('{');
            Ok(JsonCompound {
                out: self.out,
                close: '}',
                first: true,
            })
        }

        fn serialize_struct(
            self,
            _name: &'static str,
            _len: usize,
        ) -> Result<JsonCompound<'a>, Error> {
            self.out.push('{');
            Ok(JsonCompound {
                out: self.out,
                close: '}',
                first: true,
            })
        }
    }

    impl SerializeSeq for JsonCompound<'_> {
        type Ok = ();
        type Error = Error;

        fn serialize_element<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Error> {
            self.comma();
            value.serialize(JsonSerializer { out: self.out })
        }

        fn end(self) -> Result<(), Error> {
            self.out.push(self.close);
            Ok(())
        }
    }

    impl SerializeMap for JsonCompound<'_> {
        type Ok = ();
        type Error = Error;

        fn serialize_entry<K: Serialize + ?Sized, V: Serialize + ?Sized>(
            &mut self,
            key: &K,
            value: &V,
        ) -> Result<(), Error> {
            self.comma();
            // JSON object keys must be strings: serialize the key, then
            // re-quote it if it rendered as a bare scalar (e.g. an AppId).
            let mut key_json = String::new();
            key.serialize(JsonSerializer { out: &mut key_json })?;
            if key_json.starts_with('"') {
                self.out.push_str(&key_json);
            } else {
                push_json_str(self.out, &key_json);
            }
            self.out.push(':');
            value.serialize(JsonSerializer { out: self.out })
        }

        fn end(self) -> Result<(), Error> {
            self.out.push(self.close);
            Ok(())
        }
    }

    impl SerializeStruct for JsonCompound<'_> {
        type Ok = ();
        type Error = Error;

        fn serialize_field<T: Serialize + ?Sized>(
            &mut self,
            key: &'static str,
            value: &T,
        ) -> Result<(), Error> {
            self.comma();
            push_json_str(self.out, key);
            self.out.push(':');
            value.serialize(JsonSerializer { out: self.out })
        }

        fn end(self) -> Result<(), Error> {
            self.out.push(self.close);
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Point {
        x: u64,
        label: String,
        tags: Vec<i32>,
        extra: Option<f64>,
    }

    impl Serialize for Point {
        fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
            let mut s = serializer.serialize_struct("Point", 4)?;
            s.serialize_field("x", &self.x)?;
            s.serialize_field("label", &self.label)?;
            s.serialize_field("tags", &self.tags)?;
            s.serialize_field("extra", &self.extra)?;
            s.end()
        }
    }

    #[test]
    fn struct_round_trip_shape() {
        let p = Point {
            x: 42,
            label: "a\"b".into(),
            tags: vec![-1, 2],
            extra: None,
        };
        assert_eq!(
            json::to_string(&p).unwrap(),
            r#"{"x":42,"label":"a\"b","tags":[-1,2],"extra":null}"#
        );
    }

    #[test]
    fn maps_quote_numeric_keys() {
        let mut m = std::collections::BTreeMap::new();
        m.insert(7u64, "seven");
        assert_eq!(json::to_string(&m).unwrap(), r#"{"7":"seven"}"#);
    }

    #[test]
    fn floats_and_bools() {
        assert_eq!(json::to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(json::to_string(&f64::NAN).unwrap(), "null");
        assert_eq!(json::to_string(&true).unwrap(), "true");
    }
}
