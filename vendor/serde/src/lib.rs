//! Offline stub for `serde`.
//!
//! Keeps the real crate's shape — a [`Serialize`] trait visiting a
//! [`Serializer`] with compound sub-serializers — so hand-written impls
//! read exactly like expanded `#[derive(Serialize)]` output. Two
//! deliberate divergences, both because this build is offline:
//! no proc-macro derive (impls are written by hand), and a built-in
//! [`json`] backend standing in for `serde_json`.

/// A value that can drive a [`Serializer`].
pub trait Serialize {
    /// Visits `serializer` with this value's structure.
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error>;
}

/// A data-format backend.
pub trait Serializer: Sized {
    /// Value returned on success.
    type Ok;
    /// Format error type.
    type Error;
    /// Sub-serializer for sequences.
    type SerializeSeq: SerializeSeq<Ok = Self::Ok, Error = Self::Error>;
    /// Sub-serializer for maps.
    type SerializeMap: SerializeMap<Ok = Self::Ok, Error = Self::Error>;
    /// Sub-serializer for structs.
    type SerializeStruct: SerializeStruct<Ok = Self::Ok, Error = Self::Error>;

    /// Serializes a boolean.
    fn serialize_bool(self, v: bool) -> Result<Self::Ok, Self::Error>;
    /// Serializes a signed integer.
    fn serialize_i64(self, v: i64) -> Result<Self::Ok, Self::Error>;
    /// Serializes an unsigned integer.
    fn serialize_u64(self, v: u64) -> Result<Self::Ok, Self::Error>;
    /// Serializes a float.
    fn serialize_f64(self, v: f64) -> Result<Self::Ok, Self::Error>;
    /// Serializes a string.
    fn serialize_str(self, v: &str) -> Result<Self::Ok, Self::Error>;
    /// Serializes a unit value / `None`.
    fn serialize_none(self) -> Result<Self::Ok, Self::Error>;
    /// Serializes `Some(value)`.
    fn serialize_some<T: Serialize + ?Sized>(self, value: &T) -> Result<Self::Ok, Self::Error>;
    /// Begins a sequence of `len` elements (if known).
    fn serialize_seq(self, len: Option<usize>) -> Result<Self::SerializeSeq, Self::Error>;
    /// Begins a map of `len` entries (if known).
    fn serialize_map(self, len: Option<usize>) -> Result<Self::SerializeMap, Self::Error>;
    /// Begins a struct with `len` fields.
    fn serialize_struct(
        self,
        name: &'static str,
        len: usize,
    ) -> Result<Self::SerializeStruct, Self::Error>;
}

/// Sequence sub-serializer.
pub trait SerializeSeq {
    /// See [`Serializer::Ok`].
    type Ok;
    /// See [`Serializer::Error`].
    type Error;
    /// Appends one element.
    fn serialize_element<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Self::Error>;
    /// Closes the sequence.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Map sub-serializer.
pub trait SerializeMap {
    /// See [`Serializer::Ok`].
    type Ok;
    /// See [`Serializer::Error`].
    type Error;
    /// Appends one key/value entry.
    fn serialize_entry<K: Serialize + ?Sized, V: Serialize + ?Sized>(
        &mut self,
        key: &K,
        value: &V,
    ) -> Result<(), Self::Error>;
    /// Closes the map.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Struct sub-serializer.
pub trait SerializeStruct {
    /// See [`Serializer::Ok`].
    type Ok;
    /// See [`Serializer::Error`].
    type Error;
    /// Appends one named field.
    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        key: &'static str,
        value: &T,
    ) -> Result<(), Self::Error>;
    /// Closes the struct.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

macro_rules! impl_serialize_int {
    (signed: $($s:ty),*; unsigned: $($u:ty),*) => {
        $(impl Serialize for $s {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                serializer.serialize_i64(*self as i64)
            }
        })*
        $(impl Serialize for $u {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                serializer.serialize_u64(*self as u64)
            }
        })*
    };
}
impl_serialize_int!(signed: i8, i16, i32, i64, isize; unsigned: u8, u16, u32, u64, usize);

impl Serialize for bool {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_bool(*self)
    }
}

impl Serialize for f64 {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_f64(*self)
    }
}

impl Serialize for f32 {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_f64(f64::from(*self))
    }
}

impl Serialize for str {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl Serialize for String {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        match self {
            Some(v) => serializer.serialize_some(v),
            None => serializer.serialize_none(),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut seq = serializer.serialize_seq(Some(self.len()))?;
        for item in self {
            seq.serialize_element(item)?;
        }
        seq.end()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        self.as_slice().serialize(serializer)
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        self.as_slice().serialize(serializer)
    }
}

impl<K: Serialize, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut map = serializer.serialize_map(Some(self.len()))?;
        for (k, v) in self {
            map.serialize_entry(k, v)?;
        }
        map.end()
    }
}

impl<K: Serialize, V: Serialize> Serialize for std::collections::HashMap<K, V> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut map = serializer.serialize_map(Some(self.len()))?;
        for (k, v) in self {
            map.serialize_entry(k, v)?;
        }
        map.end()
    }
}

pub mod json {
    //! Built-in JSON backend (stands in for `serde_json`).
    use super::*;
    use std::fmt::Write as _;

    /// Error type; JSON emission into a `String` cannot actually fail.
    pub type Error = std::fmt::Error;

    /// Serializes `value` to a compact JSON string.
    pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
        let mut out = String::new();
        value.serialize(JsonSerializer { out: &mut out })?;
        Ok(out)
    }

    struct JsonSerializer<'a> {
        out: &'a mut String,
    }

    fn push_json_str(out: &mut String, s: &str) {
        out.push('"');
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\r' => out.push_str("\\r"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => {
                    let _ = write!(out, "\\u{:04x}", c as u32);
                }
                c => out.push(c),
            }
        }
        out.push('"');
    }

    /// Compound JSON writer shared by seq/map/struct.
    pub struct JsonCompound<'a> {
        out: &'a mut String,
        close: char,
        first: bool,
    }

    impl JsonCompound<'_> {
        fn comma(&mut self) {
            if self.first {
                self.first = false;
            } else {
                self.out.push(',');
            }
        }
    }

    impl<'a> Serializer for JsonSerializer<'a> {
        type Ok = ();
        type Error = Error;
        type SerializeSeq = JsonCompound<'a>;
        type SerializeMap = JsonCompound<'a>;
        type SerializeStruct = JsonCompound<'a>;

        fn serialize_bool(self, v: bool) -> Result<(), Error> {
            self.out.push_str(if v { "true" } else { "false" });
            Ok(())
        }

        fn serialize_i64(self, v: i64) -> Result<(), Error> {
            write!(self.out, "{v}")
        }

        fn serialize_u64(self, v: u64) -> Result<(), Error> {
            write!(self.out, "{v}")
        }

        fn serialize_f64(self, v: f64) -> Result<(), Error> {
            if v.is_finite() {
                write!(self.out, "{v}")
            } else {
                // JSON has no NaN/Inf; mirror serde_json's strictness is
                // unhelpful offline, so emit null instead of failing.
                self.out.push_str("null");
                Ok(())
            }
        }

        fn serialize_str(self, v: &str) -> Result<(), Error> {
            push_json_str(self.out, v);
            Ok(())
        }

        fn serialize_none(self) -> Result<(), Error> {
            self.out.push_str("null");
            Ok(())
        }

        fn serialize_some<T: Serialize + ?Sized>(self, value: &T) -> Result<(), Error> {
            value.serialize(self)
        }

        fn serialize_seq(self, _len: Option<usize>) -> Result<JsonCompound<'a>, Error> {
            self.out.push('[');
            Ok(JsonCompound {
                out: self.out,
                close: ']',
                first: true,
            })
        }

        fn serialize_map(self, _len: Option<usize>) -> Result<JsonCompound<'a>, Error> {
            self.out.push('{');
            Ok(JsonCompound {
                out: self.out,
                close: '}',
                first: true,
            })
        }

        fn serialize_struct(
            self,
            _name: &'static str,
            _len: usize,
        ) -> Result<JsonCompound<'a>, Error> {
            self.out.push('{');
            Ok(JsonCompound {
                out: self.out,
                close: '}',
                first: true,
            })
        }
    }

    impl SerializeSeq for JsonCompound<'_> {
        type Ok = ();
        type Error = Error;

        fn serialize_element<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Error> {
            self.comma();
            value.serialize(JsonSerializer { out: self.out })
        }

        fn end(self) -> Result<(), Error> {
            self.out.push(self.close);
            Ok(())
        }
    }

    impl SerializeMap for JsonCompound<'_> {
        type Ok = ();
        type Error = Error;

        fn serialize_entry<K: Serialize + ?Sized, V: Serialize + ?Sized>(
            &mut self,
            key: &K,
            value: &V,
        ) -> Result<(), Error> {
            self.comma();
            // JSON object keys must be strings: serialize the key, then
            // re-quote it if it rendered as a bare scalar (e.g. an AppId).
            let mut key_json = String::new();
            key.serialize(JsonSerializer { out: &mut key_json })?;
            if key_json.starts_with('"') {
                self.out.push_str(&key_json);
            } else {
                push_json_str(self.out, &key_json);
            }
            self.out.push(':');
            value.serialize(JsonSerializer { out: self.out })
        }

        fn end(self) -> Result<(), Error> {
            self.out.push(self.close);
            Ok(())
        }
    }

    impl SerializeStruct for JsonCompound<'_> {
        type Ok = ();
        type Error = Error;

        fn serialize_field<T: Serialize + ?Sized>(
            &mut self,
            key: &'static str,
            value: &T,
        ) -> Result<(), Error> {
            self.comma();
            push_json_str(self.out, key);
            self.out.push(':');
            value.serialize(JsonSerializer { out: self.out })
        }

        fn end(self) -> Result<(), Error> {
            self.out.push(self.close);
            Ok(())
        }
    }

    /// A parsed JSON document (stands in for `serde_json::Value`).
    #[derive(Debug, Clone, PartialEq)]
    pub enum Value {
        /// `null`
        Null,
        /// `true` / `false`
        Bool(bool),
        /// Any JSON number, kept as f64 (sufficient for validation use).
        Number(f64),
        /// A string.
        String(String),
        /// An array.
        Array(Vec<Value>),
        /// An object; insertion order is not preserved.
        Object(std::collections::BTreeMap<String, Value>),
    }

    impl Value {
        /// Object field lookup (`None` for non-objects/missing keys).
        pub fn get(&self, key: &str) -> Option<&Value> {
            match self {
                Value::Object(map) => map.get(key),
                _ => None,
            }
        }

        /// The elements, if this is an array.
        pub fn as_array(&self) -> Option<&Vec<Value>> {
            match self {
                Value::Array(items) => Some(items),
                _ => None,
            }
        }

        /// The string contents, if this is a string.
        pub fn as_str(&self) -> Option<&str> {
            match self {
                Value::String(s) => Some(s),
                _ => None,
            }
        }

        /// The number as f64, if this is a number.
        pub fn as_f64(&self) -> Option<f64> {
            match self {
                Value::Number(n) => Some(*n),
                _ => None,
            }
        }

        /// The number as u64, if this is a non-negative integral number.
        pub fn as_u64(&self) -> Option<u64> {
            match self {
                Value::Number(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                    Some(*n as u64)
                }
                _ => None,
            }
        }

        /// The number as i64, if this is an integral number.
        pub fn as_i64(&self) -> Option<i64> {
            match self {
                Value::Number(n)
                    if n.fract() == 0.0 && *n >= i64::MIN as f64 && *n <= i64::MAX as f64 =>
                {
                    Some(*n as i64)
                }
                _ => None,
            }
        }

        /// The boolean, if this is a boolean.
        pub fn as_bool(&self) -> Option<bool> {
            match self {
                Value::Bool(b) => Some(*b),
                _ => None,
            }
        }

        /// The key/value map, if this is an object.
        pub fn as_object(&self) -> Option<&std::collections::BTreeMap<String, Value>> {
            match self {
                Value::Object(map) => Some(map),
                _ => None,
            }
        }

        /// Whether this is JSON `null`.
        pub fn is_null(&self) -> bool {
            matches!(self, Value::Null)
        }
    }

    /// A JSON parse error with a byte offset.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct ParseError {
        /// What went wrong.
        pub message: String,
        /// Byte offset into the input where it went wrong.
        pub offset: usize,
    }

    impl std::fmt::Display for ParseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(
                f,
                "JSON parse error at byte {}: {}",
                self.offset, self.message
            )
        }
    }

    impl std::error::Error for ParseError {}

    /// Parses a JSON document (stands in for `serde_json::from_str`).
    /// Rejects trailing non-whitespace after the top-level value.
    pub fn from_str(input: &str) -> Result<Value, ParseError> {
        let bytes = input.as_bytes();
        let mut p = Parser { bytes, pos: 0 };
        p.skip_ws();
        let value = p.parse_value()?;
        p.skip_ws();
        if p.pos != bytes.len() {
            return Err(p.err("trailing characters after JSON value"));
        }
        Ok(value)
    }

    struct Parser<'a> {
        bytes: &'a [u8],
        pos: usize,
    }

    impl Parser<'_> {
        fn err(&self, message: &str) -> ParseError {
            ParseError {
                message: message.to_string(),
                offset: self.pos,
            }
        }

        fn peek(&self) -> Option<u8> {
            self.bytes.get(self.pos).copied()
        }

        fn skip_ws(&mut self) {
            while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
                self.pos += 1;
            }
        }

        fn expect(&mut self, b: u8) -> Result<(), ParseError> {
            if self.peek() == Some(b) {
                self.pos += 1;
                Ok(())
            } else {
                Err(self.err(&format!("expected '{}'", b as char)))
            }
        }

        fn eat_literal(&mut self, lit: &str, value: Value) -> Result<Value, ParseError> {
            if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
                self.pos += lit.len();
                Ok(value)
            } else {
                Err(self.err(&format!("expected '{lit}'")))
            }
        }

        fn parse_value(&mut self) -> Result<Value, ParseError> {
            match self.peek() {
                Some(b'n') => self.eat_literal("null", Value::Null),
                Some(b't') => self.eat_literal("true", Value::Bool(true)),
                Some(b'f') => self.eat_literal("false", Value::Bool(false)),
                Some(b'"') => self.parse_string().map(Value::String),
                Some(b'[') => self.parse_array(),
                Some(b'{') => self.parse_object(),
                Some(b'-' | b'0'..=b'9') => self.parse_number(),
                Some(_) => Err(self.err("unexpected character")),
                None => Err(self.err("unexpected end of input")),
            }
        }

        fn parse_array(&mut self) -> Result<Value, ParseError> {
            self.expect(b'[')?;
            let mut items = Vec::new();
            self.skip_ws();
            if self.peek() == Some(b']') {
                self.pos += 1;
                return Ok(Value::Array(items));
            }
            loop {
                self.skip_ws();
                items.push(self.parse_value()?);
                self.skip_ws();
                match self.peek() {
                    Some(b',') => self.pos += 1,
                    Some(b']') => {
                        self.pos += 1;
                        return Ok(Value::Array(items));
                    }
                    _ => return Err(self.err("expected ',' or ']' in array")),
                }
            }
        }

        fn parse_object(&mut self) -> Result<Value, ParseError> {
            self.expect(b'{')?;
            let mut map = std::collections::BTreeMap::new();
            self.skip_ws();
            if self.peek() == Some(b'}') {
                self.pos += 1;
                return Ok(Value::Object(map));
            }
            loop {
                self.skip_ws();
                let key = self.parse_string()?;
                self.skip_ws();
                self.expect(b':')?;
                self.skip_ws();
                let value = self.parse_value()?;
                map.insert(key, value);
                self.skip_ws();
                match self.peek() {
                    Some(b',') => self.pos += 1,
                    Some(b'}') => {
                        self.pos += 1;
                        return Ok(Value::Object(map));
                    }
                    _ => return Err(self.err("expected ',' or '}' in object")),
                }
            }
        }

        fn parse_string(&mut self) -> Result<String, ParseError> {
            self.expect(b'"')?;
            let mut out = String::new();
            loop {
                let start = self.pos;
                // Copy runs of plain bytes in one shot.
                while let Some(b) = self.peek() {
                    if b == b'"' || b == b'\\' || b < 0x20 {
                        break;
                    }
                    self.pos += 1;
                }
                out.push_str(
                    std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.err("invalid UTF-8 in string"))?,
                );
                match self.peek() {
                    Some(b'"') => {
                        self.pos += 1;
                        return Ok(out);
                    }
                    Some(b'\\') => {
                        self.pos += 1;
                        let esc = self.peek().ok_or_else(|| self.err("truncated escape"))?;
                        self.pos += 1;
                        match esc {
                            b'"' => out.push('"'),
                            b'\\' => out.push('\\'),
                            b'/' => out.push('/'),
                            b'b' => out.push('\u{8}'),
                            b'f' => out.push('\u{c}'),
                            b'n' => out.push('\n'),
                            b'r' => out.push('\r'),
                            b't' => out.push('\t'),
                            b'u' => {
                                let hex = self
                                    .bytes
                                    .get(self.pos..self.pos + 4)
                                    .and_then(|h| std::str::from_utf8(h).ok())
                                    .ok_or_else(|| self.err("truncated \\u escape"))?;
                                let code = u32::from_str_radix(hex, 16)
                                    .map_err(|_| self.err("invalid \\u escape"))?;
                                self.pos += 4;
                                // Surrogate pairs are not needed for our
                                // exports; map lone surrogates to U+FFFD.
                                out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            }
                            _ => return Err(self.err("unknown escape")),
                        }
                    }
                    Some(_) => return Err(self.err("control character in string")),
                    None => return Err(self.err("unterminated string")),
                }
            }
        }

        fn parse_number(&mut self) -> Result<Value, ParseError> {
            let start = self.pos;
            if self.peek() == Some(b'-') {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
            if self.peek() == Some(b'.') {
                self.pos += 1;
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            if matches!(self.peek(), Some(b'e' | b'E')) {
                self.pos += 1;
                if matches!(self.peek(), Some(b'+' | b'-')) {
                    self.pos += 1;
                }
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            let text = std::str::from_utf8(&self.bytes[start..self.pos])
                .map_err(|_| self.err("invalid number"))?;
            text.parse::<f64>()
                .map(Value::Number)
                .map_err(|_| self.err("invalid number"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Point {
        x: u64,
        label: String,
        tags: Vec<i32>,
        extra: Option<f64>,
    }

    impl Serialize for Point {
        fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
            let mut s = serializer.serialize_struct("Point", 4)?;
            s.serialize_field("x", &self.x)?;
            s.serialize_field("label", &self.label)?;
            s.serialize_field("tags", &self.tags)?;
            s.serialize_field("extra", &self.extra)?;
            s.end()
        }
    }

    #[test]
    fn struct_round_trip_shape() {
        let p = Point {
            x: 42,
            label: "a\"b".into(),
            tags: vec![-1, 2],
            extra: None,
        };
        assert_eq!(
            json::to_string(&p).unwrap(),
            r#"{"x":42,"label":"a\"b","tags":[-1,2],"extra":null}"#
        );
    }

    #[test]
    fn maps_quote_numeric_keys() {
        let mut m = std::collections::BTreeMap::new();
        m.insert(7u64, "seven");
        assert_eq!(json::to_string(&m).unwrap(), r#"{"7":"seven"}"#);
    }

    #[test]
    fn floats_and_bools() {
        assert_eq!(json::to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(json::to_string(&f64::NAN).unwrap(), "null");
        assert_eq!(json::to_string(&true).unwrap(), "true");
    }

    #[test]
    fn parser_round_trips_serialized_output() {
        let p = Point {
            x: 42,
            label: "a\"b\nc".into(),
            tags: vec![-1, 2],
            extra: Some(0.25),
        };
        let text = json::to_string(&p).unwrap();
        let value = json::from_str(&text).unwrap();
        assert_eq!(value.get("x").and_then(|v| v.as_u64()), Some(42));
        assert_eq!(value.get("label").and_then(|v| v.as_str()), Some("a\"b\nc"));
        let tags = value.get("tags").and_then(|v| v.as_array()).unwrap();
        assert_eq!(tags[0].as_i64(), Some(-1));
        assert_eq!(value.get("extra").and_then(|v| v.as_f64()), Some(0.25));
    }

    #[test]
    fn parser_handles_nesting_escapes_and_numbers() {
        let value = json::from_str(r#"{"a":[1,2.5,-3e2,true,null],"b":{"c":"A\t"}}"#).unwrap();
        let a = value.get("a").and_then(|v| v.as_array()).unwrap();
        assert_eq!(a.len(), 5);
        assert_eq!(a[2].as_f64(), Some(-300.0));
        assert_eq!(a[3].as_bool(), Some(true));
        assert_eq!(a[4], json::Value::Null);
        assert_eq!(
            value
                .get("b")
                .and_then(|b| b.get("c"))
                .and_then(|v| v.as_str()),
            Some("A\t")
        );
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(json::from_str("{").is_err());
        assert!(json::from_str("[1,]").is_err());
        assert!(json::from_str("42 junk").is_err());
        assert!(json::from_str("\"unterminated").is_err());
    }
}
