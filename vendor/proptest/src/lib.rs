//! Offline stub for `proptest` 1.x.
//!
//! Implements real property-based testing — deterministic strategy
//! sampling, edge-case-biased integer generation, the `proptest!` macro,
//! `prop_assert*` — over the API surface this workspace uses. The one
//! deliberate omission versus the real crate is *shrinking*: a failing case
//! is reported with its case number (re-runnable, since generation is
//! deterministic per test name) but not minimized.

use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

pub mod test_runner {
    //! Run configuration and the per-test RNG.

    /// Error produced by a failing `prop_assert*`.
    #[derive(Debug, Clone)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        /// Wraps a failure message.
        pub fn new(msg: String) -> Self {
            TestCaseError(msg)
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    impl From<String> for TestCaseError {
        fn from(s: String) -> Self {
            TestCaseError(s)
        }
    }

    /// How many cases each property runs, configurable via
    /// `#![proptest_config(ProptestConfig::with_cases(n))]`.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 64 }
        }
    }

    /// The generator handed to strategies: the vendored `StdRng`.
    pub type TestRng = rand::rngs::StdRng;

    /// The RNG seed for one (test, case) pair. Failure reports print this
    /// value; [`rng_from_seed`] rebuilds the exact generator from it.
    pub fn seed_for(test_name: &str, case: u32) -> u64 {
        // FNV-1a over the test name, mixed with the case index.
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in test_name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h ^ (u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    /// Rebuilds the generator a failure report named, for reproduction.
    pub fn rng_from_seed(seed: u64) -> TestRng {
        use rand::SeedableRng;
        TestRng::seed_from_u64(seed)
    }

    /// Deterministic RNG for one (test, case) pair: same binary, same
    /// sequence — failures reproduce exactly.
    pub fn rng_for(test_name: &str, case: u32) -> TestRng {
        rng_from_seed(seed_for(test_name, case))
    }
}

use test_runner::TestRng;

pub mod strategy {
    //! The [`Strategy`] trait and combinators.
    use super::*;
    use rand::distributions::uniform::{SampleRange, SampleUniform};
    use rand::{Rng, RngCore};

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Filters generated values, retrying until `f` accepts one.
        fn prop_filter<F>(self, _whence: &'static str, f: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter { inner: self, f }
        }

        /// Builds recursive structures: `self` generates leaves and `f`
        /// lifts a strategy for depth-`k` values into one for depth-`k+1`.
        /// `levels` bounds the recursion depth; the remaining size hints
        /// are accepted for API compatibility.
        fn prop_recursive<F, S>(
            self,
            levels: u32,
            _desired_size: u32,
            _expected_branch: u32,
            f: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> S,
            S: Strategy<Value = Self::Value> + 'static,
        {
            let mut cur = self.boxed();
            for _ in 0..levels.max(1) {
                let leaf = cur.clone();
                let branch = f(cur).boxed();
                cur = BoxedStrategy::new(move |rng| {
                    // One third leaves keeps expected depth below `levels`
                    // while still exercising deep nests.
                    if rng.next_u64() % 3 == 0 {
                        leaf.sample(rng)
                    } else {
                        branch.sample(rng)
                    }
                });
            }
            cur
        }

        /// Type-erases the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy::new(move |rng| self.sample(rng))
        }
    }

    /// A cloneable, type-erased strategy.
    pub struct BoxedStrategy<T> {
        f: Rc<dyn Fn(&mut TestRng) -> T>,
    }

    impl<T> BoxedStrategy<T> {
        /// Wraps a sampling closure.
        pub fn new(f: impl Fn(&mut TestRng) -> T + 'static) -> Self {
            BoxedStrategy { f: Rc::new(f) }
        }
    }

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy { f: self.f.clone() }
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            (self.f)(rng)
        }
    }

    /// Always generates a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// See [`Strategy::prop_filter`].
    #[derive(Clone)]
    pub struct Filter<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F> Strategy for Filter<S, F>
    where
        S: Strategy,
        F: Fn(&S::Value) -> bool,
    {
        type Value = S::Value;
        fn sample(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..1_000 {
                let v = self.inner.sample(rng);
                if (self.f)(&v) {
                    return v;
                }
            }
            panic!("prop_filter rejected 1000 consecutive candidates");
        }
    }

    impl<T> Strategy for Range<T>
    where
        T: SampleUniform,
        Range<T>: Clone + SampleRange<T>,
    {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            rng.gen_range(self.clone())
        }
    }

    impl<T> Strategy for RangeInclusive<T>
    where
        T: SampleUniform,
        RangeInclusive<T>: Clone + SampleRange<T>,
    {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            rng.gen_range(self.clone())
        }
    }

    /// String patterns are strategies: a tiny regex subset supporting the
    /// workspace's fuzz patterns — a char class (`\PC` = any printable,
    /// `[a-z]`-free) with a `{lo,hi}` repetition suffix. Anything else
    /// falls back to printable soup of length 0..=64.
    impl Strategy for &'static str {
        type Value = String;
        fn sample(&self, rng: &mut TestRng) -> String {
            let (lo, hi) = parse_repeat(self).unwrap_or((0, 64));
            let len = if hi > lo { rng.gen_range(lo..=hi) } else { lo };
            (0..len).map(|_| printable_char(rng)).collect()
        }
    }

    fn parse_repeat(pat: &str) -> Option<(usize, usize)> {
        let open = pat.rfind('{')?;
        let body = pat[open + 1..].strip_suffix('}')?;
        let (lo, hi) = body.split_once(',')?;
        Some((lo.trim().parse().ok()?, hi.trim().parse().ok()?))
    }

    fn printable_char(rng: &mut TestRng) -> char {
        // Mostly ASCII printable, occasionally multibyte to stress UTF-8
        // handling (mirrors \PC matching any printable codepoint).
        match rng.next_u64() % 16 {
            0 => char::from_u32(0x00A1 + (rng.next_u64() % 0x500) as u32).unwrap_or('§'),
            _ => (0x20u8 + (rng.next_u64() % 95) as u8) as char,
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.sample(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
}

pub mod arbitrary {
    //! `any::<T>()` — the canonical strategy per type.
    use super::strategy::Strategy;
    use super::TestRng;
    use rand::RngCore;

    /// Types with a canonical full-range strategy.
    pub trait Arbitrary: Sized {
        /// Draws one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    // Bias toward boundary values, like the real crate.
                    match rng.next_u64() % 16 {
                        0 => 0,
                        1 => <$t>::MAX,
                        2 => <$t>::MIN,
                        3 => 1 as $t,
                        _ => rng.next_u64() as $t,
                    }
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            f64::from_bits(rng.next_u64())
        }
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }

    /// Strategy returned by [`any`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T>(std::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

pub mod collection {
    //! Collection strategies.
    use super::strategy::Strategy;
    use super::TestRng;
    use rand::Rng;
    use std::ops::Range;

    /// A length range for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            SizeRange {
                lo: r.start,
                hi_exclusive: r.end.max(r.start + 1),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_exclusive: n + 1,
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let len = rng.gen_range(self.size.lo..self.size.hi_exclusive);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod sample {
    //! Sampling from fixed candidate sets.
    use super::strategy::Strategy;
    use super::TestRng;
    use rand::Rng;

    /// Uniformly selects one of `options` (must be non-empty).
    pub fn select<T: Clone + 'static>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select() needs at least one option");
        Select { options }
    }

    /// See [`select`].
    #[derive(Debug, Clone)]
    pub struct Select<T> {
        options: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            self.options[rng.gen_range(0..self.options.len())].clone()
        }
    }
}

pub mod prelude {
    //! The glob-import surface: `use proptest::prelude::*;`.
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// Module-style access: `prop::collection::vec`, `prop::sample::select`.
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
    }
}

/// Asserts a condition inside a property, failing the case (not panicking)
/// so the runner can report the case number.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::new(
                format!($($fmt)*),
            ));
        }
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "assertion failed: {:?} == {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {:?} == {:?}: {}",
            l,
            r,
            format!($($fmt)*)
        );
    }};
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "assertion failed: {:?} != {:?}", l, r);
    }};
}

/// Declares property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `Config::cases` deterministic cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (@with_config ($cfg:expr)
        $($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::Config = $cfg;
                for case in 0..config.cases {
                    let __proptest_seed = $crate::test_runner::seed_for(
                        concat!(module_path!(), "::", stringify!($name)),
                        case,
                    );
                    let mut __proptest_rng =
                        $crate::test_runner::rng_from_seed(__proptest_seed);
                    $(
                        let $pat =
                            $crate::strategy::Strategy::sample(&($strat), &mut __proptest_rng);
                    )+
                    let result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    if let ::std::result::Result::Err(e) = result {
                        panic!(
                            "proptest {} failed at case {}/{} (RNG seed 0x{:016X}; \
                             rebuild inputs with test_runner::rng_from_seed): {}",
                            stringify!($name),
                            case,
                            config.cases,
                            __proptest_seed,
                            e
                        );
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::test_runner::Config::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(v in 10u64..20, f in 0.0f64..=1.0) {
            prop_assert!((10..20).contains(&v));
            prop_assert!((0.0..=1.0).contains(&f));
        }

        #[test]
        fn vec_lengths_respect_size(xs in prop::collection::vec(any::<u8>(), 2..5)) {
            prop_assert!(xs.len() >= 2 && xs.len() < 5);
        }

        #[test]
        fn select_only_returns_options(s in prop::sample::select(vec!["a", "b"])) {
            prop_assert!(s == "a" || s == "b");
        }

        #[test]
        fn maps_apply(n in (0u32..10).prop_map(|x| x * 2)) {
            prop_assert_eq!(n % 2, 0);
        }
    }

    #[derive(Debug, Clone)]
    enum Tree {
        #[allow(dead_code)] // payload only exercises prop_map plumbing
        Leaf(u32),
        Node(Box<Tree>, Box<Tree>),
    }

    fn depth(t: &Tree) -> u32 {
        match t {
            Tree::Leaf(_) => 0,
            Tree::Node(a, b) => 1 + depth(a).max(depth(b)),
        }
    }

    proptest! {
        #[test]
        fn recursive_strategies_bound_depth(
            t in (0u32..100).prop_map(Tree::Leaf).prop_recursive(4, 16, 2, |inner| {
                (inner.clone(), inner).prop_map(|(a, b)| Tree::Node(Box::new(a), Box::new(b)))
            })
        ) {
            prop_assert!(depth(&t) <= 4);
        }
    }

    #[test]
    fn string_patterns_honor_repetition() {
        let mut rng = crate::test_runner::rng_for("string_patterns", 0);
        for _ in 0..100 {
            let s = Strategy::sample(&"\\PC{0,30}", &mut rng);
            assert!(s.chars().count() <= 30);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let mut a = crate::test_runner::rng_for("x", 3);
        let mut b = crate::test_runner::rng_for("x", 3);
        let s = prop::collection::vec(any::<u64>(), 0..8);
        for _ in 0..50 {
            assert_eq!(Strategy::sample(&s, &mut a), Strategy::sample(&s, &mut b));
        }
    }
}
