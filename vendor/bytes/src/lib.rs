//! Offline stub for `bytes`: [`BytesMut`] plus the [`BufMut`] writer
//! methods the workspace's packet builders use. Network-order (`put_u16`
//! etc.) writes are big-endian, `_le` variants little-endian, exactly as in
//! the real crate.

use std::ops::{Deref, DerefMut};

/// A growable, contiguous byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        BytesMut { buf: Vec::new() }
    }

    /// Creates an empty buffer with room for `cap` bytes.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consumes the buffer, returning the underlying vector.
    pub fn into_vec(self) -> Vec<u8> {
        self.buf
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.buf
    }
}

/// Sequential big-/little-endian writes into a byte sink.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }
    /// Appends a big-endian `u16`.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }
    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }
    /// Appends a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
    /// Appends a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }
    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }
    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.buf.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn endianness_matches_the_real_crate() {
        let mut b = BytesMut::with_capacity(16);
        b.put_u16(0x0800);
        b.put_u16_le(0x0800);
        b.put_u8(0xFF);
        assert_eq!(&b[..], &[0x08, 0x00, 0x00, 0x08, 0xFF]);
    }

    #[test]
    fn to_vec_via_deref() {
        let mut b = BytesMut::new();
        b.put_slice(&[1, 2, 3]);
        assert_eq!(b.to_vec(), vec![1, 2, 3]);
        assert_eq!(b.len(), 3);
    }
}
