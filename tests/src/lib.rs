//! Integration-test host crate; the cross-crate tests live in `tests/`.
//!
//! * `workflow.rs` — the §3.1 pipeline end to end, eBPF/native
//!   decision equivalence, live policy updates, hook portability.
//! * `isolation.rs` — §3.5/§4.3 multi-tenancy guarantees.
//! * `figures.rs` — reduced-scale assertions of each figure's ordering
//!   claims.
//! * `ebpf_end_to_end.rs` — bit-identical simulations under bytecode vs
//!   native policy deployment.
//! * `properties.rs`, `lang_differential.rs`, `robustness.rs` —
//!   property-based and differential suites.

#![forbid(unsafe_code)]
