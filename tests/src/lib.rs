//! Integration-test host crate; the cross-crate tests live in `tests/`.
//!
//! * `workflow.rs` — the §3.1 pipeline end to end, eBPF/native
//!   decision equivalence, live policy updates, hook portability.
//! * `isolation.rs` — §3.5/§4.3 multi-tenancy guarantees.
//! * `figures.rs` — reduced-scale assertions of each figure's ordering
//!   claims.
//! * `ebpf_end_to_end.rs` — bit-identical simulations under bytecode vs
//!   native policy deployment.
//! * `properties.rs`, `lang_differential.rs`, `robustness.rs` —
//!   property-based and differential suites.
//! * `verifier_rejections.rs`, `map_edge_cases.rs`,
//!   `examples_smoke.rs` — structured verifier errors, map limits, and
//!   example-program smoke coverage.
//!
//! The crate itself exports one thing: [`SeedGuard`], the shared
//! seed-on-failure reporter every randomized test holds so a red run
//! always names the seed that reproduces it (proptest-based suites get
//! the same treatment from the `proptest!` macro directly).

#![forbid(unsafe_code)]

/// Prints the reproducing RNG seed if the enclosing test panics.
///
/// Randomized tests create one guard per seeded run; it is silent on
/// success, and on failure the seed lands on stderr next to the panic so
/// the exact run can be replayed:
///
/// ```
/// let _guard = syrup_integration::SeedGuard::new("my_test", 42);
/// // ... assertions driven by an RNG seeded with 42 ...
/// ```
pub struct SeedGuard {
    test: &'static str,
    seed: u64,
}

impl SeedGuard {
    /// Arms a guard for one seeded run of `test`.
    pub fn new(test: &'static str, seed: u64) -> Self {
        SeedGuard { test, seed }
    }
}

impl Drop for SeedGuard {
    fn drop(&mut self) {
        if std::thread::panicking() {
            eprintln!(
                "[syrup-integration] {} failed — reproduce with RNG seed 0x{:016X} ({})",
                self.test, self.seed, self.seed
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn guard_is_silent_on_success() {
        let _guard = SeedGuard::new("guard_is_silent_on_success", 7);
    }

    #[test]
    fn guard_reports_on_panic() {
        // The message goes to stderr (not capturable here), but the panic
        // must propagate unchanged through the guard's drop.
        let result = std::panic::catch_unwind(|| {
            let _guard = SeedGuard::new("guard_reports_on_panic", 9);
            panic!("boom");
        });
        assert!(result.is_err());
    }
}
