//! Cross-crate integration tests for the `syrup-scope` observability
//! pipeline: snapshot-delta algebra under concurrent writers, sharded
//! scale runs feeding per-shard series, and the anomaly → blackbox
//! postmortem path.

use syrup::blackbox::{EventKind, Layer, Recorder};
use syrup::scope::{ingest_windows, AnomalyCfg, AnomalyEngine, Sampler, Scope};
use syrup::sim::scale::{ScaleCfg, ScaleEngine};
use syrup::telemetry::{Registry, Snapshot};

/// `Snapshot::delta` / `SnapshotDelta::apply` must be safe and coherent
/// while shard threads hammer the registry: snapshots taken mid-flight
/// never panic, deltas compose telescopically, and applying a delta to
/// its base reproduces the later snapshot exactly.
#[test]
fn snapshot_delta_composes_under_concurrent_writers() {
    let registry = Registry::new();
    let shards = 4;
    let per_shard_incs = 5_000u64;
    let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));

    std::thread::scope(|s| {
        for shard in 0..shards {
            let registry = &registry;
            s.spawn(move || {
                // Every shard writes the shared counters plus a counter,
                // gauge, and histogram of its own.
                let shared = registry.counter("scope/shared_events");
                let own = registry.counter(&format!("scope/shard{shard}_events"));
                let gauge = registry.gauge(&format!("scope/shard{shard}_depth"));
                let hist = registry.histogram(&format!("scope/shard{shard}_ns"));
                for i in 0..per_shard_incs {
                    shared.add(1);
                    own.add(2);
                    gauge.set(i as i64);
                    hist.record(i);
                }
            });
        }
        // A reader thread takes snapshot chains mid-flight: every
        // adjacent delta must apply back exactly, and composing two
        // adjacent deltas must telescope to the wide one.
        let registry = &registry;
        let reader_stop = stop.clone();
        let reader = s.spawn(move || {
            let stop = reader_stop;
            let mut chains = 0u64;
            while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                let a = registry.snapshot();
                let b = registry.snapshot();
                let c = registry.snapshot();
                assert_eq!(b.delta(&a).apply(&a), b, "delta(a,b) ∘ a != b");
                assert_eq!(c.delta(&b).apply(&b), c, "delta(b,c) ∘ b != c");
                // Telescoping: applying the two short deltas in sequence
                // lands on the same snapshot as the wide delta.
                assert_eq!(
                    c.delta(&b).apply(&b.delta(&a).apply(&a)),
                    c.delta(&a).apply(&a)
                );
                chains += 1;
            }
            chains
        });
        s.spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(50));
            stop.store(true, std::sync::atomic::Ordering::Relaxed);
        });
        assert!(reader.join().unwrap() > 0, "reader never completed a chain");
    });

    // Quiescent totals reconcile: no increment was lost or duplicated.
    let end = registry.snapshot();
    assert_eq!(end.counter("scope/shared_events"), shards * per_shard_incs);
    for shard in 0..shards {
        assert_eq!(
            end.counter(&format!("scope/shard{shard}_events")),
            2 * per_shard_incs
        );
    }
    let whole = end.delta(&Snapshot::default());
    assert_eq!(whole.apply(&Snapshot::default()), end);
}

/// A sampler driven from concurrent shard threads' registry writes keeps
/// producing coherent series: counter series are increments (sum equals
/// the final counter value), timestamps are monotonic.
#[test]
fn sampler_over_concurrent_writers_accounts_every_increment() {
    let registry = Registry::new();
    let scope = Scope::new();
    let mut sampler = Sampler::new(scope.clone(), "", 1_000);
    let writers = 4;
    let per_writer = 10_000u64;

    std::thread::scope(|s| {
        let done = std::sync::Arc::new(std::sync::atomic::AtomicU32::new(0));
        for _ in 0..writers {
            let registry = &registry;
            let done = done.clone();
            s.spawn(move || {
                let c = registry.counter("scope/ticks");
                for _ in 0..per_writer {
                    c.add(1);
                }
                done.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            });
        }
        let mut now = 0u64;
        while done.load(std::sync::atomic::Ordering::Relaxed) < writers {
            now += 1_000;
            sampler.tick(now, &registry);
        }
        // One final due tick so the tail increments land in the series.
        sampler.tick(now + 1_000, &registry);
    });

    let series = scope.get("scope/ticks").expect("sampler built the series");
    let total: f64 = series.points.iter().map(|p| p.value).sum();
    assert_eq!(total as u64, writers as u64 * per_writer);
    for pair in series.points.windows(2) {
        assert!(pair[0].at_ns <= pair[1].at_ns);
    }
}

/// The acceptance scenario: a sharded scale run (≥10⁵ flows via the
/// `SYRUP_SCALE`-independent event count; shards {2, 8}) produces
/// populated per-shard series for throughput, barrier-wait, and mailbox
/// traffic.
#[test]
fn sharded_scale_run_populates_per_shard_series() {
    for shards in [2usize, 8] {
        let mut cfg = ScaleCfg::new(2_000, shards, 3);
        cfg.measure = syrup::sim::Duration::from_millis(4);
        cfg.record_windows = true;
        let result = syrup::sim::scale::run(&cfg, ScaleEngine::Wheel);
        // Rings sized above the window count, so no point is evicted and
        // the series sums reconcile exactly with the run totals.
        let scope = Scope::with_capacity(16_384);
        let summary = ingest_windows(&scope, &result.per_shard_windows);
        assert!(summary.windows > 0, "shards={shards}: no windows recorded");
        assert_eq!(summary.events, result.events, "shards={shards}");

        for k in 0..shards {
            // ≥3 populated series per shard: throughput, barrier wait,
            // mailbox traffic (plus occupancy).
            for series in ["events", "barrier_wait_ns", "mailbox_out", "mailbox_in"] {
                let name = format!("shard{k}/{series}");
                let s = scope.get(&name).unwrap_or_else(|| panic!("missing {name}"));
                assert!(!s.points.is_empty(), "{name} is empty");
                assert_eq!(s.dropped, 0, "{name} evicted points");
            }
            let events: f64 = scope
                .get(&format!("shard{k}/events"))
                .unwrap()
                .points
                .iter()
                .map(|p| p.value)
                .sum();
            assert_eq!(events as u64, result.per_shard_events[k], "shards={shards}");
        }
        // Cross-shard traffic exists and balances.
        assert!(
            summary.mailbox_out > 0,
            "shards={shards}: no mailbox traffic"
        );
        assert_eq!(summary.mailbox_out, summary.mailbox_in);
        assert!(scope.get("imbalance/gini").is_some());
    }
}

/// An injected counter spike raises exactly one structured anomaly event,
/// and that event freezes the blackbox with `anomaly` as its own cause —
/// the postmortem explains itself.
#[test]
fn injected_spike_fires_one_anomaly_and_freezes_blackbox() {
    let registry = Registry::new();
    let counter = registry.counter("app/requests");
    let scope = Scope::new();
    let mut sampler = Sampler::new(scope.clone(), "", 1_000);
    let recorder = Recorder::new();
    let mut engine = AnomalyEngine::new(AnomalyCfg::default());
    engine.attach_blackbox(&recorder);

    let mut events = Vec::new();
    for tick in 1..=40u64 {
        // Steady 10/tick baseline with one 40× spike at tick 30.
        counter.add(if tick == 30 { 400 } else { 10 });
        let now = tick * 1_000;
        if let Some(delta) = sampler.tick(now, &registry) {
            events.extend(engine.observe_delta(now, &delta));
        }
    }

    assert_eq!(events.len(), 1, "expected exactly one anomaly: {events:?}");
    assert_eq!(events[0].series, "app/requests");
    assert_eq!(events[0].at_ns, 30_000);
    assert!(events[0].z.abs() >= AnomalyCfg::default().z_threshold);

    assert!(recorder.frozen(), "anomaly did not freeze the rings");
    let pm = recorder.capture();
    let trigger = pm.trigger.expect("frozen rings carry a trigger");
    assert_eq!(trigger.cause.as_str(), "anomaly");
    // The frozen window contains the anomaly event itself.
    let slo_events = recorder.events(Layer::Slo);
    assert!(
        slo_events
            .iter()
            .any(|e| e.kind == EventKind::Anomaly && e.at_ns == 30_000),
        "postmortem window misses its own cause: {slo_events:?}"
    );
}

/// The OpenMetrics exposition of a real quickstart snapshot passes the
/// line-format checker and keeps its stable schema markers.
#[test]
fn openmetrics_exposition_parses_and_is_stable() {
    let tracer = syrup::trace::Tracer::disabled();
    let q = syrup::apps::quickstart::run_default(&tracer);
    let text = syrup::scope::openmetrics(&q.syrupd.telemetry_snapshot());
    let samples = syrup::scope::check_exposition(&text).expect("exposition parses");
    assert!(samples > 10, "only {samples} samples");
    assert!(text.ends_with("# EOF\n"));
    // Stable schema spot checks: counter totals and histogram summaries.
    assert!(text.contains("syrup_app1_socket_select_invocations_total 64"));
    assert!(text.contains("quantile=\"0.99\""));
    assert!(text.contains("# TYPE syrup_vm_run_cycles summary"));
}
