//! Sharded replay determinism across the real scenarios.
//!
//! The `ShardedQueue` facade promises that shard count is a *layout*
//! choice, not a *semantic* one: the merge pops events in global
//! `(time, seq)` order no matter how pushes were routed, so any world
//! driven through it must produce byte-identical results at 1, 2, or 8
//! shards. These tests pin that promise on the two end-to-end worlds —
//! the quickstart pipeline and the Figure 8 multithreading world — and
//! on the million-flow scale world, each across several seeds.

use syrup::apps::mt_world::{self, MtConfig, SchedKind};
use syrup::apps::quickstart;
use syrup::apps::server_world::SocketPolicyKind;
use syrup::sim::{Duration, ScaleCfg, ScaleEngine};

const SHARD_COUNTS: [usize; 3] = [1, 2, 8];

/// A fast Figure 8 configuration: same shape as the paper setup, short
/// enough to run nine times (3 shard counts x 3 seeds) in a debug test.
fn mt_cfg(seed: u64, shards: usize) -> MtConfig {
    let mut cfg = MtConfig::fig8(SocketPolicyKind::ScanAvoid, SchedKind::Ghost, 5_000.0, seed);
    cfg.warmup = Duration::from_millis(20);
    cfg.measure = Duration::from_millis(120);
    cfg.shards = shards;
    cfg
}

#[test]
fn mt_world_is_shard_count_invariant_across_seeds() {
    for seed in [3u64, 17, 251] {
        let base = mt_world::run(&mt_cfg(seed, 1));
        for shards in &SHARD_COUNTS[1..] {
            let r = mt_world::run(&mt_cfg(seed, *shards));
            assert_eq!(r.completed, base.completed, "seed {seed} shards {shards}");
            assert_eq!(r.dropped, base.dropped, "seed {seed} shards {shards}");
            assert_eq!(
                r.preemptions, base.preemptions,
                "seed {seed} shards {shards}"
            );
            // Full per-request latency sample vectors, byte for byte —
            // not just summary percentiles.
            assert_eq!(
                r.get.samples(),
                base.get.samples(),
                "seed {seed} shards {shards}: GET samples diverged"
            );
            assert_eq!(
                r.scan.samples(),
                base.scan.samples(),
                "seed {seed} shards {shards}: SCAN samples diverged"
            );
        }
    }
}

#[test]
fn quickstart_is_shard_count_invariant() {
    // The quickstart seed is fixed inside the scenario; vary the request
    // count instead to exercise several schedule lengths.
    for requests in [16usize, 64, 96] {
        let tracer = syrup::trace::Tracer::new();
        let base = quickstart::run_sharded(&tracer, requests, 1);
        for shards in &SHARD_COUNTS[1..] {
            let tracer = syrup::trace::Tracer::new();
            let q = quickstart::run_sharded(&tracer, requests, *shards);
            assert_eq!(q.completed, base.completed, "requests {requests}");
            // Every span the tracer captured, in order.
            assert_eq!(
                q.records, base.records,
                "requests {requests} shards {shards}: span records diverged"
            );
            // Daemon telemetry, minus the wheel-internal motion metrics
            // that legitimately depend on how entries spread over wheels
            // (cascade count, instantaneous depth).
            let strip = |q: &quickstart::Quickstart| {
                let mut s = q.syrupd.telemetry_snapshot();
                s.counters.remove("sim/wheel_cascades");
                s.gauges.remove("sim/wheel_depth");
                s
            };
            assert_eq!(
                strip(&q),
                strip(&base),
                "requests {requests} shards {shards}: telemetry diverged"
            );
        }
    }
}

#[test]
fn scale_world_is_shard_count_invariant_across_seeds() {
    for seed in [1u64, 9, 42] {
        let mut base_cfg = ScaleCfg::new(2_000, 1, seed);
        base_cfg.warmup = Duration::from_millis(2);
        base_cfg.measure = Duration::from_millis(8);
        let base = syrup::sim::scale::run(&base_cfg, ScaleEngine::Wheel);
        for shards in &SHARD_COUNTS[1..] {
            let mut cfg = ScaleCfg::new(2_000, *shards, seed);
            cfg.warmup = Duration::from_millis(2);
            cfg.measure = Duration::from_millis(8);
            let r = syrup::sim::scale::run(&cfg, ScaleEngine::Wheel);
            assert_eq!(
                r.fingerprint(),
                base.fingerprint(),
                "seed {seed} shards {shards}: scale fingerprint diverged"
            );
        }
    }
}
