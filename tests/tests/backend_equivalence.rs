//! Both-backend equivalence over the checked-in paper policies and the
//! quickstart scenario: the fast pre-decoded backend must be observably
//! identical to the reference interpreter — same outcomes (including
//! modelled cycle totals), same packet bytes, same final map state, and
//! for the end-to-end quickstart the same completions and span records.

use syrup::ebpf::cycles::CycleModel;
use syrup::ebpf::maps::{MapEntries, MapId, MapRegistry};
use syrup::ebpf::vm::{Backend, PacketCtx, RunEnv, Vm};
use syrup::policies::corpus;

/// Serializes the tests that flip the `SYRUP_BACKEND` env var — they
/// run on separate threads within this binary otherwise.
static ENV_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

/// Deterministic packet stream shared by both sides: xorshift64* bytes,
/// lengths cycling through the interesting small sizes.
fn packets() -> Vec<Vec<u8>> {
    let mut state: u64 = 0x5EED_CAFE_F00D_1234;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state.wrapping_mul(0x2545_F491_4F6C_DD1D)
    };
    let lens = [0usize, 1, 7, 8, 16, 33, 64, 128];
    (0..32)
        .map(|i| {
            let len = lens[i % lens.len()];
            (0..len).map(|_| next() as u8).collect()
        })
        .collect()
}

fn run_env(i: u64) -> RunEnv {
    RunEnv {
        now_ns: 1_000 + i * 137,
        cpu_id: (i % 4) as u32,
        prandom_state: 0x9E37_79B9 ^ i,
        ..RunEnv::default()
    }
}

/// Dumps every data map in a registry as `(map, entries)` pairs;
/// prog-arrays (which hold programs, not data) are skipped.
fn map_state(maps: &MapRegistry) -> Vec<(u32, MapEntries)> {
    (0..maps.len() as u32)
        .filter_map(|i| {
            let map = maps.get(MapId(i))?;
            map.entries().ok().map(|entries| (i, entries))
        })
        .collect()
}

/// Every paper policy from the corpus, compiled fresh per backend into
/// identically-built worlds, driven with the same deterministic packet
/// stream: full outcome, packet-byte, and whole-map-state equality.
#[test]
fn corpus_policies_agree_across_backends() {
    for entry in corpus() {
        let build = || {
            let maps = MapRegistry::new();
            let compiled = syrup::lang::compile(entry.source, &entry.opts, &maps)
                .unwrap_or_else(|e| panic!("{} failed to compile: {e}", entry.name));
            let mut vm = Vm::new(maps.clone());
            let slot = vm.load_unverified(compiled.program);
            (vm, slot, maps)
        };
        let (interp, islot, imaps) = build();
        let (mut fast, fslot, fmaps) = build();
        fast.set_backend(Backend::Fast);
        assert_eq!(fast.backend(), Backend::Fast);

        for (i, packet) in packets().into_iter().enumerate() {
            let mut pkt_i = packet.clone();
            let mut pkt_f = packet;
            let mut env_i = run_env(i as u64);
            let mut env_f = run_env(i as u64);
            let out_i = {
                let mut ctx = PacketCtx::new(&mut pkt_i);
                interp.run(islot, &mut ctx, &mut env_i)
            };
            let out_f = {
                let mut ctx = PacketCtx::new(&mut pkt_f);
                fast.run(fslot, &mut ctx, &mut env_f)
            };
            assert_eq!(
                out_i, out_f,
                "{}: outcome diverged on packet {i}",
                entry.name
            );
            assert_eq!(
                pkt_i, pkt_f,
                "{}: packet bytes diverged on packet {i}",
                entry.name
            );
            assert_eq!(
                env_i.prandom_state, env_f.prandom_state,
                "{}: prandom stream diverged on packet {i}",
                entry.name
            );
        }
        assert_eq!(
            map_state(&imaps),
            map_state(&fmaps),
            "{}: final map state diverged",
            entry.name
        );
    }
}

/// Pre-decoding is lossless on every corpus policy: re-encoding the
/// decoded stream reproduces the compiler's output exactly.
#[test]
fn corpus_policies_decode_reencode_round_trip() {
    for entry in corpus() {
        let maps = MapRegistry::new();
        let compiled = syrup::lang::compile(entry.source, &entry.opts, &maps)
            .unwrap_or_else(|e| panic!("{} failed to compile: {e}", entry.name));
        let decoded = syrup::ebpf::decode(&compiled.program, &CycleModel::default(), &maps);
        assert_eq!(
            decoded.reencode(),
            compiled.program.insns,
            "{}: decode/reencode not lossless",
            entry.name
        );
    }
}

/// The full quickstart scenario — NIC rings, XDP eBPF policy, reuseport
/// group, worker threads — produces byte-identical traces under either
/// backend. Runs both variants sequentially inside one test so the
/// `SYRUP_BACKEND` env var (read once at daemon construction) cannot
/// race with itself.
#[test]
fn quickstart_scenario_identical_across_backends() {
    let _guard = ENV_LOCK.lock().unwrap();
    let run_with = |backend: &str| {
        std::env::set_var("SYRUP_BACKEND", backend);
        let tracer = syrup::trace::Tracer::new();
        let out = syrup::apps::quickstart::run_scenario(
            &tracer,
            &syrup::profile::Profiler::disabled(),
            48,
            false,
        );
        std::env::remove_var("SYRUP_BACKEND");
        out
    };
    let interp = run_with("interp");
    let fast = run_with("fast");
    assert_eq!(interp.syrupd.backend(), Backend::Interp);
    assert_eq!(fast.syrupd.backend(), Backend::Fast);
    assert_eq!(interp.completed, fast.completed, "completions diverged");
    assert_eq!(
        interp.records, fast.records,
        "span records diverged between backends"
    );
    assert_eq!(
        interp.timelines.len(),
        fast.timelines.len(),
        "timeline count diverged"
    );
}

/// Same check for the ranked variant, which routes through the PIFO
/// reuseport group and the ranked-SRPT eBPF policy (64-bit
/// `(rank, executor)` verdict encoding on the fast path).
#[test]
fn ranked_quickstart_identical_across_backends() {
    let _guard = ENV_LOCK.lock().unwrap();
    let run_with = |backend: &str| {
        std::env::set_var("SYRUP_BACKEND", backend);
        let tracer = syrup::trace::Tracer::new();
        let out = syrup::apps::quickstart::run_scenario(
            &tracer,
            &syrup::profile::Profiler::disabled(),
            48,
            true,
        );
        std::env::remove_var("SYRUP_BACKEND");
        out
    };
    let interp = run_with("interp");
    let fast = run_with("fast");
    assert_eq!(interp.completed, fast.completed, "completions diverged");
    assert_eq!(
        interp.records, fast.records,
        "span records diverged between backends"
    );
}
