//! Multi-tenancy and isolation guarantees (§3.5, §4.3).

use syrup::core::{
    CompileOptions, Decision, Hook, HookMeta, MapDef, PolicySource, SyrupMaps, Syrupd,
};

fn meta(port: u16) -> HookMeta {
    HookMeta {
        dst_port: port,
        ..HookMeta::default()
    }
}

/// A policy that counts its invocations in a map; deployed for three
/// co-located apps, each must see exactly its own traffic.
const COUNTING_POLICY: &str = "
    SYRUP_MAP(hits, ARRAY, 1);
    uint32_t schedule(void *pkt_start, void *pkt_end) {
        uint32_t zero = 0;
        uint64_t *count = syr_map_lookup_elem(&hits, &zero);
        if (!count)
            return PASS;
        __sync_fetch_and_add(count, 1);
        return 0;
    }
";

#[test]
fn each_policy_sees_only_its_own_traffic() {
    let daemon = Syrupd::new();
    let mut apps = Vec::new();
    for (name, port) in [("a", 1000u16), ("b", 2000), ("c", 3000)] {
        let (app, maps) = daemon.register_app(name, &[port]).unwrap();
        let handle = daemon
            .deploy(
                app,
                Hook::SocketSelect,
                PolicySource::C {
                    source: COUNTING_POLICY.to_string(),
                    options: CompileOptions::new(),
                },
            )
            .unwrap();
        let hits = maps.open(&handle.pinned_maps["hits"]).unwrap();
        apps.push((port, hits));
    }

    // Interleave traffic: 5 packets to a, 3 to b, 7 to c, 2 to nobody.
    let mut pkt = vec![0u8; 64];
    let plan: &[(u16, usize)] = &[(1000, 5), (2000, 3), (3000, 7), (4455, 2)];
    for &(port, count) in plan {
        for _ in 0..count {
            daemon.schedule(Hook::SocketSelect, &mut pkt, &meta(port));
        }
    }

    assert_eq!(apps[0].1.lookup_u64(0).unwrap(), Some(5));
    assert_eq!(apps[1].1.lookup_u64(0).unwrap(), Some(3));
    assert_eq!(apps[2].1.lookup_u64(0).unwrap(), Some(7));
}

/// A buggy (trapping) policy affects only its own application; the other
/// tenant's policy keeps working (§3.2's reliability argument).
#[test]
fn buggy_policy_only_hurts_its_owner() {
    let daemon = Syrupd::new();

    // The "buggy" app deploys a native policy that panics on a poisoned
    // decision path — modelled here by an eBPF program that loops forever,
    // which the verifier refuses, so deploy a decision-failing native one.
    let (victim, _) = daemon.register_app("victim", &[5000]).unwrap();
    daemon
        .deploy(
            victim,
            Hook::SocketSelect,
            PolicySource::Native(Box::new(|_pkt: &mut [u8], _m: &HookMeta| {
                // A policy gone wrong: always drops everything it owns.
                Decision::Drop
            })),
        )
        .unwrap();

    let (healthy, _) = daemon.register_app("healthy", &[6000]).unwrap();
    daemon
        .deploy(
            healthy,
            Hook::SocketSelect,
            PolicySource::C {
                source: "uint32_t schedule(void *a, void *b) { return 1; }".into(),
                options: CompileOptions::new(),
            },
        )
        .unwrap();

    let mut pkt = vec![0u8; 32];
    assert_eq!(
        daemon.schedule(Hook::SocketSelect, &mut pkt, &meta(5000)).1,
        Decision::Drop,
        "victim's own traffic suffers"
    );
    assert_eq!(
        daemon.schedule(Hook::SocketSelect, &mut pkt, &meta(6000)).1,
        Decision::Executor(1),
        "the healthy app is untouched"
    );
}

/// Map namespace permissions: same-user programs share, others are denied.
#[test]
fn map_namespace_prefix_permissions() {
    let daemon = Syrupd::new();
    let (app1, maps1) = daemon.register_app("one", &[7001]).unwrap();
    let (_app2, maps2) = daemon.register_app("two", &[7002]).unwrap();

    let m = maps1.create_pinned("shared", MapDef::u64_array(2)).unwrap();
    m.update_u64(0, 42).unwrap();

    // A second view for the same app (another process of the same user)
    // can open and read it.
    let maps1b = SyrupMaps::new(app1, daemon.registry().clone());
    let shared = maps1b.open("/syrup/1/shared").unwrap();
    assert_eq!(shared.lookup_u64(0).unwrap(), Some(42));

    // The other tenant is denied.
    assert!(maps2.open("/syrup/1/shared").is_err());
}

/// Port ownership is exclusive across applications.
#[test]
fn port_ownership_is_exclusive() {
    let daemon = Syrupd::new();
    daemon.register_app("first", &[8080, 8081]).unwrap();
    assert!(daemon.register_app("second", &[8081]).is_err());
    assert!(daemon.register_app("third", &[8082]).is_ok());
}

/// Verifier gate: a policy that could read out of bounds never loads, no
/// matter how it is wrapped.
#[test]
fn unverifiable_policies_never_load() {
    let daemon = Syrupd::new();
    let (app, _) = daemon.register_app("evil", &[9000]).unwrap();
    let attempts = [
        // Unchecked packet read.
        "uint32_t schedule(void *pkt_start, void *pkt_end) {
             return *(uint32_t *)(pkt_start + 0);
         }",
        // Map value deref without null check is rejected by the verifier.
        "SYRUP_MAP(m, HASH, 4);
         uint32_t schedule(void *pkt_start, void *pkt_end) {
             uint32_t k = 0;
             uint64_t *v = syr_map_lookup_elem(&m, &k);
             return *v;
         }",
    ];
    for source in attempts {
        let err = daemon
            .deploy(
                app,
                Hook::SocketSelect,
                PolicySource::C {
                    source: source.to_string(),
                    options: CompileOptions::new(),
                },
            )
            .unwrap_err();
        assert!(
            matches!(err, syrup::core::DeployError::Verify(_)),
            "expected verifier rejection, got {err}"
        );
    }
}
