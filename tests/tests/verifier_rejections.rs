//! One test per verifier rejection class, asserting the *structured*
//! error variant — not just "rejected" — so diagnostics stay stable for
//! tooling (the fuzzer's determinism oracle compares these values across
//! runs).

use syrup::ebpf::maps::{MapDef, MapRegistry};
use syrup::ebpf::verifier::VerifierError;
use syrup::ebpf::{verify, Asm, HelperId, Reg};

fn maps() -> MapRegistry {
    MapRegistry::new()
}

/// A loop whose state never changes: the verifier detects the revisit and
/// rejects as `TooComplex` without burning the whole analysis budget.
#[test]
fn unbounded_loop_is_too_complex() {
    let prog = Asm::new()
        .mov64_imm(Reg::R0, 0)
        .label("spin")
        .jmp("spin")
        .exit()
        .build("spin")
        .unwrap();
    assert_eq!(verify(&prog, &maps()), Err(VerifierError::TooComplex));
}

/// A loop whose trip count depends on a runtime value the analysis
/// cannot bound: the verifier gives up with the same structured
/// `TooComplex` its instruction budget produces.
#[test]
fn value_dependent_loop_exceeds_analysis_budget() {
    let prog = Asm::new()
        .call(HelperId::GetPrandomU32)
        .label("top")
        .add64_imm(Reg::R0, 1)
        .jlt_imm(Reg::R0, 1_000_000, "top")
        .exit()
        .build("unbounded-count")
        .unwrap();
    assert_eq!(verify(&prog, &maps()), Err(VerifierError::TooComplex));
}

/// Packet access without a dominating `data_end` comparison names the
/// faulting instruction and the byte it could not prove available.
#[test]
fn missing_data_end_check_is_structured() {
    let prog = Asm::new()
        .ldx_dw(Reg::R6, Reg::R1, 0) // data
        .ldx_w(Reg::R0, Reg::R6, 4) // unchecked 4-byte read at offset 4
        .exit()
        .build("nocheck")
        .unwrap();
    match verify(&prog, &maps()) {
        Err(VerifierError::PacketBoundsNotProven { pc, needed }) => {
            assert_eq!(pc, 1);
            assert_eq!(needed, 8, "4-byte read at offset 4 needs byte 8");
        }
        other => panic!("expected PacketBoundsNotProven, got {other:?}"),
    }
}

/// Dereferencing a map lookup result before comparing it to NULL.
#[test]
fn map_value_deref_without_null_check_is_structured() {
    let maps = maps();
    let map = maps.create(MapDef::u64_array(4));
    let prog = Asm::new()
        .st_w(Reg::R10, -8, 0) // key = 0
        .load_map_fd(Reg::R1, map)
        .mov64_reg(Reg::R2, Reg::R10)
        .add64_imm(Reg::R2, -8)
        .call(HelperId::MapLookupElem)
        .ldx_dw(Reg::R0, Reg::R0, 0) // no null check first
        .exit()
        .build("nullderef")
        .unwrap();
    match verify(&prog, &maps) {
        Err(VerifierError::PossiblyNullDeref { pc }) => assert_eq!(pc, 5),
        other => panic!("expected PossiblyNullDeref, got {other:?}"),
    }
}

/// Stack access outside the 512-byte frame reports the faulting offset.
#[test]
fn stack_out_of_bounds_is_structured() {
    let prog = Asm::new()
        .mov64_imm(Reg::R0, 1)
        .stx_dw(Reg::R10, -520, Reg::R0)
        .exit()
        .build("oob")
        .unwrap();
    match verify(&prog, &maps()) {
        Err(VerifierError::StackOutOfBounds { pc, off }) => {
            assert_eq!(pc, 1);
            // Frame offsets are relative to the frame base (r10 - 512), so
            // `r10 - 520` lands 8 bytes below it.
            assert_eq!(off, -8);
        }
        other => panic!("expected StackOutOfBounds, got {other:?}"),
    }
}

/// Rejections are deterministic: re-verifying the same program yields the
/// same structured error (the fuzzer's third oracle, pinned as a unit
/// test).
#[test]
fn rejections_are_deterministic() {
    let prog = Asm::new()
        .ldx_dw(Reg::R6, Reg::R1, 0)
        .ldx_b(Reg::R0, Reg::R6, 0)
        .exit()
        .build("det")
        .unwrap();
    let maps = maps();
    let first = verify(&prog, &maps);
    let second = verify(&prog, &maps);
    assert_eq!(first, second);
    assert!(matches!(
        first,
        Err(VerifierError::PacketBoundsNotProven { .. })
    ));
}
