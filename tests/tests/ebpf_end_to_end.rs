//! Full-pipeline ablation: the experiment worlds driven by *compiled,
//! verified eBPF bytecode* per packet instead of the native fast path.
//!
//! For the deterministic policies (round robin, SITA, token-based) the
//! eBPF and native deployments must produce bit-identical simulations —
//! same completions, same drops, same p99 — because every decision
//! matches. SCAN-Avoid draws randomness from different streams, so there
//! the assertion is the qualitative Figure 6 one.

use syrup::apps::server_world::{self, ServerConfig, SocketPolicyKind};
use syrup::sim::Duration;

fn run(
    policy: SocketPolicyKind,
    use_ebpf: bool,
    load: f64,
    get_frac: f64,
) -> server_world::ServerResult {
    let mut cfg = ServerConfig::fig2(policy, load, 77);
    cfg.get_fraction = get_frac;
    cfg.use_ebpf = use_ebpf;
    cfg.warmup = Duration::from_millis(10);
    cfg.measure = Duration::from_millis(60);
    server_world::run(&cfg)
}

#[test]
fn round_robin_ebpf_simulation_is_bit_identical_to_native() {
    let native = run(SocketPolicyKind::RoundRobin, false, 200_000.0, 0.995);
    let ebpf = run(SocketPolicyKind::RoundRobin, true, 200_000.0, 0.995);
    assert_eq!(native.overall.completed, ebpf.overall.completed);
    assert_eq!(native.overall.dropped, ebpf.overall.dropped);
    assert_eq!(native.overall.latency.p99(), ebpf.overall.latency.p99());
}

#[test]
fn sita_ebpf_simulation_is_bit_identical_to_native() {
    let native = run(SocketPolicyKind::Sita, false, 200_000.0, 0.995);
    let ebpf = run(SocketPolicyKind::Sita, true, 200_000.0, 0.995);
    assert_eq!(native.overall.completed, ebpf.overall.completed);
    assert_eq!(native.overall.latency.p99(), ebpf.overall.latency.p99());
}

#[test]
fn token_ebpf_simulation_is_bit_identical_to_native() {
    let mk = |use_ebpf| {
        let mut cfg = ServerConfig::fig7(
            SocketPolicyKind::TokenBased {
                rate_per_sec: 350_000,
            },
            250_000.0,
            150_000.0,
            9,
        );
        cfg.use_ebpf = use_ebpf;
        cfg.warmup = Duration::from_millis(10);
        cfg.measure = Duration::from_millis(60);
        server_world::run(&cfg)
    };
    let native = mk(false);
    let ebpf = mk(true);
    assert_eq!(native.overall.completed, ebpf.overall.completed);
    assert_eq!(native.overall.dropped, ebpf.overall.dropped);
    assert_eq!(
        native.per_tenant[&0].latency.p99(),
        ebpf.per_tenant[&0].latency.p99()
    );
}

#[test]
fn scan_avoid_ebpf_keeps_the_figure6_ordering() {
    // Different PRNG streams (VM's xorshift vs the native policy's seed),
    // so assert the qualitative result: SCAN-Avoid-on-eBPF still beats
    // round robin by a wide margin.
    let rr = run(SocketPolicyKind::RoundRobin, true, 150_000.0, 0.995);
    let sa = run(SocketPolicyKind::ScanAvoid, true, 150_000.0, 0.995);
    assert!(
        sa.overall.latency.p99().as_nanos() * 3 < rr.overall.latency.p99().as_nanos(),
        "eBPF SCAN-Avoid {} vs RR {}",
        sa.overall.latency.p99(),
        rr.overall.latency.p99()
    );
}
