//! The same example smoke coverage as `examples_smoke.rs`, but with the
//! fast pre-decoded execution backend selected via `SYRUP_BACKEND`. Every
//! example must run to completion under either engine; this binary is
//! separate from the interpreter smoke so the env var cannot race between
//! test binaries (within this binary every test sets the same value, so
//! concurrent setters are benign).

#[path = "../../examples/quickstart.rs"]
mod quickstart;

#[path = "../../examples/multi_tenant_qos.rs"]
mod multi_tenant_qos;

#[path = "../../examples/cross_layer_kv.rs"]
mod cross_layer_kv;

#[path = "../../examples/custom_policy_ebpf.rs"]
mod custom_policy_ebpf;

#[path = "../../examples/storage_qos.rs"]
mod storage_qos;

#[path = "../../examples/stream_scheduling.rs"]
mod stream_scheduling;

fn with_fast_backend(run: impl FnOnce()) {
    std::env::set_var("SYRUP_BACKEND", "fast");
    run();
}

#[test]
fn quickstart_runs_fast() {
    with_fast_backend(quickstart::main);
}

#[test]
fn multi_tenant_qos_runs_fast() {
    with_fast_backend(multi_tenant_qos::main);
}

#[test]
fn cross_layer_kv_runs_fast() {
    with_fast_backend(cross_layer_kv::main);
}

#[test]
fn custom_policy_ebpf_runs_fast() {
    with_fast_backend(custom_policy_ebpf::main);
}

#[test]
fn storage_qos_runs_fast() {
    with_fast_backend(storage_qos::main);
}

#[test]
fn stream_scheduling_runs_fast() {
    with_fast_backend(stream_scheduling::main);
}
