//! End-to-end workflow tests: the §3.1 pipeline through the public API.

use syrup::core::{CompileOptions, Decision, Hook, HookMeta, PolicySource, Syrupd};
use syrup::net::{AppHeader, FiveTuple, Frame, RequestClass};
use syrup::policies::{c_sources, RoundRobinPolicy, SitaPolicy};

fn datagram(class: RequestClass, user: u32) -> Vec<u8> {
    let flow = FiveTuple {
        src_ip: 0x0A000001,
        dst_ip: 0x0A000002,
        src_port: 40000,
        dst_port: 8080,
    };
    Frame::build(
        &flow,
        &AppHeader {
            req_type: class.code(),
            user_id: user,
            key_hash: 99,
            req_id: 0,
        },
    )
    .datagram()
    .to_vec()
}

fn meta(port: u16) -> HookMeta {
    HookMeta {
        dst_port: port,
        ..HookMeta::default()
    }
}

/// Compile → verify → deploy → schedule, from one string of C.
#[test]
fn c_policy_deploys_and_schedules() {
    let daemon = Syrupd::new();
    let (app, _) = daemon.register_app("kv", &[8080]).unwrap();
    daemon
        .deploy(
            app,
            Hook::SocketSelect,
            PolicySource::C {
                source: c_sources::SITA.to_string(),
                options: CompileOptions::new()
                    .define("NUM_THREADS", 6)
                    .define("SCAN", RequestClass::Scan.code() as i64),
            },
        )
        .unwrap();

    let mut scan = datagram(RequestClass::Scan, 0);
    let (owner, d) = daemon.schedule(Hook::SocketSelect, &mut scan, &meta(8080));
    assert_eq!(owner, Some(app));
    assert_eq!(d, Decision::Executor(0), "SCANs go to socket 0");

    for _ in 0..10 {
        let mut get = datagram(RequestClass::Get, 0);
        let (_, d) = daemon.schedule(Hook::SocketSelect, &mut get, &meta(8080));
        match d {
            Decision::Executor(i) => assert!((1..6).contains(&i), "GETs avoid socket 0"),
            other => panic!("unexpected decision {other:?}"),
        }
    }
}

/// The same policy deployed as eBPF (via the daemon's compiler) and as
/// native Rust must produce identical decision sequences over identical
/// traffic — the correctness basis for using native policies on the
/// simulation hot path.
#[test]
fn ebpf_and_native_deployments_are_equivalent() {
    let traffic: Vec<Vec<u8>> = (0..40)
        .map(|i| {
            datagram(
                if i % 7 == 0 {
                    RequestClass::Scan
                } else {
                    RequestClass::Get
                },
                0,
            )
        })
        .collect();

    let run_daemon = |source: PolicySource| -> Vec<Decision> {
        let daemon = Syrupd::new();
        let (app, _) = daemon.register_app("x", &[8080]).unwrap();
        daemon.deploy(app, Hook::SocketSelect, source).unwrap();
        traffic
            .iter()
            .map(|pkt| {
                let mut p = pkt.clone();
                daemon.schedule(Hook::SocketSelect, &mut p, &meta(8080)).1
            })
            .collect()
    };

    // Round robin.
    let ebpf = run_daemon(PolicySource::C {
        source: c_sources::ROUND_ROBIN.to_string(),
        options: CompileOptions::new().define("NUM_THREADS", 6),
    });
    let native = run_daemon(PolicySource::Native(Box::new(RoundRobinPolicy::new(6))));
    assert_eq!(ebpf, native, "round robin");

    // SITA.
    let ebpf = run_daemon(PolicySource::C {
        source: c_sources::SITA.to_string(),
        options: CompileOptions::new()
            .define("NUM_THREADS", 6)
            .define("SCAN", RequestClass::Scan.code() as i64),
    });
    let native = run_daemon(PolicySource::Native(Box::new(SitaPolicy::new(6))));
    assert_eq!(ebpf, native, "sita");
}

/// Policies can be swapped while traffic flows (§3.1).
#[test]
fn live_policy_update_takes_effect_between_packets() {
    let daemon = Syrupd::new();
    let (app, _) = daemon.register_app("live", &[8080]).unwrap();
    daemon
        .deploy(
            app,
            Hook::SocketSelect,
            PolicySource::C {
                source: "uint32_t schedule(void *a, void *b) { return 3; }".into(),
                options: CompileOptions::new(),
            },
        )
        .unwrap();
    let mut pkt = datagram(RequestClass::Get, 0);
    assert_eq!(
        daemon.schedule(Hook::SocketSelect, &mut pkt, &meta(8080)).1,
        Decision::Executor(3)
    );
    daemon
        .deploy(
            app,
            Hook::SocketSelect,
            PolicySource::Native(Box::new(RoundRobinPolicy::new(2))),
        )
        .unwrap();
    assert_eq!(
        daemon.schedule(Hook::SocketSelect, &mut pkt, &meta(8080)).1,
        Decision::Executor(1)
    );
}

/// The cross-layer loop: a kernel policy and a userspace agent sharing a
/// Map, exactly as the token example in §3.4.
#[test]
fn token_policy_cross_layer_round_trip() {
    let daemon = Syrupd::new();
    let (app, maps) = daemon.register_app("tokens", &[8080]).unwrap();
    let handle = daemon
        .deploy(
            app,
            Hook::SocketSelect,
            PolicySource::C {
                source: c_sources::TOKEN_BASED.to_string(),
                options: CompileOptions::new().define("NUM_THREADS", 6),
            },
        )
        .unwrap();
    let token_map = maps.open(&handle.pinned_maps["token_map"]).unwrap();

    // No tokens: drop.
    let mut pkt = datagram(RequestClass::Get, 3);
    assert_eq!(
        daemon.schedule(Hook::SocketSelect, &mut pkt, &meta(8080)).1,
        Decision::Drop
    );
    // Userspace generates tokens (the generate_tokens snippet).
    token_map.update_u64(3, 2).unwrap();
    assert!(matches!(
        daemon.schedule(Hook::SocketSelect, &mut pkt, &meta(8080)).1,
        Decision::Executor(_)
    ));
    assert!(matches!(
        daemon.schedule(Hook::SocketSelect, &mut pkt, &meta(8080)).1,
        Decision::Executor(_)
    ));
    assert_eq!(
        daemon.schedule(Hook::SocketSelect, &mut pkt, &meta(8080)).1,
        Decision::Drop,
        "bucket exhausted"
    );
    // The kernel policy's atomic decrements are visible to userspace.
    assert_eq!(token_map.lookup_u64(3).unwrap(), Some(0));
}

/// Different hooks hold independent policies for the same app, and the
/// same policy text is portable across hooks (§5.4's claim).
#[test]
fn policy_portability_across_hooks() {
    let daemon = Syrupd::new();
    let (app, _) = daemon.register_app("mica", &[9090]).unwrap();
    // Deploy the identical MICA home policy text at the kernel XDP hook
    // and the NIC-offload hook — no code changes (§5.4's portability).
    let mut last_handle = None;
    for hook in [Hook::XdpSkb, Hook::XdpOffload] {
        last_handle = Some(
            daemon
                .deploy(
                    app,
                    hook,
                    PolicySource::C {
                        source: c_sources::MICA_HOME.to_string(),
                        options: CompileOptions::new(),
                    },
                )
                .unwrap(),
        );
    }
    let view = syrup::core::SyrupMaps::new(app, daemon.registry().clone());
    // Both hooks decide by key hash; with core_map unset they PASS, after
    // setting 8 cores they pick hash % 8. Exercise the offload deployment
    // (whose core_map owns the pin path after the second deploy).
    let core_map_path = &last_handle.unwrap().pinned_maps["core_map"];
    assert_eq!(core_map_path, "/syrup/1/core_map");
    let flow = FiveTuple {
        src_ip: 1,
        dst_ip: 2,
        src_port: 3,
        dst_port: 9090,
    };
    let mut pkt = Frame::build(
        &flow,
        &AppHeader {
            req_type: 1,
            user_id: 0,
            key_hash: 21,
            req_id: 0,
        },
    )
    .datagram()
    .to_vec();
    let m = meta(9090);
    // Without a populated core_map the policy returns PASS.
    assert_eq!(
        daemon.schedule(Hook::XdpOffload, &mut pkt, &m).1,
        Decision::Pass
    );
    // Populate the offload deployment's core_map: it was pinned last.
    let core_map = view.open("/syrup/1/core_map").unwrap();
    core_map.update_u64(0, 8).unwrap();
    assert_eq!(
        daemon.schedule(Hook::XdpOffload, &mut pkt, &m).1,
        Decision::Executor((21 % 8) as u32)
    );
}

/// XDP-style redirect decisions: a bytecode policy calling
/// `bpf_redirect_map` reaches the world as an executor choice, through the
/// full `syrupd` tail-call dispatch.
#[test]
fn redirect_map_decisions_flow_through_syrupd() {
    use syrup::ebpf::{Asm, HelperId, Reg};

    let daemon = Syrupd::new();
    let (app, _) = daemon.register_app("xdp", &[6060]).unwrap();
    // The executor (AF_XDP socket) map the redirect targets.
    let xsk_map = daemon.registry().create(syrup::core::MapDef::u64_array(8));
    let prog = Asm::new()
        .load_map_fd(Reg::R1, xsk_map)
        .mov64_imm(Reg::R2, 5)
        .mov64_imm(Reg::R3, 0)
        .call(HelperId::RedirectMap)
        .exit()
        .build("redirect")
        .unwrap();
    daemon
        .deploy(app, Hook::XdpDrv, PolicySource::Bytecode(prog))
        .unwrap();

    let mut pkt = vec![0u8; 64];
    let (owner, decision) = daemon.schedule(Hook::XdpDrv, &mut pkt, &meta(6060));
    assert_eq!(owner, Some(app));
    assert_eq!(decision, Decision::Executor(5));
}

/// The EbpfPolicy wrapper surfaces redirects the same way.
#[test]
fn ebpf_policy_wrapper_surfaces_redirects() {
    use syrup::core::EbpfPolicy;
    use syrup::ebpf::maps::MapRegistry;
    use syrup::ebpf::vm::Vm;
    use syrup::ebpf::{Asm, HelperId, Reg};

    let maps = MapRegistry::new();
    let xsk = maps.create(syrup::core::MapDef::u64_array(4));
    let mut vm = Vm::new(maps);
    let prog = Asm::new()
        .load_map_fd(Reg::R1, xsk)
        .mov64_imm(Reg::R2, 2)
        .mov64_imm(Reg::R3, 0)
        .call(HelperId::RedirectMap)
        .exit()
        .build("r")
        .unwrap();
    let slot = vm.load(prog).unwrap();
    let mut policy = EbpfPolicy::new(vm, slot, "redir");
    use syrup::core::PacketPolicy;
    let d = policy.schedule(&mut [0u8; 16], &HookMeta::default());
    assert_eq!(d, Decision::Executor(2));
}
