//! Map subsystem edge cases: tail-call chain depth, hash capacity, and
//! the pin/unpin lifecycle — the limits a policy author actually hits.

use syrup::ebpf::maps::{MapDef, MapError, MapRegistry};
use syrup::ebpf::vm::{PacketCtx, RunEnv, Vm, MAX_TAIL_CALLS};
use syrup::ebpf::{verify, Asm, HelperId, Reg};

/// A program that tail-calls itself caps out at `MAX_TAIL_CALLS`, after
/// which the failed call falls through (kernel semantics) and the program
/// finishes normally.
#[test]
fn tail_call_depth_is_capped_at_32() {
    let maps = MapRegistry::new();
    let prog_array = maps.create(MapDef::prog_array(4));
    let prog = Asm::new()
        .load_map_fd(Reg::R2, prog_array)
        .mov64_imm(Reg::R3, 0) // index 0 = ourselves
        .call(HelperId::TailCall)
        // Reached only when the tail call fails (depth limit).
        .mov64_imm(Reg::R0, 7)
        .exit()
        .build("chain")
        .unwrap();
    verify(&prog, &maps).expect("tail-call program must verify");

    let mut vm = Vm::new(maps.clone());
    let slot = vm.load_unverified(prog);
    maps.get(prog_array)
        .unwrap()
        .set_prog(0, Some(slot))
        .unwrap();

    let mut pkt = vec![0u8; 16];
    let mut ctx = PacketCtx::new(&mut pkt);
    let out = vm.run(slot, &mut ctx, &mut RunEnv::default()).expect("run");
    assert_eq!(out.tail_calls, MAX_TAIL_CALLS, "chain must cap at 32");
    assert_eq!(out.ret, 7, "the failed 33rd call must fall through");
}

/// A tail call through an empty slot fails immediately and falls through.
#[test]
fn tail_call_to_missing_entry_falls_through() {
    let maps = MapRegistry::new();
    let prog_array = maps.create(MapDef::prog_array(4));
    let prog = Asm::new()
        .load_map_fd(Reg::R2, prog_array)
        .mov64_imm(Reg::R3, 3) // never populated
        .call(HelperId::TailCall)
        .mov64_imm(Reg::R0, 9)
        .exit()
        .build("missing")
        .unwrap();
    verify(&prog, &maps).expect("verify");
    let mut vm = Vm::new(maps);
    let slot = vm.load_unverified(prog);
    let mut pkt = vec![0u8; 16];
    let mut ctx = PacketCtx::new(&mut pkt);
    let out = vm.run(slot, &mut ctx, &mut RunEnv::default()).expect("run");
    assert_eq!(out.tail_calls, 0);
    assert_eq!(out.ret, 9);
}

/// Hash maps enforce capacity: updates of *new* keys fail with
/// `MapError::Full` once `max_entries` is reached, existing keys stay
/// updatable, and deleting frees a slot.
#[test]
fn hash_map_capacity_full_then_freed() {
    let reg = MapRegistry::new();
    let map = reg.get(reg.create(MapDef::u64_hash(2))).unwrap();
    map.update_u64(1, 10).unwrap();
    map.update_u64(2, 20).unwrap();
    assert_eq!(map.update_u64(3, 30), Err(MapError::Full));
    // Overwriting an existing key is not an insertion.
    map.update_u64(2, 21).unwrap();
    assert_eq!(map.lookup_u64(2).unwrap(), Some(21));
    // Deleting frees capacity for a new key.
    map.delete(&1u32.to_le_bytes()).unwrap();
    map.update_u64(3, 30).unwrap();
    assert_eq!(map.lookup_u64(3).unwrap(), Some(30));
}

/// The pin lifecycle: pin makes a map reachable by path, unpin removes
/// the path (the map itself survives via its id), and a second unpin or
/// post-unpin open fails.
#[test]
fn pin_lookup_unpin_lookup_fails() {
    let reg = MapRegistry::new();
    let id = reg.create(MapDef::u64_array(8));
    reg.get(id).unwrap().update_u64(0, 42).unwrap();

    reg.pin(id, "/sys/fs/bpf/syrup/test_map").unwrap();
    let by_path = reg
        .open("/sys/fs/bpf/syrup/test_map")
        .expect("pinned path resolves");
    assert_eq!(by_path.lookup_u64(0).unwrap(), Some(42));

    let unpinned = reg.unpin("/sys/fs/bpf/syrup/test_map").unwrap();
    assert_eq!(unpinned, id);
    assert!(
        reg.open("/sys/fs/bpf/syrup/test_map").is_none(),
        "unpinned path must no longer resolve"
    );
    assert!(reg.unpin("/sys/fs/bpf/syrup/test_map").is_err());
    // The map object itself is still alive through its id.
    assert_eq!(reg.get(id).unwrap().lookup_u64(0).unwrap(), Some(42));
}
