//! End-to-end flight-recorder scenarios: the quickstart pipeline with
//! the recorder attached at every layer, an injected SLO burn freezing
//! the rings, and the postmortem JSON surviving the vendored parser.

use syrup::apps::quickstart;
use syrup::blackbox::{EventKind, Layer, Recorder, TriggerCause};
use syrup::profile::{Profiler, SloMonitor, SloRule};
use syrup::telemetry::Snapshot;
use syrup::trace::Tracer;

/// Runs the quickstart with an armed recorder and a deliberately
/// impossible SLO evaluated halfway through, mirroring
/// `syrupctl blackbox record --inject-burn`.
fn burned_run(requests: usize) -> (quickstart::Quickstart, Recorder) {
    let recorder = Recorder::new();
    let mut monitor = SloMonitor::new().with_rule(SloRule::new("vm/run_cycles", 0.99, 1));
    monitor.attach_blackbox(&recorder);
    let fire_at = (requests as u64 / 2).max(1);
    let rec = recorder.clone();
    let q = quickstart::run_observed(
        &Tracer::disabled(),
        &Profiler::disabled(),
        &recorder,
        requests,
        false,
        &mut |completed, now_ns, d| {
            if !rec.frozen() && completed >= fire_at {
                let _ = monitor.observe(now_ns, &d.telemetry_snapshot());
            }
        },
    );
    (q, recorder)
}

#[test]
fn injected_burn_freezes_a_four_layer_postmortem() {
    let (q, recorder) = burned_run(quickstart::DEFAULT_REQUESTS);
    assert_eq!(q.completed, quickstart::DEFAULT_REQUESTS as u64);
    assert!(recorder.frozen());
    let pm = recorder.capture();
    let trigger = pm.trigger.as_ref().expect("burn froze the rings");
    assert_eq!(trigger.cause, TriggerCause::SloBurn);
    let layers = pm.layer_names();
    assert!(
        layers.len() >= 4,
        "postmortem covers {layers:?}, wanted >= 4 layers"
    );
    for want in ["syrupd", "nic", "sock", "slo"] {
        assert!(layers.contains(&want), "{want} missing from {layers:?}");
    }
    // The frozen window is pre-trigger: every retained event is at or
    // before the trigger timestamp.
    for dump in &pm.layers {
        for e in &dump.events {
            assert!(e.at_ns <= trigger.at_ns, "{e:?} after trigger");
        }
    }
    // The implicated hot path is the quickstart app's last dispatch.
    assert_eq!(pm.implicated_app(), Some(q.app.0 as u16));
}

#[test]
fn postmortem_json_round_trips_through_the_vendored_parser() {
    let (_q, recorder) = burned_run(32);
    let pm = recorder.capture();
    let json = serde::json::to_string(&pm).expect("postmortem serializes");
    let value = serde::json::from_str(&json).expect("postmortem parses");
    assert_eq!(
        value
            .get("trigger")
            .and_then(|t| t.get("cause"))
            .and_then(|c| c.as_str()),
        Some("slo-burn")
    );
    let layers = value.get("layers").and_then(|v| v.as_array()).unwrap();
    assert_eq!(layers.len(), syrup::blackbox::NUM_LAYERS);
    let populated = layers
        .iter()
        .filter(|l| {
            l.get("events")
                .and_then(|e| e.as_array())
                .is_some_and(|e| !e.is_empty())
        })
        .count();
    assert!(populated >= 4, "{populated} populated layers in JSON");
}

#[test]
fn rings_freeze_at_the_burn_and_stay_frozen() {
    let (_q, recorder) = burned_run(quickstart::DEFAULT_REQUESTS);
    let before = recorder.capture().total_events();
    // Frozen rings drop everything: further traffic adds no events.
    recorder.dispatch(u64::MAX, 9, 9, 9, 9);
    recorder.enqueue_drop(Layer::Nic, 0, 0, 0);
    assert_eq!(recorder.capture().total_events(), before);
    // Thawing resumes recording.
    recorder.resume();
    assert!(!recorder.frozen());
    recorder.dispatch(u64::MAX, 9, 9, 9, 9);
    assert_eq!(recorder.capture().total_events(), before + 1);
}

#[test]
fn snapshot_delta_between_observer_frames_telescopes() {
    // The `syrupctl watch` invariant: per-frame deltas applied in order
    // reproduce the final snapshot exactly.
    let recorder = Recorder::disabled();
    let mut frames: Vec<Snapshot> = Vec::new();
    let q = quickstart::run_observed(
        &Tracer::disabled(),
        &Profiler::disabled(),
        &recorder,
        48,
        false,
        &mut |completed, _now_ns, d| {
            if completed % 16 == 0 {
                frames.push(d.telemetry_snapshot());
            }
        },
    );
    assert_eq!(frames.len(), 3);
    // Consecutive frame deltas replay exactly, and the last frame is the
    // run's final state — so a watcher holding only deltas loses nothing.
    for w in frames.windows(2) {
        let delta = w[1].delta(&w[0]);
        assert_eq!(delta.apply(&w[0]), w[1]);
        assert!(!delta.is_empty(), "16 requests moved no counters?");
    }
    assert_eq!(frames.last().unwrap(), &q.syrupd.telemetry_snapshot());
}

#[test]
fn manual_trigger_mirrors_the_syrupctl_handle() {
    // `syrupctl blackbox record --trigger-manual`: pulling the handle
    // mid-run freezes the rings with whatever the layers emitted so far.
    let recorder = Recorder::new();
    let rec = recorder.clone();
    let q = quickstart::run_observed(
        &Tracer::disabled(),
        &Profiler::disabled(),
        &recorder,
        32,
        false,
        &mut |completed, _now_ns, _d| {
            if completed == 16 && !rec.frozen() {
                rec.trigger_manual("operator pulled the handle");
            }
        },
    );
    assert_eq!(q.completed, 32);
    let pm = recorder.capture();
    let trigger = pm.trigger.as_ref().expect("manual trigger fired");
    assert_eq!(trigger.cause, TriggerCause::Manual);
    assert_eq!(trigger.detail, "operator pulled the handle");
    // Only the first run-half's dispatches survive: three per request.
    let dispatches = pm.layers[Layer::Syrupd.index()]
        .events
        .iter()
        .filter(|e| e.kind == EventKind::Dispatch)
        .count();
    assert_eq!(dispatches, 3 * 16);
}

#[test]
fn disabled_recorder_perturbs_nothing_end_to_end() {
    let tracer = Tracer::disabled();
    let plain = quickstart::run(&tracer, 32);
    let (q, recorder) = {
        let rec = Recorder::disabled();
        let q = quickstart::run_observed(
            &tracer,
            &Profiler::disabled(),
            &rec,
            32,
            false,
            &mut |_, _, _| {},
        );
        (q, rec)
    };
    assert_eq!(plain.completed, q.completed);
    assert_eq!(
        plain.syrupd.telemetry_snapshot(),
        q.syrupd.telemetry_snapshot()
    );
    assert!(recorder.capture().layers.is_empty());
}
