//! Reduced-scale checks that each figure's *ordering* claims hold through
//! the public API. The full sweeps live in the `bench` binaries; these
//! run in seconds and gate regressions on the qualitative results.

use syrup::apps::mica::{self, MicaConfig, MicaMode};
use syrup::apps::mt_world::{self, MtConfig, SchedKind};
use syrup::apps::server_world::{self, ServerConfig, SocketPolicyKind};
use syrup::sim::Duration;

fn server(
    policy: SocketPolicyKind,
    load: f64,
    get_frac: f64,
    seed: u64,
) -> server_world::ServerResult {
    let mut cfg = ServerConfig::fig2(policy, load, seed);
    cfg.get_fraction = get_frac;
    cfg.warmup = Duration::from_millis(20);
    cfg.measure = Duration::from_millis(100);
    server_world::run(&cfg)
}

/// Figure 2: at 350K RPS vanilla hashing misbehaves in most seeds while
/// round robin drops nothing and stays fast.
#[test]
fn fig2_round_robin_beats_vanilla_hashing() {
    let mut vanilla_trouble = 0;
    for seed in 1..=4 {
        let _seed_guard =
            syrup_integration::SeedGuard::new("fig2_round_robin_beats_vanilla_hashing", seed);
        let v = server(SocketPolicyKind::Vanilla, 350_000.0, 1.0, seed);
        if v.overall.drop_pct() > 0.3 || v.overall.latency.p99() > Duration::from_micros(400) {
            vanilla_trouble += 1;
        }
        let rr = server(SocketPolicyKind::RoundRobin, 350_000.0, 1.0, seed);
        assert_eq!(rr.overall.dropped, 0);
        assert!(rr.overall.latency.p99() < Duration::from_micros(150));
    }
    assert!(
        vanilla_trouble >= 3,
        "vanilla misbehaved in {vanilla_trouble}/4 seeds"
    );
}

/// Figure 6: the policy ordering SITA < SCAN Avoid < Round Robin ≤
/// Vanilla on 99% latency at moderate load.
#[test]
fn fig6_policy_ordering_holds() {
    let load = 150_000.0;
    let vanilla = server(SocketPolicyKind::Vanilla, load, 0.995, 2)
        .overall
        .latency
        .p99();
    let rr = server(SocketPolicyKind::RoundRobin, load, 0.995, 2)
        .overall
        .latency
        .p99();
    let sa = server(SocketPolicyKind::ScanAvoid, load, 0.995, 2)
        .overall
        .latency
        .p99();
    let sita = server(SocketPolicyKind::Sita, load, 0.995, 2)
        .overall
        .latency
        .p99();
    assert!(sita < sa, "SITA {sita} < SCAN Avoid {sa}");
    assert!(sa < rr, "SCAN Avoid {sa} < RR {rr}");
    assert!(rr <= vanilla, "RR {rr} <= Vanilla {vanilla}");
    // The 8x-or-better claim vs the defaults.
    assert!(
        vanilla.as_nanos() >= 8 * sita.as_nanos(),
        "expected >=8x gap: vanilla {vanilla} vs SITA {sita}"
    );
}

/// Figure 7: under the same offered overload, the token policy keeps the
/// LS tail several times lower than round robin while BE throughput only
/// drops modestly.
#[test]
fn fig7_token_policy_tradeoff() {
    let run = |policy| {
        let mut cfg = ServerConfig::fig7(policy, 250_000.0, 150_000.0, 3);
        cfg.warmup = Duration::from_millis(20);
        cfg.measure = Duration::from_millis(120);
        server_world::run(&cfg)
    };
    let rr = run(SocketPolicyKind::RoundRobin);
    let tok = run(SocketPolicyKind::TokenBased {
        rate_per_sec: 350_000,
    });
    let rr_ls = rr.per_tenant[&0].latency.p99();
    let tok_ls = tok.per_tenant[&0].latency.p99();
    assert!(
        rr_ls.as_nanos() > 3 * tok_ls.as_nanos(),
        "LS p99: RR {rr_ls} vs token {tok_ls}"
    );
    // RR serves BE a bit more than the token policy does.
    assert!(rr.per_tenant[&1].completed >= tok.per_tenant[&1].completed);
    // But the token policy still serves BE from gifted leftovers.
    assert!(tok.per_tenant[&1].completed > 0);
}

/// Figure 8: cross-layer deployment dominates both single-layer ones on
/// the GET tail.
#[test]
fn fig8_cross_layer_dominates() {
    let run = |socket, sched| {
        let mut cfg = MtConfig::fig8(socket, sched, 6_000.0, 4);
        cfg.warmup = Duration::from_millis(50);
        cfg.measure = Duration::from_millis(300);
        mt_world::run(&cfg)
    };
    let socket_only = run(SocketPolicyKind::ScanAvoid, SchedKind::Cfs);
    let thread_only = run(SocketPolicyKind::Vanilla, SchedKind::Ghost);
    let both = run(SocketPolicyKind::ScanAvoid, SchedKind::Ghost);
    assert!(both.get.p99() < socket_only.get.p99());
    assert!(both.get.p99() < thread_only.get.p99());
    assert!(both.get.p99() < Duration::from_micros(500));
}

/// Figure 9: capacity ordering SW Redirect < Syrup SW < Syrup HW for both
/// workload mixes.
#[test]
fn fig9_capacity_ordering() {
    for get_frac in [0.5, 0.95] {
        let probe = 2_300_000.0;
        let app = mica::run(&MicaConfig::fig9(MicaMode::SwRedirect, get_frac, probe, 5));
        let sw = mica::run(&MicaConfig::fig9(MicaMode::SyrupSw, get_frac, probe, 5));
        let hw = mica::run(&MicaConfig::fig9(MicaMode::SyrupHw, get_frac, probe, 5));
        assert!(
            app.latency.p999() > Duration::from_millis(1),
            "SW redirect should be saturated at {probe} (mix {get_frac})"
        );
        assert!(sw.latency.p999() < Duration::from_millis(1));
        assert!(hw.latency.p999() < sw.latency.p999());
    }
}
