//! Smoke coverage for every program under `examples/`: each one is
//! compiled into this test binary as a module and its `main` executed,
//! so a broken example fails `cargo test` rather than lingering until
//! someone runs it by hand. (The examples also build as standalone
//! binaries via `cargo test -p syrup`, which compiles example targets.)

#[path = "../../examples/quickstart.rs"]
mod quickstart;

#[path = "../../examples/multi_tenant_qos.rs"]
mod multi_tenant_qos;

#[path = "../../examples/cross_layer_kv.rs"]
mod cross_layer_kv;

#[path = "../../examples/custom_policy_ebpf.rs"]
mod custom_policy_ebpf;

#[path = "../../examples/storage_qos.rs"]
mod storage_qos;

#[path = "../../examples/stream_scheduling.rs"]
mod stream_scheduling;

#[test]
fn quickstart_runs() {
    quickstart::main();
}

#[test]
fn multi_tenant_qos_runs() {
    multi_tenant_qos::main();
}

#[test]
fn cross_layer_kv_runs() {
    cross_layer_kv::main();
}

#[test]
fn custom_policy_ebpf_runs() {
    custom_policy_ebpf::main();
}

#[test]
fn storage_qos_runs() {
    storage_qos::main();
}

#[test]
fn stream_scheduling_runs() {
    stream_scheduling::main();
}
