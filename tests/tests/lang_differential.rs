//! Differential testing of the whole policy toolchain.
//!
//! Random arithmetic expressions are rendered as C, compiled by
//! `syrup-lang`, verified, and executed on the VM; the result must equal
//! direct evaluation in Rust with matching semantics (wrapping u64
//! arithmetic, division-by-zero → 0, modulo-zero → unchanged, truncation
//! to `uint32_t` at return).

use proptest::prelude::*;

use syrup::core::CompileOptions;
use syrup::ebpf::maps::MapRegistry;
use syrup::ebpf::verify;
use syrup::ebpf::vm::{PacketCtx, RunEnv, Vm};

/// A small expression tree over u32 literals.
#[derive(Debug, Clone)]
enum Expr {
    Lit(u32),
    Bin(&'static str, Box<Expr>, Box<Expr>),
}

impl Expr {
    fn render(&self) -> String {
        match self {
            Expr::Lit(v) => format!("{v}"),
            Expr::Bin(op, a, b) => format!("({} {op} {})", a.render(), b.render()),
        }
    }

    #[allow(clippy::manual_checked_ops)] // Mirrors the VM's div/mod-by-zero rules.
    fn eval(&self) -> u64 {
        match self {
            Expr::Lit(v) => u64::from(*v),
            Expr::Bin(op, a, b) => {
                let (x, y) = (a.eval(), b.eval());
                match *op {
                    "+" => x.wrapping_add(y),
                    "-" => x.wrapping_sub(y),
                    "*" => x.wrapping_mul(y),
                    "/" => {
                        if y == 0 {
                            0
                        } else {
                            x / y
                        }
                    }
                    "%" => {
                        if y == 0 {
                            x
                        } else {
                            x % y
                        }
                    }
                    "&" => x & y,
                    "|" => x | y,
                    "^" => x ^ y,
                    _ => unreachable!(),
                }
            }
        }
    }
}

fn expr_strategy() -> impl Strategy<Value = Expr> {
    let leaf = (0u32..100_000).prop_map(Expr::Lit);
    leaf.prop_recursive(4, 24, 3, |inner| {
        (
            prop::sample::select(vec!["+", "-", "*", "/", "%", "&", "|", "^"]),
            inner.clone(),
            inner,
        )
            .prop_map(|(op, a, b)| Expr::Bin(op, Box::new(a), Box::new(b)))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn compiled_arithmetic_matches_rust(expr in expr_strategy()) {
        let source = format!(
            "uint32_t schedule(void *pkt_start, void *pkt_end) {{ return {}; }}",
            expr.render()
        );
        let maps = MapRegistry::new();
        let compiled = syrup::lang::compile(&source, &CompileOptions::new(), &maps)
            .expect("arithmetic always compiles");
        verify(&compiled.program, &maps).expect("arithmetic always verifies");
        let mut vm = Vm::new(maps);
        let slot = vm.load_unverified(compiled.program);
        let mut pkt = [0u8; 8];
        let mut ctx = PacketCtx::new(&mut pkt);
        let got = vm.run(slot, &mut ctx, &mut RunEnv::default()).expect("runs").ret;
        // Return type is uint32_t: truncate the oracle.
        let expect = expr.eval() as u32 as u64;
        prop_assert_eq!(got, expect, "source: {}", source);
    }

    /// Locals round-trip through stack slots without corruption.
    #[test]
    fn compiled_locals_match_rust(vals in prop::collection::vec(0u32..1_000_000, 1..6)) {
        let decls: String = vals
            .iter()
            .enumerate()
            .map(|(i, v)| format!("uint64_t x{i} = {v};"))
            .collect::<Vec<_>>()
            .join("\n");
        let sum_expr = (0..vals.len())
            .map(|i| format!("x{i}"))
            .collect::<Vec<_>>()
            .join(" + ");
        let source = format!(
            "uint32_t schedule(void *pkt_start, void *pkt_end) {{\n{decls}\nreturn {sum_expr};\n}}"
        );
        let maps = MapRegistry::new();
        let compiled = syrup::lang::compile(&source, &CompileOptions::new(), &maps).unwrap();
        verify(&compiled.program, &maps).unwrap();
        let mut vm = Vm::new(maps);
        let slot = vm.load_unverified(compiled.program);
        let mut pkt = [0u8; 8];
        let mut ctx = PacketCtx::new(&mut pkt);
        let got = vm.run(slot, &mut ctx, &mut RunEnv::default()).unwrap().ret;
        let expect: u64 = vals.iter().map(|&v| u64::from(v)).sum::<u64>() as u32 as u64;
        prop_assert_eq!(got, expect);
    }

    /// Unrolled loops accumulate exactly like their Rust counterparts.
    #[test]
    fn compiled_loops_match_rust(n in 1i64..20, step in 1u32..50) {
        let source = format!(
            "uint32_t schedule(void *pkt_start, void *pkt_end) {{
                 uint64_t acc = 0;
                 for (int i = 0; i < {n}; i++) {{
                     acc += {step};
                 }}
                 return acc;
             }}"
        );
        let maps = MapRegistry::new();
        let compiled = syrup::lang::compile(&source, &CompileOptions::new(), &maps).unwrap();
        verify(&compiled.program, &maps).unwrap();
        let mut vm = Vm::new(maps);
        let slot = vm.load_unverified(compiled.program);
        let mut pkt = [0u8; 8];
        let mut ctx = PacketCtx::new(&mut pkt);
        let got = vm.run(slot, &mut ctx, &mut RunEnv::default()).unwrap().ret;
        prop_assert_eq!(got, u64::from(step) * n as u64);
    }
}
