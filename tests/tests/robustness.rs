//! Robustness properties: no component panics on hostile input.
//!
//! The toolchain faces *untrusted* policy files (§3), so the lexer,
//! parser, compiler, text assembler, and verifier must fail with errors —
//! never panic — on arbitrary input.

use proptest::prelude::*;

use syrup::core::CompileOptions;
use syrup::ebpf::maps::MapRegistry;
use syrup::ebpf::{assemble, verify};
use syrup::net::packet::parse_app_header;
use syrup::net::StreamFramer;

proptest! {
    /// The policy compiler returns Ok or Err on any string; it never
    /// panics.
    #[test]
    fn compiler_never_panics(source in "\\PC{0,300}") {
        let maps = MapRegistry::new();
        let _ = syrup::lang::compile(&source, &CompileOptions::new(), &maps);
    }

    /// C-looking garbage (keywords, operators, braces in random order)
    /// also never panics the compiler.
    #[test]
    fn compiler_survives_c_shaped_garbage(
        tokens in prop::collection::vec(
            prop::sample::select(vec![
                "uint32_t", "uint64_t", "void", "*", "schedule", "(", ")", "{", "}",
                "return", "if", "else", "for", "break", ";", ",", "x", "y", "0", "1",
                "+", "-", "==", "&", "=", "++", "->", "struct", "SYRUP_MAP",
                "syr_map_lookup_elem",
            ]),
            0..60,
        )
    ) {
        let source = tokens.join(" ");
        let maps = MapRegistry::new();
        let _ = syrup::lang::compile(&source, &CompileOptions::new(), &maps);
    }

    /// The text assembler never panics, and anything it accepts the
    /// verifier can process without panicking.
    #[test]
    fn assembler_never_panics(source in "\\PC{0,200}") {
        if let Ok(prog) = assemble("fuzz", &source) {
            let maps = MapRegistry::new();
            let _ = verify(&prog, &maps);
        }
    }

    /// Assembler built from plausible mnemonic soup never panics.
    #[test]
    fn assembler_survives_mnemonic_soup(
        lines in prop::collection::vec(
            prop::sample::select(vec![
                "mov r0, 0", "add r1, r2", "ldxdw r0, [r1+0]", "stxdw [r10-8], r0",
                "jeq r0, 0, out", "ja out", "call map_lookup_elem", "exit",
                "out:", "lddw r3, 0xFFFF", "aadddw [r10-8], r1", "be r0, 16",
                "garbage", "mov r99, 1", "ldxdw r0, [nope]",
            ]),
            0..20,
        )
    ) {
        let source = lines.join("\n");
        if let Ok(prog) = assemble("soup", &source) {
            let maps = MapRegistry::new();
            let _ = verify(&prog, &maps);
        }
    }

    /// Packet parsing never panics on arbitrary bytes.
    #[test]
    fn packet_parsers_never_panic(bytes in prop::collection::vec(any::<u8>(), 0..128)) {
        let _ = parse_app_header(&bytes);
    }

    /// The KCM framer handles arbitrary byte streams without panicking and
    /// never emits a frame longer than the declared maximum.
    #[test]
    fn kcm_framer_never_panics(segments in prop::collection::vec(
        prop::collection::vec(any::<u8>(), 0..64), 0..12)) {
        let mut framer = StreamFramer::new();
        for seg in &segments {
            match framer.feed(seg) {
                Ok(frames) => {
                    for f in frames {
                        prop_assert!(f.len() <= syrup::net::kcm::MAX_FRAME);
                    }
                }
                Err(_) => {
                    prop_assert!(framer.is_poisoned());
                    break;
                }
            }
        }
    }

    /// KCM reassembly is invariant under re-segmentation: however a wire
    /// byte stream is chopped into TCP segments, the same frames emerge.
    #[test]
    fn kcm_reassembly_is_segmentation_invariant(
        payloads in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..32), 1..6),
        cut in 1usize..17,
    ) {
        let wire: Vec<u8> = payloads
            .iter()
            .flat_map(|p| syrup::net::kcm::encode_frame(p))
            .collect();

        let mut whole = StreamFramer::new();
        let all_at_once = whole.feed(&wire).unwrap();

        let mut chopped = StreamFramer::new();
        let mut rejoined = Vec::new();
        for chunk in wire.chunks(cut) {
            rejoined.extend(chopped.feed(chunk).unwrap());
        }
        prop_assert_eq!(all_at_once, rejoined);
    }
}
