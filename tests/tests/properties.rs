//! Property-based tests over the core substrates.

use proptest::prelude::*;

use syrup::core::Decision;
use syrup::ebpf::cycles::CycleModel;
use syrup::ebpf::maps::{MapDef, MapRegistry, UpdateFlag};
use syrup::ebpf::vm::{Backend, PacketCtx, RunEnv, Vm};
use syrup::ebpf::{verify, Asm, Reg};
use syrup::net::{FiveTuple, Toeplitz};
use syrup::sched::{BucketQueue, Pifo};
use syrup::sim::stats::LatencySummary;
use syrup::sim::{EventQueue, Time};

proptest! {
    /// Decisions survive the wire encoding for every u32.
    #[test]
    fn decision_round_trip(v in any::<u32>()) {
        let d = Decision::from_ret(u64::from(v));
        prop_assert_eq!(Decision::from_ret(d.to_ret()), d);
    }

    /// Nearest-rank percentiles agree with a naive reference computation.
    #[test]
    fn percentiles_match_reference(mut samples in prop::collection::vec(0u64..1_000_000, 1..200),
                                   p in 0.0f64..=1.0) {
        let summary = LatencySummary::from_nanos(samples.clone());
        samples.sort_unstable();
        let rank = ((p * samples.len() as f64).ceil() as usize).max(1).min(samples.len());
        prop_assert_eq!(summary.percentile(p).as_nanos(), samples[rank - 1]);
    }

    /// The event queue pops every event in nondecreasing time order and
    /// FIFO within ties, regardless of push order.
    #[test]
    fn event_queue_is_totally_ordered(times in prop::collection::vec(0u64..1_000, 1..300)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(Time::from_nanos(t), i);
        }
        let mut last_time = 0u64;
        let mut seen_at_time: Vec<usize> = Vec::new();
        let mut popped = 0usize;
        while let Some((t, idx)) = q.pop() {
            prop_assert!(t.as_nanos() >= last_time);
            if t.as_nanos() != last_time {
                seen_at_time.clear();
                last_time = t.as_nanos();
            }
            // FIFO within a tie: indices increase.
            if let Some(&prev) = seen_at_time.last() {
                prop_assert!(idx > prev);
            }
            seen_at_time.push(idx);
            popped += 1;
        }
        prop_assert_eq!(popped, times.len());
    }

    /// Hash maps behave like a model `HashMap` under arbitrary operation
    /// sequences (insert/update/delete/lookup).
    #[test]
    fn hash_map_matches_model(ops in prop::collection::vec((0u8..4, 0u32..16, any::<u64>()), 1..200)) {
        let reg = MapRegistry::new();
        let map = reg.get(reg.create(MapDef::u64_hash(64))).unwrap();
        let mut model = std::collections::HashMap::new();
        for (op, key, value) in ops {
            match op {
                0 => {
                    let _ = map.update_u64(key, value);
                    model.insert(key, value);
                }
                1 => {
                    let real = map.lookup_u64(key).unwrap();
                    prop_assert_eq!(real, model.get(&key).copied());
                }
                2 => {
                    let real = map.delete(&key.to_le_bytes());
                    let modeled = model.remove(&key);
                    prop_assert_eq!(real.is_ok(), modeled.is_some());
                }
                _ => {
                    let flag_res = map.update(
                        &key.to_le_bytes(),
                        &value.to_le_bytes(),
                        UpdateFlag::NoExist,
                    );
                    if let std::collections::hash_map::Entry::Vacant(e) = model.entry(key) {
                        prop_assert!(flag_res.is_ok());
                        e.insert(value);
                    } else {
                        prop_assert!(flag_res.is_err());
                    }
                }
            }
        }
        prop_assert_eq!(map.len(), model.len());
    }

    /// Toeplitz hashing matches an independent bit-by-bit reference.
    #[test]
    fn toeplitz_matches_reference(src in any::<u32>(), dst in any::<u32>(),
                                  sport in any::<u16>(), dport in any::<u16>()) {
        let flow = FiveTuple { src_ip: src, dst_ip: dst, src_port: sport, dst_port: dport };
        let fast = Toeplitz::default().hash_v4(&flow);

        // Reference: key as a big bit vector, XOR 32-bit windows.
        let key = syrup::net::rss::DEFAULT_KEY;
        let key_bit = |i: usize| -> u32 {
            if i / 8 < key.len() { u32::from((key[i / 8] >> (7 - i % 8)) & 1) } else { 0 }
        };
        let mut input = Vec::new();
        input.extend_from_slice(&src.to_be_bytes());
        input.extend_from_slice(&dst.to_be_bytes());
        input.extend_from_slice(&sport.to_be_bytes());
        input.extend_from_slice(&dport.to_be_bytes());
        let mut expect = 0u32;
        for (bit_idx, _) in input.iter().flat_map(|b| (0..8).map(move |k| (b >> (7 - k)) & 1))
            .enumerate()
            .filter(|(_, bit)| *bit == 1)
            .map(|(i, _)| (i, ()))
        {
            let mut window = 0u32;
            for j in 0..32 {
                window = (window << 1) | key_bit(bit_idx + j);
            }
            expect ^= window;
        }
        prop_assert_eq!(fast, expect);
    }

    /// Verifier soundness: any program the verifier accepts runs without
    /// trapping, over arbitrary packet contents and sizes. Programs are
    /// generated from a grammar biased toward plausible (sometimes valid)
    /// shapes; most get rejected, accepted ones must be safe.
    #[test]
    fn verified_programs_never_trap(
        seed_insns in prop::collection::vec((0u8..8, 0u8..5, -64i32..64), 1..12),
        pkt_len in 0usize..64,
        pkt_byte in any::<u8>(),
    ) {
        let mut asm = Asm::new();
        // Prologue candidates the generator can exploit.
        asm = asm
            .ldx_dw(Reg::R7, Reg::R1, 8)  // data_end
            .ldx_dw(Reg::R6, Reg::R1, 0); // data
        for (op, reg, imm) in seed_insns {
            let r = Reg::new(reg % 5); // r0..r4
            asm = match op {
                0 => asm.mov64_imm(r, imm),
                1 => asm.add64_imm(r, imm),
                2 => asm.mod64_imm(r, imm.max(1)),
                3 => asm.mov64_reg(r, Reg::R6),
                4 => asm.add64_reg(r, r),
                5 => asm.jgt_reg(Reg::R6, Reg::R7, "out"),
                6 => asm.ldx_b(r, Reg::R6, (imm & 31) as i16),
                _ => asm.stx_dw(Reg::R10, -8 - (i16::from((imm & 7) as i8) * 8).abs(), r),
            };
        }
        let prog = asm
            .label("out")
            .mov64_imm(Reg::R0, 0)
            .exit()
            .build("fuzz");
        let Ok(prog) = prog else { return Ok(()); };

        let maps = MapRegistry::new();
        if verify(&prog, &maps).is_ok() {
            let mut vm = Vm::new(maps);
            let slot = vm.load_unverified(prog);
            let mut pkt = vec![pkt_byte; pkt_len];
            let mut ctx = PacketCtx::new(&mut pkt);
            let result = vm.run(slot, &mut ctx, &mut RunEnv::default());
            prop_assert!(result.is_ok(), "verified program trapped: {:?}", result);
        }
    }

    /// Pre-decoding for the fast backend is lossless: re-encoding the
    /// decoded stream reproduces the original instructions exactly, for
    /// every program the grammar can build (accepted or not).
    #[test]
    fn decode_reencode_round_trips(
        seed_insns in prop::collection::vec((0u8..8, 0u8..5, -64i32..64), 1..12),
    ) {
        let mut asm = Asm::new();
        asm = asm
            .ldx_dw(Reg::R7, Reg::R1, 8)
            .ldx_dw(Reg::R6, Reg::R1, 0);
        for (op, reg, imm) in seed_insns {
            let r = Reg::new(reg % 5);
            asm = match op {
                0 => asm.mov64_imm(r, imm),
                1 => asm.add64_imm(r, imm),
                2 => asm.mod64_imm(r, imm.max(1)),
                3 => asm.mov64_reg(r, Reg::R6),
                4 => asm.add64_reg(r, r),
                5 => asm.jgt_reg(Reg::R6, Reg::R7, "out"),
                6 => asm.ldx_b(r, Reg::R6, (imm & 31) as i16),
                _ => asm.stx_dw(Reg::R10, -8 - (i16::from((imm & 7) as i8) * 8).abs(), r),
            };
        }
        let prog = asm
            .label("out")
            .mov64_imm(Reg::R0, 0)
            .exit()
            .build("roundtrip");
        let Ok(prog) = prog else { return Ok(()); };

        let maps = MapRegistry::new();
        let decoded = syrup::ebpf::decode(&prog, &CycleModel::default(), &maps);
        prop_assert_eq!(decoded.reencode(), prog.insns);
    }

    /// The two execution backends are observably identical on everything
    /// the grammar can build: same full outcome (return value, instruction
    /// count, modelled cycle total, redirects, tail calls), same trap for
    /// programs that trap, same packet bytes afterwards. In particular,
    /// fast-backend cycle totals equal interpreter cycle totals for every
    /// trap-free program.
    #[test]
    fn backends_agree_on_generated_programs(
        seed_insns in prop::collection::vec((0u8..8, 0u8..5, -64i32..64), 1..12),
        pkt_len in 0usize..64,
        pkt_byte in any::<u8>(),
    ) {
        let mut asm = Asm::new();
        asm = asm
            .ldx_dw(Reg::R7, Reg::R1, 8)
            .ldx_dw(Reg::R6, Reg::R1, 0);
        for (op, reg, imm) in seed_insns {
            let r = Reg::new(reg % 5);
            asm = match op {
                0 => asm.mov64_imm(r, imm),
                1 => asm.add64_imm(r, imm),
                2 => asm.mod64_imm(r, imm.max(1)),
                3 => asm.mov64_reg(r, Reg::R6),
                4 => asm.add64_reg(r, r),
                5 => asm.jgt_reg(Reg::R6, Reg::R7, "out"),
                6 => asm.ldx_b(r, Reg::R6, (imm & 31) as i16),
                _ => asm.stx_dw(Reg::R10, -8 - (i16::from((imm & 7) as i8) * 8).abs(), r),
            };
        }
        let prog = asm
            .label("out")
            .mov64_imm(Reg::R0, 0)
            .exit()
            .build("diff");
        let Ok(prog) = prog else { return Ok(()); };

        let mut interp = Vm::new(MapRegistry::new());
        let mut fast = Vm::new(MapRegistry::new());
        fast.set_backend(Backend::Fast);
        let islot = interp.load_unverified(prog.clone());
        let fslot = fast.load_unverified(prog);

        let mut pkt_i = vec![pkt_byte; pkt_len];
        let mut pkt_f = pkt_i.clone();
        let out_i = {
            let mut ctx = PacketCtx::new(&mut pkt_i);
            interp.run(islot, &mut ctx, &mut RunEnv::default())
        };
        let out_f = {
            let mut ctx = PacketCtx::new(&mut pkt_f);
            fast.run(fslot, &mut ctx, &mut RunEnv::default())
        };
        prop_assert_eq!(out_i, out_f);
        prop_assert_eq!(pkt_i, pkt_f);
    }
}

proptest! {
    /// The exact PIFO agrees with a stable sort-by-rank reference under
    /// arbitrary interleavings of pushes and pops: non-decreasing rank
    /// out, FIFO within equal ranks.
    #[test]
    fn pifo_matches_stable_sort_reference(
        ops in prop::collection::vec((0u8..3, 0u32..50), 1..300),
    ) {
        let mut pifo: Pifo<usize> = Pifo::unbounded();
        let mut model: Vec<(u32, usize)> = Vec::new();
        let mut next = 0usize;
        for (op, rank) in ops {
            if op < 2 || model.is_empty() {
                pifo.push(next, rank);
                model.push((rank, next));
                next += 1;
            } else {
                let at = model
                    .iter()
                    .enumerate()
                    .min_by_key(|(i, (r, _))| (*r, *i))
                    .map(|(i, _)| i)
                    .unwrap();
                let (want_rank, want_item) = model.remove(at);
                prop_assert_eq!(pifo.pop_entry(), Some((want_item, want_rank)));
            }
        }
        // Drain: item ids increase with push order, so a stable order is
        // exactly the sort by (rank, id).
        model.sort_unstable_by_key(|&(r, id)| (r, id));
        for (want_rank, want_item) in model {
            prop_assert_eq!(pifo.pop_entry(), Some((want_item, want_rank)));
        }
        prop_assert!(pifo.is_empty());
    }

    /// Eiffel's documented approximation bound against the exact PIFO:
    /// while every queued rank stays inside the horizon, each bucket-queue
    /// dequeue is within one bucket width of the true minimum (the rank
    /// the PIFO pops at the same step).
    #[test]
    fn bucket_queue_inversion_stays_below_granularity(
        ranks in prop::collection::vec(0u32..256, 1..200),
        granularity in 1u32..16,
        pops_interleaved in any::<bool>(),
    ) {
        // Horizon covers the whole rank domain, so nothing ever clamps.
        let num_buckets = 256usize.div_ceil(granularity as usize) + 1;
        let mut bucket: BucketQueue<usize> = BucketQueue::unbounded(num_buckets, granularity);
        let mut pifo: Pifo<usize> = Pifo::unbounded();
        let check = |bucket: &mut BucketQueue<usize>, pifo: &mut Pifo<usize>| {
            let (_, exact_min) = pifo.pop_entry().unwrap();
            let (_, got) = bucket.pop_entry().unwrap();
            // Strict form of "rank(a) + g <= rank(b) => a first".
            got < exact_min + granularity
        };
        for (i, &rank) in ranks.iter().enumerate() {
            bucket.push(i, rank);
            pifo.push(i, rank);
            if pops_interleaved && i % 3 == 2 {
                prop_assert!(check(&mut bucket, &mut pifo));
            }
        }
        while !pifo.is_empty() {
            prop_assert!(check(&mut bucket, &mut pifo));
        }
        prop_assert!(bucket.is_empty());
    }
}
